//! RSA key generation, raw RSA, and PKCS#1 v1.5 signatures / encryption.
//!
//! The TPM 1.2 signs quotes with a 2048-bit RSA AIK using PKCS#1 v1.5 over
//! SHA-1; the privacy CA and service provider use SHA-256 signatures. Both
//! padding modes live here, plus PKCS#1 v1.5 type-2 encryption used by the
//! TPM seal model.

use std::fmt;

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::prime::generate_prime;
use crate::sha1::Sha1;
use crate::sha256::Sha256;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ASN.1 DigestInfo prefix for SHA-1 (RFC 8017 §9.2 note 1).
const SHA1_PREFIX: [u8; 15] = [
    0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14,
];

/// ASN.1 DigestInfo prefix for SHA-256.
const SHA256_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// The public half of an RSA key.
///
/// # Example
///
/// ```
/// use utp_crypto::rsa::RsaKeyPair;
/// let kp = RsaKeyPair::generate(512, 7);
/// let pk = kp.public();
/// assert_eq!(pk.modulus_len(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

impl RsaPublicKey {
    /// Constructs a public key from raw modulus and exponent.
    pub fn new(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey { n, e }
    }

    /// Modulus length in bytes (= signature / ciphertext length).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// A stable byte encoding of this key (length-prefixed n, e) for
    /// hashing into certificates and PCRs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_be_bytes();
        let e = self.e.to_be_bytes();
        let mut out = Vec::with_capacity(8 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses the encoding produced by [`RsaPublicKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let nlen = u32::from_be_bytes(bytes[..4].try_into().ok()?) as usize;
        let rest = &bytes[4..];
        if rest.len() < nlen + 4 {
            return None;
        }
        let n = BigUint::from_be_bytes(&rest[..nlen]);
        let rest = &rest[nlen..];
        let elen = u32::from_be_bytes(rest[..4].try_into().ok()?) as usize;
        let rest = &rest[4..];
        if rest.len() != elen {
            return None;
        }
        let e = BigUint::from_be_bytes(&rest[..elen]);
        Some(RsaPublicKey { n, e })
    }

    /// Raw RSA public operation `m^e mod n` on a padded block.
    fn raw(&self, block: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        if block.len() != k {
            return Err(CryptoError::LengthMismatch {
                expected: k,
                got: block.len(),
            });
        }
        let m = BigUint::from_be_bytes(block);
        if m >= self.n {
            return Err(CryptoError::BadPadding);
        }
        Ok(m.mod_pow(&self.e, &self.n).to_be_bytes_padded(k))
    }

    /// Verifies a PKCS#1 v1.5 SHA-1 signature over `msg`.
    #[must_use]
    pub fn verify_pkcs1_sha1(&self, msg: &[u8], sig: &[u8]) -> bool {
        let digest = Sha1::digest(msg);
        self.verify_pkcs1_prehashed(&SHA1_PREFIX, digest.as_bytes(), sig)
    }

    /// Verifies a PKCS#1 v1.5 SHA-256 signature over `msg`.
    #[must_use]
    pub fn verify_pkcs1_sha256(&self, msg: &[u8], sig: &[u8]) -> bool {
        let digest = Sha256::digest(msg);
        self.verify_pkcs1_prehashed(&SHA256_PREFIX, digest.as_bytes(), sig)
    }

    /// Verifies a signature over an already-computed digest.
    #[must_use]
    pub fn verify_pkcs1_prehashed(&self, prefix: &[u8], digest: &[u8], sig: &[u8]) -> bool {
        let Ok(em) = self.raw(sig) else { return false };
        let Ok(expected) = emsa_pkcs1_v15(prefix, digest, self.modulus_len()) else {
            return false;
        };
        crate::ct::ct_eq(&em, &expected)
    }

    /// PKCS#1 v1.5 (type 2) encryption of `msg`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::MessageTooLong`] if `msg` exceeds `k - 11` bytes.
    pub fn encrypt_pkcs1<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        msg: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        if msg.len() + 11 > k {
            return Err(CryptoError::MessageTooLong {
                max: k - 11,
                got: msg.len(),
            });
        }
        let mut em = vec![0u8; k];
        em[1] = 0x02;
        let ps_len = k - 3 - msg.len();
        for b in &mut em[2..2 + ps_len] {
            // Padding bytes must be nonzero.
            *b = rng.gen_range(1..=255u8);
        }
        em[2 + ps_len] = 0x00;
        em[3 + ps_len..].copy_from_slice(msg);
        self.raw(&em)
    }
}

/// An RSA key pair.
///
/// Key generation uses a dedicated deterministic RNG seeded by the caller so
/// every experiment in the reproduction is bit-reproducible.
#[derive(Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    /// Private exponent; kept (though CRT is used operationally) so tests
    /// can cross-check the CRT path against plain `m^d mod n`.
    #[allow(dead_code)]
    d: BigUint,
    // CRT parameters for a ~4x faster private operation.
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

// Redacting Debug: only public parameters are printed. The private
// exponent and CRT factors must never reach logs or panic messages.
impl fmt::Debug for RsaKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RsaKeyPair")
            .field("public", &self.public)
            .field("private", &"<redacted>")
            .finish()
    }
}

impl RsaKeyPair {
    /// Generates a fresh key with the given modulus size in bits.
    ///
    /// `seed` makes generation deterministic; pass different seeds for
    /// different identities.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 64` or `bits` is odd.
    pub fn generate(bits: usize, seed: u64) -> Self {
        assert!(bits >= 64, "modulus too small: {} bits", bits);
        assert!(bits.is_multiple_of(2), "modulus bits must be even");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5253_4147_454e_u64);
        let e = BigUint::from_u64(65537);
        let one = BigUint::one();
        loop {
            let p = generate_prime(&mut rng, bits / 2);
            let q = generate_prime(&mut rng, bits / 2);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            let phi = p1.mul(&q1);
            if !phi.gcd(&e).is_one() {
                continue;
            }
            let Some(d) = e.mod_inverse(&phi) else {
                continue;
            };
            let dp = d.rem(&p1);
            let dq = d.rem(&q1);
            let Some(qinv) = q.mod_inverse(&p) else {
                continue;
            };
            let (p, q) = (p, q);
            return RsaKeyPair {
                public: RsaPublicKey { n, e },
                d,
                p,
                q,
                dp,
                dq,
                qinv,
            };
        }
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Modulus length in bytes.
    pub fn modulus_len(&self) -> usize {
        self.public.modulus_len()
    }

    /// Raw RSA private operation using the Chinese Remainder Theorem.
    fn raw_private(&self, block: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        if block.len() != k {
            return Err(CryptoError::LengthMismatch {
                expected: k,
                got: block.len(),
            });
        }
        let c = BigUint::from_be_bytes(block);
        if c >= self.public.n {
            return Err(CryptoError::BadPadding);
        }
        let m1 = c.rem(&self.p).mod_pow(&self.dp, &self.p);
        let m2 = c.rem(&self.q).mod_pow(&self.dq, &self.q);
        // h = qinv * (m1 - m2) mod p
        let diff = if m1 >= m2.rem(&self.p) {
            m1.sub(&m2.rem(&self.p))
        } else {
            m1.add(&self.p).sub(&m2.rem(&self.p))
        };
        let h = self.qinv.mod_mul(&diff, &self.p);
        let m = m2.add(&self.q.mul(&h));
        Ok(m.to_be_bytes_padded(k))
    }

    /// Signs `msg` with PKCS#1 v1.5 over SHA-1 (the TPM 1.2 signature mode).
    ///
    /// # Errors
    ///
    /// [`CryptoError::LengthMismatch`] when the modulus is too small to
    /// hold the DigestInfo plus PKCS#1 padding. Keys in this workspace are
    /// always ≥ 512 bits, so this indicates a caller bug.
    pub fn sign_pkcs1_sha1(&self, msg: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let digest = Sha1::digest(msg);
        self.sign_pkcs1_prehashed(&SHA1_PREFIX, digest.as_bytes())
    }

    /// Signs `msg` with PKCS#1 v1.5 over SHA-256.
    ///
    /// # Errors
    ///
    /// See [`RsaKeyPair::sign_pkcs1_sha1`].
    pub fn sign_pkcs1_sha256(&self, msg: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let digest = Sha256::digest(msg);
        self.sign_pkcs1_prehashed(&SHA256_PREFIX, digest.as_bytes())
    }

    /// Signs an already-computed digest with the given DigestInfo prefix.
    ///
    /// # Errors
    ///
    /// [`CryptoError::LengthMismatch`] when the modulus is too small for
    /// the encoding; once encoding succeeds the raw private operation
    /// cannot fail (`em` is exactly modulus-sized with a 0x00 top byte,
    /// so it is < n).
    pub fn sign_pkcs1_prehashed(
        &self,
        prefix: &[u8],
        digest: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let em = emsa_pkcs1_v15(prefix, digest, self.modulus_len())?;
        self.raw_private(&em)
    }

    /// PKCS#1 v1.5 decryption.
    ///
    /// # Errors
    ///
    /// [`CryptoError::BadPadding`] when the padding does not verify and
    /// [`CryptoError::LengthMismatch`] when the ciphertext has the wrong
    /// length.
    pub fn decrypt_pkcs1(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let em = self.raw_private(ciphertext)?;
        // EM = 0x00 || 0x02 || PS (>= 8 nonzero bytes) || 0x00 || M
        if em.len() < 11 || em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::BadPadding);
        }
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::BadPadding)?;
        if sep < 8 {
            return Err(CryptoError::BadPadding);
        }
        Ok(em[2 + sep + 1..].to_vec())
    }
}

/// EMSA-PKCS1-v1_5 encoding: `0x00 01 FF..FF 00 || DigestInfo || digest`.
fn emsa_pkcs1_v15(prefix: &[u8], digest: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let t_len = prefix.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::MessageTooLong {
            max: k - 11,
            got: t_len,
        });
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xFF);
    em.push(0x00);
    em.extend_from_slice(prefix);
    em.extend_from_slice(digest);
    debug_assert_eq!(em.len(), k);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> RsaKeyPair {
        RsaKeyPair::generate(512, 1234)
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let a = RsaKeyPair::generate(512, 7);
        let b = RsaKeyPair::generate(512, 7);
        let c = RsaKeyPair::generate(512, 8);
        assert_eq!(a.public(), b.public());
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn modulus_has_requested_size() {
        for bits in [512usize, 768, 1024] {
            let kp = RsaKeyPair::generate(bits, 9);
            assert_eq!(kp.public().modulus().bit_len(), bits);
            assert_eq!(kp.modulus_len(), bits / 8);
        }
    }

    #[test]
    fn sign_verify_sha1_roundtrip() {
        let kp = keypair();
        let sig = kp.sign_pkcs1_sha1(b"quote data").unwrap();
        assert_eq!(sig.len(), kp.modulus_len());
        assert!(kp.public().verify_pkcs1_sha1(b"quote data", &sig));
        assert!(!kp.public().verify_pkcs1_sha1(b"quote dat@", &sig));
    }

    #[test]
    fn sign_verify_sha256_roundtrip() {
        let kp = keypair();
        let sig = kp.sign_pkcs1_sha256(b"certificate body").unwrap();
        assert!(kp.public().verify_pkcs1_sha256(b"certificate body", &sig));
        assert!(!kp.public().verify_pkcs1_sha256(b"certificate bodY", &sig));
    }

    #[test]
    fn signature_from_other_key_rejected() {
        let kp1 = keypair();
        let kp2 = RsaKeyPair::generate(512, 4321);
        let sig = kp1.sign_pkcs1_sha256(b"msg").unwrap();
        assert!(!kp2.public().verify_pkcs1_sha256(b"msg", &sig));
    }

    #[test]
    fn corrupted_signature_rejected() {
        let kp = keypair();
        let mut sig = kp.sign_pkcs1_sha256(b"msg").unwrap();
        for i in [0usize, 10, 63] {
            sig[i] ^= 0x01;
            assert!(!kp.public().verify_pkcs1_sha256(b"msg", &sig));
            sig[i] ^= 0x01;
        }
        // Wrong length entirely.
        assert!(!kp.public().verify_pkcs1_sha256(b"msg", &sig[1..]));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(5);
        for msg in [&b""[..], b"k", b"a 32-byte session key goes here!"] {
            let ct = kp.public().encrypt_pkcs1(&mut rng, msg).unwrap();
            assert_eq!(ct.len(), kp.modulus_len());
            assert_eq!(kp.decrypt_pkcs1(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn encrypt_rejects_oversized_message() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(5);
        let too_big = vec![0u8; kp.modulus_len() - 10];
        let err = kp.public().encrypt_pkcs1(&mut rng, &too_big).unwrap_err();
        assert!(matches!(err, CryptoError::MessageTooLong { .. }));
    }

    #[test]
    fn decrypt_rejects_garbage() {
        let kp = keypair();
        let garbage = vec![0x42u8; kp.modulus_len()];
        assert!(kp.decrypt_pkcs1(&garbage).is_err());
        assert!(matches!(
            kp.decrypt_pkcs1(&[1, 2, 3]).unwrap_err(),
            CryptoError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let kp = keypair();
        let bytes = kp.public().to_bytes();
        let parsed = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&parsed, kp.public());
        assert!(RsaPublicKey::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(RsaPublicKey::from_bytes(&[]).is_none());
    }

    #[test]
    fn crt_private_op_matches_plain_modpow() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let m = BigUint::random_below(&mut rng, kp.public().modulus());
            let block = m.to_be_bytes_padded(kp.modulus_len());
            let crt = kp.raw_private(&block).unwrap();
            let plain = m.mod_pow(&kp.d, kp.public().modulus());
            assert_eq!(crt, plain.to_be_bytes_padded(kp.modulus_len()));
        }
    }
}
