//! `utp-obs` — the perf-regression gate CLI.
//!
//! ```text
//! utp-obs gate   [--baselines DIR] [--artifacts DIR] [--warn-host]
//! utp-obs update [--baselines DIR] [--artifacts DIR]
//! ```
//!
//! `gate` compares every checked-in baseline under `--baselines`
//! (default `scripts/bench_baseline`) against the artifact of the same
//! file name under `--artifacts` (default `target/bench`) and exits
//! non-zero on any out-of-tolerance metric, printing a per-metric
//! diff. With `--warn-host`, host-class regressions (wall-clock
//! numbers, machine-dependent) are reported but don't fail the gate —
//! the mode `scripts/check.sh` and per-PR CI run in; the nightly CI
//! job runs strict. `update` re-records every baseline from the
//! current artifacts, keeping hand-tuned tolerances for metrics that
//! already existed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use utp_obs::{compare, Artifact, Baseline, Class};

const USAGE: &str =
    "usage: utp-obs <gate|update> [--baselines DIR] [--artifacts DIR] [--warn-host]";

struct Options {
    baselines: PathBuf,
    artifacts: PathBuf,
    warn_host: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        baselines: PathBuf::from("scripts/bench_baseline"),
        artifacts: PathBuf::from("target/bench"),
        warn_host: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baselines" => {
                opts.baselines = PathBuf::from(it.next().ok_or("--baselines needs a DIR")?);
            }
            "--artifacts" => {
                opts.artifacts = PathBuf::from(it.next().ok_or("--artifacts needs a DIR")?);
            }
            "--warn-host" => opts.warn_host = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// `BENCH_*.json` files in `dir`, sorted by name for stable output.
fn artifact_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory `{}`: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("BENCH_") && name.ends_with(".json")
        })
        .collect();
    files.sort();
    Ok(files)
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{}`: {e}", path.display()))
}

fn run_gate(opts: &Options) -> Result<bool, String> {
    let baselines = artifact_files(&opts.baselines)?;
    if baselines.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines under `{}`",
            opts.baselines.display()
        ));
    }
    let mut failures = 0usize;
    let mut warnings = 0usize;
    let mut compared = 0usize;
    for bpath in &baselines {
        let baseline = Baseline::from_json(&read(bpath)?)
            .map_err(|e| format!("bad baseline `{}`: {e}", bpath.display()))?;
        let demote = opts.warn_host && baseline.class == Class::Host;
        let tag = |is_warn: bool| if is_warn { "[warn]" } else { "[FAIL]" };
        let name = bpath
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let apath = opts.artifacts.join(&name);
        if !apath.exists() {
            println!(
                "{} {name}: artifact `{}` missing — run the experiment bins first",
                tag(demote),
                apath.display()
            );
            if demote {
                warnings += 1;
            } else {
                failures += 1;
            }
            continue;
        }
        let artifact = Artifact::from_json(&read(&apath)?)
            .map_err(|e| format!("bad artifact `{}`: {e}", apath.display()))?;
        let report = compare(&baseline, &artifact);
        compared += 1;
        for diff in &report.diffs {
            println!(
                "{} {}/{} {}: {}",
                tag(demote),
                report.experiment,
                report.class.as_str(),
                diff.metric,
                diff.detail
            );
            if demote {
                warnings += 1;
            } else {
                failures += 1;
            }
        }
        for note in &report.notes {
            println!(
                "[note] {}/{}: {note}",
                report.experiment,
                report.class.as_str()
            );
        }
    }
    println!(
        "perf gate: {compared} artifact(s) compared against {} baseline(s): \
         {failures} failure(s), {warnings} warning(s)",
        baselines.len()
    );
    Ok(failures == 0)
}

fn run_update(opts: &Options) -> Result<(), String> {
    let artifacts = artifact_files(&opts.artifacts)?;
    if artifacts.is_empty() {
        return Err(format!(
            "no BENCH_*.json artifacts under `{}` — run the experiment bins first",
            opts.artifacts.display()
        ));
    }
    std::fs::create_dir_all(&opts.baselines)
        .map_err(|e| format!("cannot create `{}`: {e}", opts.baselines.display()))?;
    for apath in &artifacts {
        let artifact = Artifact::from_json(&read(apath)?)
            .map_err(|e| format!("bad artifact `{}`: {e}", apath.display()))?;
        let mut baseline = Baseline::from_artifact(&artifact);
        let name = apath
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let bpath = opts.baselines.join(&name);
        if bpath.exists() {
            if let Ok(old) = Baseline::from_json(&read(&bpath)?) {
                baseline.inherit_tolerances(&old);
            }
        }
        std::fs::write(&bpath, baseline.to_json())
            .map_err(|e| format!("cannot write `{}`: {e}", bpath.display()))?;
        println!("recorded {}", bpath.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_options(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("utp-obs: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match cmd.as_str() {
        "gate" => match run_gate(&opts) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("utp-obs: {e}");
                ExitCode::from(2)
            }
        },
        "update" => match run_update(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("utp-obs: {e}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
