//! The machine-readable authorization spec (`scripts/authz_spec.json`)
//! driving the authorization-flow and protocol-order passes.
//!
//! The spec names the *policy* — which calls grant which capabilities,
//! which sites are settlement sinks and what they require, and which
//! happens-before pairs the protocol must respect — so the passes stay
//! pure mechanism. The checked-in file is compiled into the analyzer
//! via `include_str!` and gated like the TCB baseline:
//! `--check-authz-spec` fails when the on-disk file drifts from the
//! embedded copy, and when any spec'd name no longer *anchors* in the
//! workspace (a silent rename would otherwise blind the passes while
//! they keep reporting clean).
//!
//! The JSON subset here is what the spec needs — objects, arrays,
//! strings, integers — parsed by a tiny recursive-descent reader in the
//! same no-dependency spirit as the rest of the crate.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::graph::WorkspaceIndex;
use crate::lexer::TokenKind;

/// The checked-in spec source, compiled into the binary.
pub const EMBEDDED_JSON: &str = include_str!("../../../scripts/authz_spec.json");

/// A call that grants capabilities when it appears on a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSpec {
    /// Callee name matched at call sites.
    pub call: String,
    /// Required receiver-chain ident (e.g. `ledger` for `x.ledger.settle`).
    pub recv: Option<String>,
    /// Capabilities granted to the rest of the path.
    pub grants: Vec<String>,
}

/// A branch-condition ident that grants capabilities (e.g. a
/// `matches!(status, Confirmed)` check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardSpec {
    /// Ident that must appear in an `if`/`while`/`match`/arm statement.
    pub ident: String,
    /// Capabilities granted to both branches (polarity-insensitive).
    pub grants: Vec<String>,
}

/// How a sink site is recognized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// A call site named `target`.
    Call,
    /// A struct literal `Target { .. }`.
    Struct,
    /// A field assignment `recv.target = ..`.
    Write,
}

/// A settlement sink and the capabilities it demands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkSpec {
    /// Stable sink name (report key).
    pub name: String,
    /// Site shape.
    pub kind: SinkKind,
    /// Callee / struct / field name, per [`SinkKind`].
    pub target: String,
    /// Required receiver-chain ident for call sinks.
    pub recv: Option<String>,
    /// Receiver-chain ident that *disqualifies* a match (e.g. `ledger`
    /// keeps `NonceLedger::settle` out of the `Store::settle` sink).
    pub exclude_recv: Option<String>,
    /// Ident that must appear in the call args / statement for a match.
    pub with_ident: Option<String>,
    /// Capabilities that must *all* hold at the site.
    pub requires: Vec<String>,
    /// Capabilities of which *at least one* must hold at the site.
    pub requires_any: Vec<String>,
    /// Human phrase used in diagnostics.
    pub describe: String,
}

/// One happens-before rule: in any function performing `before`, every
/// `after` site (on paths through `when_ident`, if set) must be
/// preceded by a `before` event or a `guard_ident` branch check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderRule {
    /// Stable rule name (report key).
    pub rule: String,
    /// Callee name of the before-event.
    pub before: String,
    /// Ident that must appear in the before-call's args to count.
    pub before_ident: Option<String>,
    /// Callee name of the after-event.
    pub after: String,
    /// Required receiver-chain ident of the after-event.
    pub after_recv: Option<String>,
    /// Path marker: the rule applies to an after-site only when a
    /// statement containing this ident dominates it.
    pub when_ident: Option<String>,
    /// Branch-condition ident that discharges the obligation (e.g. a
    /// `if let Some(journal)` presence check covering no-journal mode).
    pub guard_ident: Option<String>,
    /// Human phrase used in diagnostics.
    pub describe: String,
}

/// The full parsed spec.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuthzSpec {
    /// Spec format version.
    pub version: i64,
    /// Path prefixes the sinks and rules apply to.
    pub scope: Vec<String>,
    /// Capability-granting calls.
    pub sources: Vec<SourceSpec>,
    /// Capability-granting branch conditions.
    pub guards: Vec<GuardSpec>,
    /// Settlement sinks.
    pub sinks: Vec<SinkSpec>,
    /// Happens-before rules.
    pub order: Vec<OrderRule>,
}

impl AuthzSpec {
    /// Is `path` inside the spec's scope?
    pub fn in_scope(&self, path: &str) -> bool {
        self.scope.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// The capability universe, in order of first appearance; the
    /// passes use the index as a lattice bit.
    pub fn capabilities(&self) -> Vec<&str> {
        fn add_all<'a>(out: &mut Vec<&'a str>, names: &'a [String]) {
            for n in names {
                if !out.contains(&n.as_str()) {
                    out.push(n.as_str());
                }
            }
        }
        let mut out: Vec<&str> = Vec::new();
        for s in &self.sources {
            add_all(&mut out, &s.grants);
        }
        for g in &self.guards {
            add_all(&mut out, &g.grants);
        }
        for s in &self.sinks {
            add_all(&mut out, &s.requires);
            add_all(&mut out, &s.requires_any);
        }
        out
    }

    /// Bit index of a capability name in [`AuthzSpec::capabilities`].
    pub fn cap_bit(&self, caps: &[&str], name: &str) -> u32 {
        caps.iter()
            .position(|c| *c == name)
            .map(|i| 1u32 << i)
            .unwrap_or(0)
    }
}

/// The embedded spec, parsed once. The file is checked in and covered
/// by tests, so a parse failure is a build defect, not a user error.
pub fn embedded() -> &'static AuthzSpec {
    static SPEC: OnceLock<AuthzSpec> = OnceLock::new();
    SPEC.get_or_init(|| match parse(EMBEDDED_JSON) {
        Ok(s) => s,
        Err(e) => {
            // Unreachable for a well-formed checked-in spec; degrade to
            // an empty spec (passes report nothing) rather than abort.
            debug_assert!(false, "embedded authz spec is malformed: {e}");
            AuthzSpec::default()
        }
    })
}

/// Parses a spec JSON text.
pub fn parse(text: &str) -> Result<AuthzSpec, String> {
    let json = JsonParser::new(text).parse_document()?;
    let obj = json.as_obj().ok_or("spec root must be an object")?;
    let mut spec = AuthzSpec {
        version: get(obj, "version")?.as_int().ok_or("version: integer")?,
        scope: str_list(get(obj, "scope")?, "scope")?,
        ..AuthzSpec::default()
    };
    for (i, s) in arr(get(obj, "sources")?, "sources")?.iter().enumerate() {
        let o = s.as_obj().ok_or_else(|| format!("sources[{i}]: object"))?;
        spec.sources.push(SourceSpec {
            call: req_str(o, "call")?,
            recv: opt_str(o, "recv"),
            grants: str_list(get(o, "grants")?, "grants")?,
        });
    }
    for (i, g) in arr(get(obj, "guards")?, "guards")?.iter().enumerate() {
        let o = g.as_obj().ok_or_else(|| format!("guards[{i}]: object"))?;
        spec.guards.push(GuardSpec {
            ident: req_str(o, "ident")?,
            grants: str_list(get(o, "grants")?, "grants")?,
        });
    }
    for (i, s) in arr(get(obj, "sinks")?, "sinks")?.iter().enumerate() {
        let o = s.as_obj().ok_or_else(|| format!("sinks[{i}]: object"))?;
        let kind = match req_str(o, "kind")?.as_str() {
            "call" => SinkKind::Call,
            "struct" => SinkKind::Struct,
            "write" => SinkKind::Write,
            other => return Err(format!("sinks[{i}]: unknown kind `{other}`")),
        };
        spec.sinks.push(SinkSpec {
            name: req_str(o, "name")?,
            kind,
            target: req_str(o, "target")?,
            recv: opt_str(o, "recv"),
            exclude_recv: opt_str(o, "exclude_recv"),
            with_ident: opt_str(o, "with_ident"),
            requires: opt_list(o, "requires")?,
            requires_any: opt_list(o, "requires_any")?,
            describe: req_str(o, "describe")?,
        });
    }
    for (i, r) in arr(get(obj, "order")?, "order")?.iter().enumerate() {
        let o = r.as_obj().ok_or_else(|| format!("order[{i}]: object"))?;
        spec.order.push(OrderRule {
            rule: req_str(o, "rule")?,
            before: req_str(o, "before")?,
            before_ident: opt_str(o, "before_ident"),
            after: req_str(o, "after")?,
            after_recv: opt_str(o, "after_recv"),
            when_ident: opt_str(o, "when_ident"),
            guard_ident: opt_str(o, "guard_ident"),
            describe: req_str(o, "describe")?,
        });
    }
    Ok(spec)
}

/// Every spec'd name that no longer *anchors* in the in-scope live
/// workspace code: a renamed source/sink would silently blind the
/// passes, so the spec gate reports these as failures.
pub fn missing_anchors(ws: &WorkspaceIndex, spec: &AuthzSpec) -> Vec<String> {
    let mut fn_names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut call_names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut struct_names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut field_names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut idents: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !ws.metas[fi].is_src_ctx || !spec.in_scope(&file.path) {
            continue;
        }
        for f in &file.items.fns {
            if file.in_test_code(f.start_line) {
                continue;
            }
            fn_names.insert(f.name.as_str());
            for c in &f.calls {
                call_names.insert(c.name.as_str());
            }
        }
        for s in &file.items.structs {
            struct_names.insert(s.name.as_str());
            for fld in &s.fields {
                field_names.insert(fld.name.as_str());
            }
        }
        for t in &file.tokens {
            if t.kind == TokenKind::Ident {
                idents.insert(t.text.as_str());
            }
        }
    }
    let callable = |n: &str| fn_names.contains(n) || call_names.contains(n);
    let mut missing = Vec::new();
    for s in &spec.sources {
        if !callable(&s.call) {
            missing.push(format!("source `{}` (no such fn or call in scope)", s.call));
        }
    }
    for g in &spec.guards {
        if !idents.contains(g.ident.as_str()) {
            missing.push(format!("guard ident `{}` (absent from scope)", g.ident));
        }
    }
    for s in &spec.sinks {
        let ok = match s.kind {
            SinkKind::Call => callable(&s.target),
            SinkKind::Struct => struct_names.contains(s.target.as_str()),
            SinkKind::Write => field_names.contains(s.target.as_str()),
        };
        if !ok {
            missing.push(format!(
                "sink `{}` target `{}` (no such site shape in scope)",
                s.name, s.target
            ));
        }
    }
    for r in &spec.order {
        if !callable(&r.before) {
            missing.push(format!(
                "rule `{}` before-event `{}` (no such fn or call in scope)",
                r.rule, r.before
            ));
        }
        if !callable(&r.after) {
            missing.push(format!(
                "rule `{}` after-event `{}` (no such fn or call in scope)",
                r.rule, r.after
            ));
        }
    }
    missing
}

/// The authorization-flow report: how many sites each spec entry
/// matched plus the anchor check, written next to the TCB and dataflow
/// reports and uploaded by CI.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct AuthzReport {
    /// In-scope library files analyzed.
    pub scope_files: usize,
    /// Live in-scope functions analyzed.
    pub functions: usize,
    /// Capability-grant sites per source call name.
    pub grant_sites: BTreeMap<String, usize>,
    /// Sites checked per sink name.
    pub sink_sites: BTreeMap<String, usize>,
    /// After-event sites checked per happens-before rule.
    pub order_sites: BTreeMap<String, usize>,
    /// Post-suppression findings from the two passes.
    pub findings: usize,
    /// Spec names with no anchor in the workspace (gate failures).
    pub missing_anchors: Vec<String>,
}

impl AuthzReport {
    /// Stable, hand-rolled JSON rendering (same conventions as the TCB
    /// and dataflow reports).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"authz_report\": {\n");
        out.push_str(&format!("    \"scope_files\": {},\n", self.scope_files));
        out.push_str(&format!("    \"functions\": {},\n", self.functions));
        out.push_str(&format!("    \"findings\": {},\n", self.findings));
        render_count_map(&mut out, "grant_sites", &self.grant_sites);
        out.push_str(",\n");
        render_count_map(&mut out, "sink_sites", &self.sink_sites);
        out.push_str(",\n");
        render_count_map(&mut out, "order_sites", &self.order_sites);
        out.push_str(",\n");
        out.push_str("    \"missing_anchors\": [");
        for (i, m) in self.missing_anchors.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", m.replace('"', "'")));
        }
        out.push_str("]\n  }\n}\n");
        out
    }
}

fn render_count_map(out: &mut String, key: &str, map: &BTreeMap<String, usize>) {
    out.push_str(&format!("    \"{key}\": {{"));
    for (i, (name, n)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n      \"{name}\": {n}"));
    }
    if !map.is_empty() {
        out.push_str("\n    ");
    }
    out.push('}');
}

// ---------------------------------------------------------------------
// Minimal JSON reader.

/// A parsed JSON value (the subset the spec uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
    /// String.
    Str(String),
    /// Integer (the spec has no floats).
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key `{key}`"))
}

fn arr<'a>(v: &'a Json, what: &str) -> Result<&'a [Json], String> {
    v.as_arr().ok_or_else(|| format!("{what}: array"))
}

fn req_str(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    get(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{key}: string"))
}

fn opt_str(obj: &[(String, Json)], key: &str) -> Option<String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str())
        .map(str::to_string)
}

fn str_list(v: &Json, what: &str) -> Result<Vec<String>, String> {
    arr(v, what)?
        .iter()
        .map(|e| {
            e.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{what}: strings"))
        })
        .collect()
}

fn opt_list(obj: &[(String, Json)], key: &str) -> Result<Vec<String>, String> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => str_list(v, key),
        None => Ok(Vec::new()),
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing content at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "utf8")?;
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(&c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| "utf8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            out.push((key, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_spec_parses_and_is_nonempty() {
        let spec = parse(EMBEDDED_JSON).expect("embedded spec parses");
        assert_eq!(spec.version, 1);
        assert!(!spec.scope.is_empty());
        assert!(spec.sources.iter().any(|s| s.call == "verify"));
        assert!(spec.sinks.iter().any(|s| s.name == "store-settle"));
        assert!(spec.order.iter().any(|r| r.rule == "wal-before-ack"));
        assert_eq!(spec, *embedded());
    }

    #[test]
    fn capability_universe_is_stable_and_bit_indexed() {
        let spec = embedded();
        let caps = spec.capabilities();
        assert!(caps.contains(&"verified"));
        assert!(caps.contains(&"order-bound"));
        assert!(caps.contains(&"confirmed-checked"));
        let bit = spec.cap_bit(&caps, "verified");
        assert_eq!(bit.count_ones(), 1);
        assert_eq!(spec.cap_bit(&caps, "no-such-cap"), 0);
    }

    #[test]
    fn json_reader_handles_nesting_escapes_and_errors() {
        let v = JsonParser::new("{\"a\": [1, -2], \"b\": {\"c\": \"x\\\"y\"}}")
            .parse_document()
            .unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(get(obj, "a").unwrap().as_arr().unwrap().len(), 2);
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"version\": 1}").is_err(), "missing keys surface");
    }

    #[test]
    fn report_renders_stable_json() {
        let mut r = AuthzReport::default();
        r.grant_sites.insert("verify".to_string(), 3);
        r.sink_sites.insert("store-settle".to_string(), 1);
        let json = r.to_json();
        assert!(json.contains("\"authz_report\""));
        assert!(json.contains("\"verify\": 3"));
        assert!(json.contains("\"missing_anchors\": []"));
    }
}
