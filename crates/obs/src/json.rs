//! A minimal hand-rolled JSON reader/writer for the artifact and
//! baseline files (the build environment has no serde).
//!
//! Numbers keep their *raw text* so that writing a parsed document
//! back produces the same bytes: `u64` values round-trip exactly
//! (no `f64` precision loss) and `f64` values round-trip through
//! Rust's shortest-representation formatting.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete document; trailing non-whitespace is an error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The raw number text, if this is a number.
    pub fn as_num(&self) -> Option<&str> {
        match self {
            Json::Num(raw) => Some(raw),
            _ => None,
        }
    }

    /// The number as `u64` (exact), if this is an integer number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_num().and_then(|raw| raw.parse().ok())
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_num().and_then(|raw| raw.parse().ok())
    }

    /// The elements, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in source order, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Nesting bound: artifact files are two levels deep; anything deeper
/// than this is a malformed or adversarial input, not ours.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        // Validate by parsing; the raw text is what we keep.
        raw.parse::<f64>()
            .map_err(|_| format!("bad number `{raw}` at byte {start}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Appends `s` as JSON string *content* (no surrounding quotes),
/// escaping exactly like the trace exporter so shared tooling sees one
/// convention.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": [1, 2.5, "x", true, null], "b": {"c": -3}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().items().unwrap().len(), 5);
        assert_eq!(v.get("a").unwrap().items().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().items().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(-3.0));
    }

    #[test]
    fn numbers_keep_raw_text() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX), "u64::MAX survives exactly");
        assert_eq!(v.as_num(), Some("18446744073709551615"));
    }

    #[test]
    fn strings_unescape() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn escape_round_trips() {
        let original = "tab\t quote\" slash\\ nl\n unit\u{1}";
        let mut enc = String::from('"');
        escape_into(&mut enc, original);
        enc.push('"');
        assert_eq!(Json::parse(&enc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "depth bound enforced");
    }
}
