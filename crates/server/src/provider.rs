//! The service-provider facade.

use crate::audit::AuditLog;
use crate::metrics::ServiceStats;
use crate::service::{ServiceConfig, VerifierService};
use crate::store::{Order, OrderStatus, Store};
use std::sync::Arc;
use std::time::Duration;
use utp_core::protocol::{ConfirmMode, Evidence, Transaction, TransactionRequest};
use utp_core::verifier::{Verifier, VerifierConfig, VerifyError};
use utp_crypto::rsa::RsaPublicKey;
use utp_journal::{
    Journal, JournalRecord, RecoveredState, RecoveredStatus, RecoveryReport, NO_ORDER,
};

/// A settled-transaction receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// The order this receipt settles.
    pub order_id: u64,
    /// Transaction as confirmed.
    pub transaction: Transaction,
    /// Code attempts the human needed.
    pub attempts: u32,
}

/// An e-commerce provider accepting trusted-path confirmations.
///
/// Verification runs through the serial [`Verifier`] by default; call
/// [`ServiceProvider::attach_service`] to route evidence through a
/// persistent sharded [`VerifierService`] instead (issuance stays on the
/// serial verifier, which owns the nonce RNG).
#[derive(Debug)]
pub struct ServiceProvider {
    ca_key: RsaPublicKey,
    verifier: Verifier,
    service: Option<VerifierService>,
    store: Store,
    audit: AuditLog,
    tx_counter: u64,
    journal: Option<Arc<Journal>>,
}

impl ServiceProvider {
    /// Creates a provider pinning the given privacy-CA key.
    pub fn new(ca_key: RsaPublicKey, seed: u64) -> Self {
        Self::with_config(ca_key, VerifierConfig::default(), seed)
    }

    /// Creates a provider with explicit verifier policy.
    pub fn with_config(ca_key: RsaPublicKey, config: VerifierConfig, seed: u64) -> Self {
        ServiceProvider {
            verifier: Verifier::with_config(ca_key.clone(), config, seed),
            ca_key,
            service: None,
            store: Store::new(),
            audit: AuditLog::new(),
            tx_counter: 0,
            journal: None,
        }
    }

    /// Makes the settlement path durable: account openings, order
    /// creation and every settle decision are written ahead of their
    /// effects (WAL-before-ack), and the audit log switches to durable
    /// mode. Attach the journal **before** [`ServiceProvider::attach_service`]
    /// so the workers inherit it.
    pub fn attach_journal(&mut self, journal: Arc<Journal>) {
        self.audit.attach_journal(Arc::clone(&journal));
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Recovers a provider from a journal after a crash: replays
    /// snapshot + WAL, rebuilds the store (accounts, orders, balances),
    /// the audit history, and the verifier's nonce ledger (pending and
    /// consumed nonces), and re-seeds the transaction-id counter. The
    /// journal's torn suffix, if any, is repaired in place.
    pub fn recover(
        ca_key: RsaPublicKey,
        config: VerifierConfig,
        seed: u64,
        journal: Arc<Journal>,
    ) -> (Self, RecoveryReport) {
        let (state, report, _read_cost) = journal.replay();
        let mut provider = Self::with_config(ca_key, config, seed);
        for (name, balance) in &state.accounts {
            provider.store.open_account(name.clone(), *balance);
        }
        for (id, order) in &state.orders {
            provider.store.restore_order(
                *id,
                Order {
                    transaction: order.transaction.clone(),
                    account: order.account.clone(),
                    status: match &order.status {
                        RecoveredStatus::Pending => OrderStatus::Pending,
                        RecoveredStatus::Confirmed => OrderStatus::Confirmed,
                        RecoveredStatus::Rejected(e) => OrderStatus::Rejected(*e),
                    },
                },
            );
        }
        for (nonce, pending) in &state.pending {
            provider.verifier.restore_pending(*nonce, pending.clone());
        }
        for nonce in &state.used {
            provider.verifier.restore_used(*nonce);
        }
        for d in &state.audit {
            provider
                .audit
                .restore(d.at, d.order_id.unwrap_or(NO_ORDER), d.outcome);
        }
        provider.tx_counter = state.max_tx_id;
        provider.attach_journal(journal);
        (provider, report)
    }

    /// Snapshots the journaled state and truncates the WAL. The snapshot
    /// is derived by replaying the journal itself (after a sync), so it
    /// is exactly the state a crash-recovery at this instant would
    /// produce — no drift between live structures and the snapshot is
    /// possible. No-op returning `None` when no journal is attached.
    pub fn checkpoint(&mut self) -> Option<RecoveredState> {
        let journal = self.journal.as_ref()?;
        journal.sync();
        let (state, _report, _cost) = journal.replay();
        journal.install_snapshot(&state);
        Some(state)
    }

    /// Deep copy of the provider for state-space branching: the store,
    /// the audit history, the verifier (nonce ledger, policy, stats and
    /// nonce-RNG state) and the journal (media *and* unflushed caches)
    /// are all cloned, so the fork and the original evolve
    /// independently. An attached [`VerifierService`] is **not**
    /// carried over — a live worker pool owns shard state that cannot
    /// be duplicated — so forks always verify through the serial path.
    pub fn fork(&self) -> Self {
        let journal = self.journal.as_ref().map(|j| Arc::new(j.fork()));
        let mut audit = self.audit.clone();
        if let Some(j) = &journal {
            // Point the cloned audit log at the forked journal, not the
            // original: durable paging must read the fork's timeline.
            audit.attach_journal(Arc::clone(j));
        }
        ServiceProvider {
            ca_key: self.ca_key.clone(),
            verifier: self.verifier.clone(),
            service: None,
            store: self.store.clone(),
            audit,
            tx_counter: self.tx_counter,
            journal,
        }
    }

    /// Starts a [`VerifierService`] with the given pool geometry and
    /// routes all subsequent evidence submissions through it. The service
    /// inherits this provider's verification policy (TTL, trusted PALs).
    pub fn attach_service(&mut self, threads: usize, shards: usize) {
        let mut config =
            ServiceConfig::from_verifier_config(self.verifier.config(), threads, shards);
        config.journal = self.journal.clone();
        let service = VerifierService::start(self.ca_key.clone(), config);
        // Migrate the serial ledger into the shards so nonces issued (or
        // recovered) before the service attached stay settleable — and
        // consumed nonces stay replay-protected — through the service.
        for (nonce, pending) in self.verifier.ledger().pending_entries() {
            service.restore_pending(*nonce, pending.clone());
        }
        for nonce in self.verifier.ledger().used_entries() {
            service.restore_used(*nonce);
        }
        self.service = Some(service);
    }

    /// Shuts down an attached service (draining in-flight jobs) and
    /// returns its final counters; `None` if none was attached.
    pub fn detach_service(&mut self) -> Option<ServiceStats> {
        self.service.take().map(VerifierService::shutdown)
    }

    /// The attached verification service, if any.
    pub fn service(&self) -> Option<&VerifierService> {
        self.service.as_ref()
    }

    /// The underlying store (accounts, orders).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable store access (account provisioning).
    ///
    /// Prefer [`ServiceProvider::open_account`] when a journal is
    /// attached: direct store mutation is not journaled and will not
    /// survive a crash.
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Opens an account durably: the opening is journaled (and flushed)
    /// before the store mutation becomes visible.
    pub fn open_account(&mut self, name: &str, balance_cents: i64) {
        if let Some(journal) = &self.journal {
            journal.append_record(&JournalRecord::OpenAccount {
                name: name.to_string(),
                balance_cents,
            });
            journal.sync();
        }
        self.store.open_account(name, balance_cents);
    }

    /// The verifier (policy + stats).
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// The audit log of verification decisions.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Places an order: creates the transaction and issues the
    /// confirmation challenge. Returns `(order_id, request)` — the request
    /// travels to the client.
    pub fn place_order(
        &mut self,
        account: &str,
        payee: &str,
        amount_cents: u64,
        currency: &str,
        memo: &str,
        now: Duration,
    ) -> (u64, TransactionRequest) {
        self.place_order_with_mode(
            account,
            payee,
            amount_cents,
            currency,
            memo,
            self.verifier.config().default_mode,
            now,
        )
    }

    /// Places an order with an explicit confirmation mode.
    #[allow(clippy::too_many_arguments)]
    pub fn place_order_with_mode(
        &mut self,
        account: &str,
        payee: &str,
        amount_cents: u64,
        currency: &str,
        memo: &str,
        mode: ConfirmMode,
        now: Duration,
    ) -> (u64, TransactionRequest) {
        self.tx_counter += 1;
        let tx = Transaction::new(self.tx_counter, payee, amount_cents, currency, memo);
        let order_id = self.store.create_order(account, tx.clone());
        let request = self.verifier.issue_request_with_mode(tx, mode, now);
        if let Some(journal) = &self.journal {
            // WAL-before-challenge: the order/nonce binding must be
            // durable before the request leaves the provider, or a crash
            // would orphan the evidence the client sends back.
            journal.append_record(&JournalRecord::CreateOrder {
                order_id,
                account: account.to_string(),
                issued_at: now,
                request_bytes: request.to_bytes(),
            });
            journal.sync();
        }
        if let Some(service) = &self.service {
            // The service settles this nonce; the serial ledger's copy is
            // never consumed, so garbage-collect it by TTL here to keep
            // the serial ledger bounded.
            service.register(&request, now);
            self.verifier.gc(now);
        }
        (order_id, request)
    }

    /// Binds the evidence to *this* order before dispatch: the token
    /// carries the digest of the transaction the human saw, and it must
    /// be the transaction this order would settle. Without this check,
    /// evidence confirming order A delivered against order B would debit
    /// B's amount on A's approval — a settle without a matching
    /// human-confirmed quote. Unparseable tokens pass through: the
    /// verifier rejects them with the precise crypto error.
    fn check_order_binding(&self, order_id: u64, evidence: &Evidence) -> Result<(), VerifyError> {
        let Ok(token) = evidence.token() else {
            return Ok(());
        };
        let mismatch = self
            .store
            .order(order_id)
            .is_some_and(|o| token.tx_digest != o.transaction.digest());
        if mismatch {
            return Err(VerifyError::TokenMismatch);
        }
        Ok(())
    }

    /// Accepts evidence for an order.
    ///
    /// Routed through the attached [`VerifierService`] when one is
    /// present, otherwise verified inline by the serial [`Verifier`].
    ///
    /// # Errors
    ///
    /// Returns the verifier's typed rejection; the order is marked
    /// rejected for settled-but-unconfirmed outcomes and stays pending on
    /// retryable ones (see [`Verifier::verify`]).
    pub fn submit_evidence(
        &mut self,
        order_id: u64,
        evidence: &Evidence,
        now: Duration,
    ) -> Result<Receipt, VerifyError> {
        // The binding check dominates every path to settlement below —
        // the authorization-flow pass proves this stays true.
        if let Err(e) = self.check_order_binding(order_id, evidence) {
            if let Some(journal) = &self.journal {
                // Same WAL-before-effect discipline as the verify paths
                // below: the terminal decision is durable before the
                // audit log, store or caller see it.
                let nonce = evidence
                    .token()
                    .map(|t| *t.nonce.as_bytes())
                    .unwrap_or([0u8; 20]);
                let receipt = journal.append_record(&JournalRecord::Settle {
                    order_id,
                    nonce,
                    at: now,
                    outcome: Err(e),
                });
                journal.sync_to(receipt.seq);
            }
            self.audit.record(now, order_id, Err(e));
            self.store.reject(order_id, e);
            return Err(e);
        }
        let outcome = match &self.service {
            Some(service) => {
                // The worker journals the decision (WAL-before-ack); the
                // ticket resolves only after a covering flush.
                match service.submit_evidence_for_order(order_id, evidence.clone(), now) {
                    Ok(ticket) => ticket.wait(),
                    Err(_) => Err(VerifyError::ServiceUnavailable),
                }
            }
            None => {
                let outcome = self.verifier.verify(evidence, now);
                if let Some(journal) = &self.journal {
                    // Serial path: journal the decision ahead of every
                    // effect (audit, store, and the caller's view).
                    let nonce = evidence
                        .token()
                        .map(|t| *t.nonce.as_bytes())
                        .unwrap_or([0u8; 20]);
                    let receipt = journal.append_record(&JournalRecord::Settle {
                        order_id,
                        nonce,
                        at: now,
                        outcome: outcome.as_ref().map(|_| ()).map_err(|e| *e),
                    });
                    journal.sync_to(receipt.seq);
                }
                outcome
            }
        };
        match outcome {
            Ok(verified) => {
                self.audit.record(now, order_id, Ok(()));
                // `try_settle`: order ids arrive from outside the process,
                // so an unknown id must not panic the server.
                self.store.try_settle(order_id);
                Ok(Receipt {
                    order_id,
                    transaction: verified.transaction,
                    attempts: verified.attempts,
                })
            }
            Err(e) => {
                self.audit.record(now, order_id, Err(e));
                // Terminal outcomes mark the order; transport-level ones
                // leave it pending for retry.
                match e {
                    VerifyError::NotConfirmed(_)
                    | VerifyError::Replayed
                    | VerifyError::Expired
                    | VerifyError::UntrustedPal
                    | VerifyError::BadQuote
                    | VerifyError::TokenMismatch
                    | VerifyError::BadCertificate => self.store.reject(order_id, e),
                    _ => {}
                }
                Err(e)
            }
        }
    }

    /// True if the order is confirmed.
    pub fn is_confirmed(&self, order_id: u64) -> bool {
        matches!(
            self.store.order(order_id).map(|o| &o.status),
            Some(OrderStatus::Confirmed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_core::ca::PrivacyCa;
    use utp_core::client::{Client, ClientConfig};
    use utp_core::operator::{ConfirmingHuman, Intent};
    use utp_platform::machine::{Machine, MachineConfig};

    fn setup() -> (ServiceProvider, Machine, Client) {
        let ca = PrivacyCa::new(512, 91);
        let mut provider = ServiceProvider::new(ca.public_key().clone(), 92);
        provider.store_mut().open_account("alice", 100_000);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(93));
        let enrollment = ca.enroll(&mut machine);
        let client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        (provider, machine, client)
    }

    #[test]
    fn order_confirmed_and_settled() {
        let (mut provider, mut machine, mut client) = setup();
        let (order_id, request) =
            provider.place_order("alice", "bookshop", 4_200, "EUR", "order 7", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request.transaction), 94);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        let receipt = provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap();
        assert_eq!(receipt.transaction.payee, "bookshop");
        assert!(provider.is_confirmed(order_id));
        assert_eq!(
            provider.store().account("alice").unwrap().balance_cents,
            95_800
        );
    }

    #[test]
    fn human_rejection_marks_order_rejected_without_debit() {
        let (mut provider, mut machine, mut client) = setup();
        let (order_id, request) =
            provider.place_order("alice", "attacker", 99_999, "EUR", "??", machine.now());
        let mut human = ConfirmingHuman::new(Intent::rejecting(), 95);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        let err = provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap_err();
        assert!(matches!(err, VerifyError::NotConfirmed(_)));
        assert!(!provider.is_confirmed(order_id));
        assert_eq!(
            provider.store().account("alice").unwrap().balance_cents,
            100_000
        );
    }

    #[test]
    fn replayed_evidence_cannot_settle_twice() {
        let (mut provider, mut machine, mut client) = setup();
        let (order_id, request) =
            provider.place_order("alice", "shop", 1_000, "EUR", "", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request.transaction), 96);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap();
        // Malware re-submits the same evidence against a *new* order:
        // the order-binding check rejects it before the ledger is even
        // consulted (the token digests a different transaction).
        let (order2, _request2) =
            provider.place_order("alice", "shop", 1_000, "EUR", "", machine.now());
        let err = provider
            .submit_evidence(order2, &evidence, machine.now())
            .unwrap_err();
        assert_eq!(err, VerifyError::TokenMismatch);
        assert_eq!(
            provider.store().account("alice").unwrap().balance_cents,
            99_000
        );
        // Replaying against the *same* order is the ledger's business.
        let err = provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap_err();
        assert_eq!(err, VerifyError::Replayed);
        assert_eq!(
            provider.store().account("alice").unwrap().balance_cents,
            99_000
        );
    }

    #[test]
    fn attached_service_confirms_and_settles() {
        let (mut provider, mut machine, mut client) = setup();
        provider.attach_service(2, 4);
        let (order_id, request) =
            provider.place_order("alice", "bookshop", 4_200, "EUR", "order 7", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request.transaction), 97);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap();
        assert!(provider.is_confirmed(order_id));
        // Replay against a new order is caught by the order-binding
        // check before the request ever reaches the shards.
        let (order2, _) = provider.place_order("alice", "shop", 1_000, "EUR", "", machine.now());
        let err = provider
            .submit_evidence(order2, &evidence, machine.now())
            .unwrap_err();
        assert_eq!(err, VerifyError::TokenMismatch);
        // Replay against its *own* order reaches the sharded ledger.
        let err = provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap_err();
        assert_eq!(err, VerifyError::Replayed);
        assert!(provider.is_confirmed(order_id), "confirmed is sticky");
        let stats = provider.detach_service().unwrap();
        assert_eq!(stats.totals().accepted, 1);
        assert_eq!(stats.totals().replayed, 1);
        assert_eq!(stats.totals().registered, 2);
        // Detached: the serial verifier takes over again for new orders.
        let (order3, request3) =
            provider.place_order("alice", "shop", 500, "EUR", "", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request3.transaction), 98);
        let evidence3 = client.confirm(&mut machine, &request3, &mut human).unwrap();
        provider
            .submit_evidence(order3, &evidence3, machine.now())
            .unwrap();
        assert!(provider.is_confirmed(order3));
    }

    fn journal() -> Arc<Journal> {
        Arc::new(Journal::new(utp_journal::JournalConfig::fast_for_tests()))
    }

    #[test]
    fn journaled_settlement_survives_crash() {
        let ca = PrivacyCa::new(512, 191);
        let mut provider = ServiceProvider::new(ca.public_key().clone(), 192);
        let journal = journal();
        provider.attach_journal(Arc::clone(&journal));
        provider.open_account("alice", 100_000);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(193));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let (order_id, request) =
            provider.place_order("alice", "bookshop", 4_200, "EUR", "order", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request.transaction), 194);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap();
        // A second order is still awaiting confirmation when power fails.
        let (pending_id, pending_request) =
            provider.place_order("alice", "cafe", 900, "EUR", "", machine.now());
        drop(provider);
        journal.crash();

        let (mut recovered, report) = ServiceProvider::recover(
            ca.public_key().clone(),
            VerifierConfig::default(),
            195,
            Arc::clone(&journal),
        );
        // open + order + settle + pending order, all durable pre-crash.
        assert_eq!(report.records_applied, 4);
        assert!(recovered.is_confirmed(order_id));
        assert_eq!(
            recovered.store().account("alice").unwrap().balance_cents,
            95_800
        );
        assert_eq!(recovered.audit().len(), 1);
        // Replaying the settled evidence against a fresh order trips
        // the order-binding check; against its own (recovered) order,
        // the consumed nonce stays consumed.
        let (order2, _) = recovered.place_order("alice", "shop", 1_000, "EUR", "", machine.now());
        assert_eq!(
            recovered
                .submit_evidence(order2, &evidence, machine.now())
                .unwrap_err(),
            VerifyError::TokenMismatch
        );
        assert_eq!(
            recovered
                .submit_evidence(order_id, &evidence, machine.now())
                .unwrap_err(),
            VerifyError::Replayed
        );
        // The order pending at crash time settles exactly once.
        let mut human = ConfirmingHuman::new(Intent::approving(&pending_request.transaction), 196);
        let evidence2 = client
            .confirm(&mut machine, &pending_request, &mut human)
            .unwrap();
        recovered
            .submit_evidence(pending_id, &evidence2, machine.now())
            .unwrap();
        assert!(recovered.is_confirmed(pending_id));
        assert_eq!(
            recovered.store().account("alice").unwrap().balance_cents,
            94_900
        );
    }

    #[test]
    fn checkpoint_truncates_log_and_recovery_uses_snapshot() {
        let ca = PrivacyCa::new(512, 201);
        let mut provider = ServiceProvider::new(ca.public_key().clone(), 202);
        let journal = journal();
        provider.attach_journal(Arc::clone(&journal));
        provider.open_account("alice", 50_000);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(203));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let (o1, r1) = provider.place_order("alice", "shop", 2_000, "EUR", "", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&r1.transaction), 204);
        let evidence = client.confirm(&mut machine, &r1, &mut human).unwrap();
        provider
            .submit_evidence(o1, &evidence, machine.now())
            .unwrap();

        assert!(!journal.durable_log_bytes().is_empty());
        let state = provider.checkpoint().expect("journal attached");
        assert_eq!(state.accounts.get("alice"), Some(&48_000));
        assert!(
            journal.durable_log_bytes().is_empty(),
            "checkpoint truncates the WAL"
        );

        // Post-checkpoint activity lands on the (now short) log.
        let (o2, r2) = provider.place_order("alice", "cafe", 500, "EUR", "", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&r2.transaction), 205);
        let evidence2 = client.confirm(&mut machine, &r2, &mut human).unwrap();
        provider
            .submit_evidence(o2, &evidence2, machine.now())
            .unwrap();
        drop(provider);
        journal.crash();

        let (recovered, report) = ServiceProvider::recover(
            ca.public_key().clone(),
            VerifierConfig::default(),
            206,
            Arc::clone(&journal),
        );
        assert!(report.snapshot_used, "recovery seeds from the snapshot");
        assert_eq!(report.records_applied, 2, "only post-checkpoint records");
        assert!(recovered.is_confirmed(o1));
        assert!(recovered.is_confirmed(o2));
        assert_eq!(
            recovered.store().account("alice").unwrap().balance_cents,
            47_500
        );
    }

    #[test]
    fn journaled_service_settles_durably_before_ack() {
        let ca = PrivacyCa::new(512, 211);
        let mut provider = ServiceProvider::new(ca.public_key().clone(), 212);
        let journal = journal();
        provider.attach_journal(Arc::clone(&journal));
        provider.open_account("alice", 10_000);
        provider.attach_service(2, 2);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(213));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let (order_id, request) =
            provider.place_order("alice", "bookshop", 4_200, "EUR", "", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request.transaction), 214);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap();
        // WAL-before-ack: by the time the ticket resolved, the settle
        // record was flushed — a crash right now must not forget it.
        provider.detach_service();
        drop(provider);
        journal.crash();
        let (recovered, _report) = ServiceProvider::recover(
            ca.public_key().clone(),
            VerifierConfig::default(),
            215,
            Arc::clone(&journal),
        );
        assert!(recovered.is_confirmed(order_id));
        assert_eq!(
            recovered.store().account("alice").unwrap().balance_cents,
            5_800
        );
    }

    #[test]
    fn transaction_ids_are_unique_per_provider() {
        let (mut provider, machine, _client) = setup();
        let (_, r1) = provider.place_order("alice", "a", 1, "EUR", "", machine.now());
        let (_, r2) = provider.place_order("alice", "b", 1, "EUR", "", machine.now());
        assert_ne!(r1.transaction.id, r2.transaction.id);
        assert_ne!(r1.nonce, r2.nonce);
    }
}
