//! Pass 4: `forbid-unsafe-everywhere` — every crate root must carry
//! `#![forbid(unsafe_code)]`.
//!
//! The TCB-size argument (paper §5, experiment E7) counts auditable safe
//! Rust; a single `unsafe` block would void the memory-safety part of the
//! audit story. `forbid` (not `deny`) is required so no inner
//! `#[allow]` can re-enable it.

use super::{Finding, Pass};
use crate::diag::Severity;
use crate::source::SourceFile;

/// The `forbid-unsafe-everywhere` pass.
pub struct ForbidUnsafeEverywhere;

/// Is this file a crate root the pass should inspect?
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.ends_with("/src/lib.rs") || path.ends_with("/src/main.rs"))
}

impl Pass for ForbidUnsafeEverywhere {
    fn id(&self) -> &'static str {
        "forbid-unsafe-everywhere"
    }

    fn description(&self) -> &'static str {
        "every crate root must carry #![forbid(unsafe_code)]"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if !is_crate_root(&file.path) {
            return Vec::new();
        }
        let tokens = &file.tokens;
        let found = tokens.windows(8).any(|w| {
            w[0].is_punct("#")
                && w[1].is_punct("!")
                && w[2].is_punct("[")
                && w[3].is_ident("forbid")
                && w[4].is_punct("(")
                && w[5].is_ident("unsafe_code")
                && w[6].is_punct(")")
                && w[7].is_punct("]")
        });
        if found {
            Vec::new()
        } else {
            vec![Finding {
                line: 1,
                severity: Severity::Deny,
                message: "crate root is missing `#![forbid(unsafe_code)]`; the workspace's \
                          auditable-TCB claim requires it in every crate"
                    .to_string(),
            }]
        }
    }
}
