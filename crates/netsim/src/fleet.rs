//! The fleet layer: cheap per-client state machines and open-loop
//! arrival curves.
//!
//! A [`FleetClient`] is a few bytes of state — phase, attempt count,
//! birth time — so a million of them fit comfortably in memory. The
//! protocol logic (what to send when, how the provider answers) lives
//! in the scenario loop; this module only defines the client-visible
//! shapes: phases, the retry policy, and the arrival curves that
//! decide *when* each client shows up. Arrivals are open-loop: the
//! curve is fixed up front from the seed and never reacts to system
//! state, which is what makes saturation measurements honest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Where a client is in its place-order → deliver-evidence →
/// await-receipt run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Not yet arrived.
    Unborn,
    /// Order placed; waiting for the challenge.
    AwaitChallenge,
    /// Evidence delivered; waiting for the receipt.
    AwaitReceipt,
    /// Shed by admission control; waiting out the retry-after hint.
    Backoff,
    /// Receipt received: settled. Terminal.
    Settled,
    /// Receipt received: rejected. Terminal.
    Rejected,
    /// Out of retry budget. Terminal.
    GaveUp,
    /// Churned away mid-flight without retrying. Terminal.
    Abandoned,
}

impl Phase {
    /// True for states that will never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            Phase::Settled | Phase::Rejected | Phase::GaveUp | Phase::Abandoned
        )
    }
}

/// One simulated client. Kept deliberately small — the fleet allocates
/// one of these per simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct FleetClient {
    /// Current protocol phase.
    pub phase: Phase,
    /// Send attempts so far (first try included).
    pub attempts: u8,
    /// True once evidence has been sent at least once — later sends
    /// are replays.
    pub evidence_sent: bool,
    /// Churny client: abandons on its first timeout instead of
    /// retrying.
    pub flaky: bool,
    /// Arrival (order placement) time.
    pub born_at: Duration,
}

impl FleetClient {
    /// A not-yet-arrived client born at `born_at`.
    pub fn new(born_at: Duration, flaky: bool) -> FleetClient {
        FleetClient {
            phase: Phase::Unborn,
            attempts: 0,
            evidence_sent: false,
            flaky,
            born_at,
        }
    }
}

/// Per-client timeout and backoff policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long to wait for a challenge or receipt before retrying.
    pub timeout: Duration,
    /// Base of the exponential backoff between attempts.
    pub backoff_base: Duration,
    /// Total attempts before giving up.
    pub max_attempts: u8,
}

impl RetryPolicy {
    /// Exponential backoff before attempt number `attempt` (1-based;
    /// attempt 1 has no backoff), scaled by a caller-supplied jitter
    /// factor in `[0, 1]` to decorrelate the fleet.
    pub fn backoff(&self, attempt: u8, jitter: f64) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let doublings = u32::from(attempt - 2).min(16);
        let base = self.backoff_base * 2_u32.pow(doublings);
        base + base.mul_f64(jitter)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(250),
            max_attempts: 4,
        }
    }
}

/// When the fleet's orders arrive, independent of system behavior.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalCurve {
    /// Poisson-like process at constant rate `fleet / horizon`:
    /// exponential gaps drawn from the seed.
    Steady,
    /// A background trickle plus a surge: `surge_fraction` of the
    /// fleet arrives inside the window starting at `surge_at`.
    FlashCrowd {
        /// Fraction of clients arriving in the surge window, `[0, 1]`.
        surge_fraction: f64,
        /// Surge window start.
        surge_at: Duration,
        /// Surge window length.
        surge_width: Duration,
    },
    /// Sinusoidal day/night intensity over the horizon (peak at half
    /// the horizon, trough at the edges), sampled by rejection.
    Diurnal,
    /// Steady arrivals, but `flaky_ppm` of clients churn: they abandon
    /// on their first timeout instead of retrying.
    Churn {
        /// Parts-per-million of the fleet that is flaky.
        flaky_ppm: u32,
    },
}

/// The materialized arrival schedule for one fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalPlan {
    /// Per-client arrival time, indexed by fleet position.
    pub born_at: Vec<Duration>,
    /// Per-client churn flag (empty means nobody is flaky).
    pub flaky: Vec<bool>,
}

impl ArrivalCurve {
    /// Materializes arrival times for `clients` clients over `horizon`,
    /// fully determined by `seed`.
    pub fn plan(&self, seed: u64, clients: u32, horizon: Duration) -> ArrivalPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4152_5249_u64);
        let n = clients as usize;
        let mut born_at = Vec::with_capacity(n);
        let mut flaky = Vec::new();
        match self {
            ArrivalCurve::Steady => {
                poisson_fill(&mut born_at, &mut rng, clients, horizon, Duration::ZERO);
            }
            ArrivalCurve::Churn { flaky_ppm } => {
                poisson_fill(&mut born_at, &mut rng, clients, horizon, Duration::ZERO);
                flaky = (0..n)
                    .map(|_| rng.gen_range(0..1_000_000_u32) < *flaky_ppm)
                    .collect();
            }
            ArrivalCurve::FlashCrowd {
                surge_fraction,
                surge_at,
                surge_width,
            } => {
                let surge = (clients as f64 * surge_fraction.clamp(0.0, 1.0)).round() as u32;
                let steady = clients - surge;
                poisson_fill(&mut born_at, &mut rng, steady, horizon, Duration::ZERO);
                poisson_fill(&mut born_at, &mut rng, surge, *surge_width, *surge_at);
            }
            ArrivalCurve::Diurnal => {
                // Intensity 1 + sin(pi * t/h * 2 - pi/2), i.e. zero at
                // the edges and peaking mid-horizon; rejection-sample
                // against the constant majorant 2.
                let h = horizon.as_secs_f64();
                for _ in 0..clients {
                    loop {
                        let t = rng.gen::<f64>() * h;
                        let phase = core::f64::consts::PI * (2.0 * t / h - 0.5);
                        let intensity = 1.0 + phase.sin();
                        if rng.gen::<f64>() * 2.0 < intensity {
                            born_at.push(Duration::from_secs_f64(t));
                            break;
                        }
                    }
                }
            }
        }
        ArrivalPlan { born_at, flaky }
    }
}

/// Appends `count` Poisson-process arrival times over `span`, offset
/// by `offset`, clamping the tail to the span end.
fn poisson_fill(
    out: &mut Vec<Duration>,
    rng: &mut StdRng,
    count: u32,
    span: Duration,
    offset: Duration,
) {
    if count == 0 {
        return;
    }
    let rate = f64::from(count) / span.as_secs_f64().max(1e-9);
    let mut t = 0.0_f64;
    for _ in 0..count {
        // Exponential gap; 1 - u keeps the log argument away from 0.
        let u: f64 = rng.gen();
        t += -(1.0 - u).max(1e-12).ln() / rate;
        let clamped = t.min(span.as_secs_f64());
        out.push(offset + Duration::from_secs_f64(clamped));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: Duration = Duration::from_secs(60);

    #[test]
    fn steady_plan_is_deterministic_and_in_range() {
        let a = ArrivalCurve::Steady.plan(5, 1_000, HORIZON);
        let b = ArrivalCurve::Steady.plan(5, 1_000, HORIZON);
        assert_eq!(a, b);
        assert_eq!(a.born_at.len(), 1_000);
        assert!(a.born_at.iter().all(|t| *t <= HORIZON));
        let c = ArrivalCurve::Steady.plan(6, 1_000, HORIZON);
        assert_ne!(a.born_at, c.born_at, "seed moves the draws");
    }

    #[test]
    fn flash_crowd_concentrates_the_surge() {
        let curve = ArrivalCurve::FlashCrowd {
            surge_fraction: 0.8,
            surge_at: Duration::from_secs(30),
            surge_width: Duration::from_secs(5),
        };
        let plan = curve.plan(9, 10_000, HORIZON);
        let in_window = plan
            .born_at
            .iter()
            .filter(|t| **t >= Duration::from_secs(30) && **t <= Duration::from_secs(35))
            .count();
        assert!(
            in_window >= 7_500,
            "~80% of arrivals inside the 5s window, got {in_window}"
        );
    }

    #[test]
    fn diurnal_peaks_mid_horizon() {
        let plan = ArrivalCurve::Diurnal.plan(4, 10_000, HORIZON);
        let mid = plan
            .born_at
            .iter()
            .filter(|t| **t >= Duration::from_secs(20) && **t <= Duration::from_secs(40))
            .count();
        let edge = plan
            .born_at
            .iter()
            .filter(|t| **t <= Duration::from_secs(10) || **t >= Duration::from_secs(50))
            .count();
        assert!(
            mid > 2 * edge,
            "middle third beats the edges: {mid} vs {edge}"
        );
    }

    #[test]
    fn churn_marks_roughly_the_requested_fraction() {
        let plan = ArrivalCurve::Churn { flaky_ppm: 250_000 }.plan(8, 20_000, HORIZON);
        let flaky = plan.flaky.iter().filter(|f| **f).count();
        assert!(
            (3_000..=7_000).contains(&flaky),
            "~25% flaky, got {flaky} of 20000"
        );
    }

    #[test]
    fn backoff_doubles_and_respects_first_attempt() {
        let p = RetryPolicy {
            timeout: Duration::from_secs(1),
            backoff_base: Duration::from_millis(100),
            max_attempts: 5,
        };
        assert_eq!(p.backoff(1, 0.0), Duration::ZERO);
        assert_eq!(p.backoff(2, 0.0), Duration::from_millis(100));
        assert_eq!(p.backoff(3, 0.0), Duration::from_millis(200));
        assert_eq!(p.backoff(4, 0.5), Duration::from_millis(600));
    }

    #[test]
    fn phases_know_their_terminality() {
        assert!(Phase::Settled.is_terminal());
        assert!(Phase::GaveUp.is_terminal());
        assert!(!Phase::AwaitReceipt.is_terminal());
        assert!(!Phase::Unborn.is_terminal());
    }
}
