//! The machine: CPU with `SKINIT`, TPM on the bus, devices, and the
//! untrusted OS surface.
//!
//! Everything the OS — and therefore malware — can do goes through the
//! `os_*` methods: talk to the TPM at locality 0, inject/read key events,
//! write the display. The *only* path to TPM locality 4 is
//! [`Machine::skinit`], which models the CPU microcode's atomic late
//! launch: suspend the OS, stream the secure loader block to the TPM
//! (resetting and extending PCR 17), enable DMA/interrupt protection, and
//! hand the devices to the PAL. That asymmetry is the paper's root of
//! trust.

use crate::bootlog::{standard_boot, BootLog};
use crate::clock::SimClock;
use crate::display::Display;
use crate::error::PlatformError;
use crate::keyboard::{DeviceOwner, KeyEvent, Keyboard, QueuedEvent};
use std::time::Duration;
use utp_crypto::sha1::Sha1Digest;
use utp_tpm::command as tpmcmd;
use utp_tpm::locality::Locality;
use utp_tpm::pcr::{PcrIndex, PcrSelection};
use utp_tpm::quote::Quote;
use utp_tpm::seal::SealedBlob;
use utp_tpm::{Tpm, TpmConfig, TpmError};

/// Architectural maximum secure-loader-block size (AMD: 64 KiB).
pub const MAX_SLB_LEN: usize = 64 * 1024;

/// The PCR Intel TXT's SINIT measures the MLE into.
pub const TXT_MLE_PCR: u32 = 18;

/// How the current secure session was launched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchInfo {
    /// AMD `SKINIT`: the PAL (SLB) is measured directly into PCR 17.
    Skinit {
        /// Measurement of the launched PAL.
        pal: Sha1Digest,
    },
    /// Intel `GETSEC[SENTER]`: the SINIT ACM lands in PCR 17 and SINIT
    /// measures the MLE (the PAL) into PCR 18.
    Senter {
        /// Measurement of the SINIT authenticated code module.
        sinit: Sha1Digest,
        /// Measurement of the launched MLE/PAL.
        pal: Sha1Digest,
    },
}

impl LaunchInfo {
    /// The PAL's measurement regardless of launch flavor.
    pub fn pal_measurement(&self) -> Sha1Digest {
        match self {
            LaunchInfo::Skinit { pal } => *pal,
            LaunchInfo::Senter { pal, .. } => *pal,
        }
    }

    /// The PCR the session runtime binds the PAL's I/O into: 17 on AMD
    /// (the PAL's own PCR), 18 on Intel (the MLE's PCR).
    pub fn io_pcr(&self) -> PcrIndex {
        match self {
            LaunchInfo::Skinit { .. } => PcrIndex::drtm(),
            LaunchInfo::Senter { .. } => PcrIndex::new(TXT_MLE_PCR).expect("PCR 18 is valid"),
        }
    }
}

/// Machine configuration: the TPM plus late-launch cost model.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// TPM configuration (vendor latency profile, key size, identity seed).
    pub tpm: TpmConfig,
    /// Cost of quiescing the OS and devices before `SKINIT`.
    pub suspend_cost: Duration,
    /// Cost of resuming the OS afterwards.
    pub resume_cost: Duration,
    /// Fixed `SKINIT` microcode cost.
    pub skinit_base: Duration,
    /// Per-SLB-byte `SKINIT` cost (the CPU streams the SLB to the TPM over
    /// the slow LPC bus; this dominates for large PALs).
    pub skinit_per_byte: Duration,
    /// OS build identifier measured into the static PCRs at boot.
    pub os_build: String,
}

impl MachineConfig {
    /// Calibrated costs for a 2011-era AMD platform (see DESIGN.md).
    pub fn realistic(vendor: utp_tpm::VendorProfile, seed: u64) -> Self {
        MachineConfig {
            tpm: TpmConfig::realistic(vendor, seed),
            suspend_cost: Duration::from_millis(25),
            resume_cost: Duration::from_millis(35),
            skinit_base: Duration::from_millis(10),
            skinit_per_byte: Duration::from_nanos(2_700),
            os_build: "2.6.32-generic".to_string(),
        }
    }

    /// Zero-latency configuration for unit tests.
    pub fn fast_for_tests(seed: u64) -> Self {
        MachineConfig {
            tpm: TpmConfig::fast_for_tests(seed),
            suspend_cost: Duration::ZERO,
            resume_cost: Duration::ZERO,
            skinit_base: Duration::ZERO,
            skinit_per_byte: Duration::ZERO,
            os_build: "2.6.32-generic".to_string(),
        }
    }
}

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    clock: SimClock,
    tpm: Tpm,
    keyboard: Keyboard,
    display: Display,
    in_session: bool,
    skinit_count: u64,
    boot_log: BootLog,
}

impl Machine {
    /// Powers on the machine: TPM started, measured boot recorded into the
    /// static PCRs, OS booted and owning devices.
    pub fn new(config: MachineConfig) -> Self {
        let mut tpm = Tpm::new(config.tpm.clone());
        tpm.startup_clear();
        // Measured boot: BIOS → bootloader → kernel into the static PCRs.
        // The trusted path never relies on these (that is its point), but
        // the platform records them as real firmware does.
        let mut boot_log = BootLog::new();
        for (stage, desc, data) in standard_boot(&config.os_build) {
            let measurement = boot_log.record(stage, desc, &data);
            let pcr = PcrIndex::new(stage.pcr()).expect("static pcr index");
            // Firmware retries transient bus faults until the extend
            // lands (real BIOSes poll the TIS status register the same
            // way); only a policy error would be fatal here.
            let mut attempts = 0;
            loop {
                match tpm.extend(Locality::Zero, pcr, measurement.as_bytes()) {
                    Ok(_) => break,
                    Err(utp_tpm::TpmError::Crypto(_)) if attempts < 100 => attempts += 1,
                    // A chip that faults 100 times in a row (or a policy
                    // error) leaves this PCR unmeasured — real firmware
                    // boots anyway and attestation of static PCRs simply
                    // fails later. The trusted path never uses them.
                    Err(_) => break,
                }
            }
        }
        Machine {
            config,
            clock: SimClock::new(),
            tpm,
            keyboard: Keyboard::new(),
            display: Display::new(),
            in_session: false,
            skinit_count: 0,
            boot_log,
        }
    }

    /// The measured-boot event log.
    pub fn boot_log(&self) -> &BootLog {
        &self.boot_log
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// The machine's configuration (cost model parameters).
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Advances virtual time (idle waiting, network delays, human think
    /// time — anything that is not a modeled hardware cost).
    pub fn advance(&mut self, d: Duration) {
        self.clock.advance(d);
    }

    /// Number of completed DRTM launches since power-on.
    pub fn skinit_count(&self) -> u64 {
        self.skinit_count
    }

    /// Direct TPM access for *provisioning* flows that model physical
    /// owner presence (creating the AIK, defining NV space). Runtime
    /// software must use [`Machine::os_tpm_execute`] instead.
    pub fn tpm_provision(&mut self) -> &mut Tpm {
        &mut self.tpm
    }

    /// Read-only TPM access for verifier-side test assertions.
    pub fn tpm(&self) -> &Tpm {
        &self.tpm
    }

    /// Drains the TPM's data-only command journal (see
    /// [`utp_tpm::TpmOpRecord`]). The journal lets an *external* harness
    /// reconstruct per-command timing without the device — which sits in
    /// the TCB — ever calling into a recorder.
    pub fn drain_tpm_op_journal(&mut self) -> Vec<utp_tpm::TpmOpRecord> {
        self.tpm.take_op_journal()
    }

    // ----- the untrusted OS surface ---------------------------------------

    /// Executes a marshaled TPM command at locality 0 (the OS driver path).
    pub fn os_tpm_execute(&mut self, request: &[u8]) -> Vec<u8> {
        let before = self.tpm.busy_time();
        let resp = tpmcmd::execute(&mut self.tpm, Locality::Zero, request);
        let delta = self.tpm.busy_time() - before;
        self.clock.advance(delta);
        resp
    }

    /// OS input-injection service (what a transaction generator uses to
    /// fake keystrokes). Fails during a secure session.
    pub fn os_inject_key(&mut self, event: KeyEvent) -> Result<(), PlatformError> {
        let at = self.clock.now();
        self.keyboard.inject_software(event, at)
    }

    /// OS reads the next key event (normal input path).
    pub fn os_read_key(&mut self) -> Result<Option<QueuedEvent>, PlatformError> {
        self.keyboard.read(DeviceOwner::Os)
    }

    /// OS writes to the console.
    pub fn os_write_display(
        &mut self,
        row: usize,
        col: usize,
        text: &str,
    ) -> Result<(), PlatformError> {
        self.display.write_at(DeviceOwner::Os, row, col, text)
    }

    /// Anyone can *read* the screen (shoulder-surfing is out of scope).
    pub fn read_display(&self) -> Vec<String> {
        self.display.snapshot()
    }

    /// True while a PAL session is active (the OS is suspended).
    pub fn in_secure_session(&self) -> bool {
        self.in_session
    }

    // ----- the human's hardware path ----------------------------------------

    /// A physical key press by the human. Reaches whichever owner holds the
    /// keyboard.
    pub fn hardware_key(&mut self, event: KeyEvent) {
        let at = self.clock.now();
        self.keyboard.press_hardware(event, at);
    }

    // ----- DRTM late launch ---------------------------------------------------

    /// Executes `SKINIT` with the given secure loader block.
    ///
    /// Models the atomic microcode sequence: OS suspend, DMA/interrupt
    /// protection, locality-4 `TPM_HASH_START/DATA/END` (resetting PCR 17
    /// and extending it with `SHA1(slb)`), and device handover. Returns the
    /// live [`SecureSession`].
    ///
    /// # Errors
    ///
    /// * [`PlatformError::AlreadyInSecureSession`] if re-entered.
    /// * [`PlatformError::SlbTooLarge`] beyond the 64 KiB limit.
    pub fn skinit(&mut self, slb: &[u8]) -> Result<SecureSession<'_>, PlatformError> {
        if self.in_session {
            return Err(PlatformError::AlreadyInSecureSession);
        }
        if slb.len() > MAX_SLB_LEN {
            return Err(PlatformError::SlbTooLarge(slb.len()));
        }
        self.clock.advance(self.config.suspend_cost);
        self.tpm.hash_start(Locality::Four)?;
        self.tpm.hash_data(Locality::Four, slb)?;
        let measurement = self.tpm.hash_end(Locality::Four)?;
        let skinit_cost =
            self.config.skinit_base + self.config.skinit_per_byte * (slb.len() as u32);
        self.clock.advance(skinit_cost);
        self.keyboard.set_owner(DeviceOwner::Pal);
        self.display.set_owner(DeviceOwner::Pal);
        self.in_session = true;
        self.skinit_count += 1;
        Ok(SecureSession {
            machine: self,
            launch: LaunchInfo::Skinit { pal: measurement },
            ended: false,
        })
    }

    /// Executes `GETSEC[SENTER]` with the given SINIT ACM and MLE — the
    /// Intel TXT flavor of the late launch. The CPU measures `sinit` into
    /// PCR 17 at locality 4; SINIT then resets PCR 18 at locality 3 and
    /// measures the MLE into it before handing over control.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Machine::skinit`].
    pub fn senter(&mut self, sinit: &[u8], mle: &[u8]) -> Result<SecureSession<'_>, PlatformError> {
        if self.in_session {
            return Err(PlatformError::AlreadyInSecureSession);
        }
        if sinit.len() > MAX_SLB_LEN || mle.len() > MAX_SLB_LEN {
            return Err(PlatformError::SlbTooLarge(sinit.len().max(mle.len())));
        }
        self.clock.advance(self.config.suspend_cost);
        // CPU microcode: SINIT ACM into PCR 17 at locality 4.
        self.tpm.hash_start(Locality::Four)?;
        self.tpm.hash_data(Locality::Four, sinit)?;
        let sinit_m = self.tpm.hash_end(Locality::Four)?;
        // SINIT (locality 3): reset PCR 18, measure the MLE into it.
        let mle_pcr = PcrIndex::new(TXT_MLE_PCR).expect("PCR 18 is valid");
        self.tpm.pcr_reset(Locality::Three, mle_pcr)?;
        let mle_m = utp_crypto::sha1::Sha1::digest(mle);
        self.tpm
            .extend(Locality::Three, mle_pcr, mle_m.as_bytes())?;
        let launch_cost = self.config.skinit_base
            + self.config.skinit_per_byte * ((sinit.len() + mle.len()) as u32);
        self.clock.advance(launch_cost);
        self.keyboard.set_owner(DeviceOwner::Pal);
        self.display.set_owner(DeviceOwner::Pal);
        self.in_session = true;
        self.skinit_count += 1;
        Ok(SecureSession {
            machine: self,
            launch: LaunchInfo::Senter {
                sinit: sinit_m,
                pal: mle_m,
            },
            ended: false,
        })
    }

    fn finish_session(&mut self) {
        // Cap the dynamic PCRs so nothing after the session can masquerade
        // as the PAL: extend a well-known terminator at locality 2 before
        // resume (both the SKINIT PCR 17 and the TXT MLE PCR 18).
        let _ = self.tpm.extend(
            Locality::Two,
            PcrIndex::drtm(),
            session_terminator().as_bytes(),
        );
        let _ = self.tpm.extend(
            Locality::Two,
            PcrIndex::new(TXT_MLE_PCR).expect("PCR 18 is valid"),
            session_terminator().as_bytes(),
        );
        self.keyboard.set_owner(DeviceOwner::Os);
        self.display.set_owner(DeviceOwner::Os);
        self.clock.advance(self.config.resume_cost);
        self.in_session = false;
    }
}

/// The well-known value extended into PCR 17 when a session ends.
pub fn session_terminator() -> Sha1Digest {
    utp_crypto::sha1::Sha1::digest(b"UTP-SESSION-TERMINATOR")
}

/// A live secure session: exclusive devices plus TPM locality 2.
///
/// Dropping the session (or calling [`SecureSession::end`]) caps PCR 17 and
/// resumes the OS.
#[derive(Debug)]
pub struct SecureSession<'m> {
    machine: &'m mut Machine,
    launch: LaunchInfo,
    ended: bool,
}

impl<'m> SecureSession<'m> {
    /// The PAL measurement the TPM recorded (PCR 17 on AMD, PCR 18 on
    /// Intel).
    pub fn measurement(&self) -> Sha1Digest {
        self.launch.pal_measurement()
    }

    /// How this session was launched.
    pub fn launch(&self) -> LaunchInfo {
        self.launch
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.machine.clock.now()
    }

    /// Advances virtual time (PAL compute, human think time).
    pub fn advance(&mut self, d: Duration) {
        self.machine.clock.advance(d);
    }

    /// Runs a TPM operation at this session's privilege and advances the
    /// virtual clock by the chip's modeled execution time.
    fn with_tpm<R>(&mut self, f: impl FnOnce(&mut Tpm) -> R) -> R {
        let before = self.machine.tpm.busy_time();
        let r = f(&mut self.machine.tpm);
        let delta = self.machine.tpm.busy_time() - before;
        self.machine.clock.advance(delta);
        r
    }

    /// Executes a marshaled TPM command at locality 2.
    pub fn tpm_execute(&mut self, request: &[u8]) -> Vec<u8> {
        self.with_tpm(|tpm| tpmcmd::execute(tpm, Locality::Two, request))
    }

    /// Extends a PCR at locality 2.
    pub fn extend(&mut self, pcr: PcrIndex, input: &Sha1Digest) -> Result<Sha1Digest, TpmError> {
        self.with_tpm(|tpm| tpm.extend(Locality::Two, pcr, input.as_bytes()))
    }

    /// Reads a PCR.
    pub fn pcr_read(&mut self, pcr: PcrIndex) -> Result<Sha1Digest, TpmError> {
        self.with_tpm(|tpm| tpm.pcr_read(pcr))
    }

    /// Takes a quote over `selection` with the given nonce.
    pub fn quote(
        &mut self,
        aik_handle: u32,
        selection: PcrSelection,
        nonce: Sha1Digest,
    ) -> Result<Quote, TpmError> {
        self.with_tpm(|tpm| tpm.quote(aik_handle, selection, nonce))
    }

    /// Seals `payload` to the current values of `selection`.
    pub fn seal_to_current(
        &mut self,
        key_handle: u32,
        selection: PcrSelection,
        payload: &[u8],
    ) -> Result<SealedBlob, TpmError> {
        self.with_tpm(|tpm| tpm.seal_to_current(key_handle, selection, payload))
    }

    /// Unseals a blob (subject to its PCR policy).
    pub fn unseal(&mut self, key_handle: u32, blob: &SealedBlob) -> Result<Vec<u8>, TpmError> {
        self.with_tpm(|tpm| tpm.unseal(key_handle, blob))
    }

    /// TPM randomness.
    pub fn get_random(&mut self, len: usize) -> Result<Vec<u8>, TpmError> {
        self.with_tpm(|tpm| tpm.get_random(len))
    }

    /// Increments a monotonic counter.
    pub fn increment_counter(&mut self, handle: u32) -> Result<u64, TpmError> {
        self.with_tpm(|tpm| tpm.increment_counter(handle))
    }

    /// Reads a monotonic counter.
    pub fn read_counter(&mut self, handle: u32) -> Result<u64, TpmError> {
        self.with_tpm(|tpm| tpm.read_counter(handle))
    }

    /// Reads the next key event from the PAL-owned keyboard. The session
    /// holds the keyboard for its whole lifetime, so `NotOwner` here means
    /// the machine model itself is broken — surfaced as an error, not a
    /// panic, so a confirmation session fails closed.
    pub fn read_key(&mut self) -> Result<Option<QueuedEvent>, PlatformError> {
        self.machine.keyboard.read(DeviceOwner::Pal)
    }

    /// Writes to the PAL-owned display.
    pub fn show(&mut self, row: usize, col: usize, text: &str) -> Result<(), PlatformError> {
        self.machine
            .display
            .write_at(DeviceOwner::Pal, row, col, text)
    }

    /// Screen snapshot (what the human sees).
    pub fn screen(&self) -> Vec<String> {
        self.machine.display.snapshot()
    }

    /// A hardware key press arriving mid-session (driven by the human
    /// model in experiments and tests).
    pub fn hardware_key(&mut self, event: KeyEvent) {
        let at = self.machine.clock.now();
        self.machine.keyboard.press_hardware(event, at);
    }

    /// Ends the session: caps PCR 17, returns devices, resumes the OS.
    pub fn end(mut self) {
        self.machine.finish_session();
        self.ended = true;
    }
}

impl Drop for SecureSession<'_> {
    fn drop(&mut self) {
        if !self.ended {
            self.machine.finish_session();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_crypto::sha1::Sha1;

    fn machine() -> Machine {
        Machine::new(MachineConfig::fast_for_tests(11))
    }

    #[test]
    fn skinit_measures_slb_into_pcr17() {
        let mut m = machine();
        let slb = b"the confirmation pal";
        let session = m.skinit(slb).unwrap();
        assert_eq!(session.measurement(), Sha1::digest(slb));
        drop(session);
        // After the session, PCR17 = H(H(0 || H(slb)) || terminator).
        let after_launch =
            Sha1::digest_concat(Sha1Digest::zero().as_bytes(), Sha1::digest(slb).as_bytes());
        let capped = Sha1::digest_concat(after_launch.as_bytes(), session_terminator().as_bytes());
        let resp = m.os_tpm_execute(&tpmcmd::req_pcr_read(PcrIndex::drtm()));
        let resp = tpmcmd::decode_response(&resp).unwrap();
        assert_eq!(resp.body, capped.as_bytes());
    }

    #[test]
    fn os_cannot_fake_a_launch() {
        let mut m = machine();
        // Locality-0 extend of PCR 17 is refused by the TPM.
        let req = tpmcmd::req_extend(PcrIndex::drtm(), &Sha1::digest(b"fake pal"));
        let resp = tpmcmd::decode_response(&m.os_tpm_execute(&req)).unwrap();
        assert_eq!(resp.return_code, tpmcmd::RC_BAD_LOCALITY);
    }

    #[test]
    fn skinit_rejects_reentry_and_oversized_slb() {
        let mut m = machine();
        {
            let _s = m.skinit(b"pal").unwrap();
            // Can't re-enter: requires &mut Machine which _s borrows, so
            // re-entry is structurally impossible from safe code. The
            // runtime flag still guards the OS-resume path:
        }
        assert!(!m.in_secure_session());
        assert!(matches!(
            m.skinit(&vec![0u8; MAX_SLB_LEN + 1]).unwrap_err(),
            PlatformError::SlbTooLarge(_)
        ));
    }

    #[test]
    fn session_isolates_keyboard_from_malware() {
        let mut m = machine();
        let mut session = m.skinit(b"pal").unwrap();
        // Hardware (human) events reach the PAL...
        session.hardware_key(KeyEvent::Char('y'));
        assert_eq!(
            session.read_key().unwrap().unwrap().event,
            KeyEvent::Char('y')
        );
        session.end();
        // ...and software injection works again only after the session.
        m.os_inject_key(KeyEvent::Char('z')).unwrap();
        assert_eq!(m.os_read_key().unwrap().unwrap().event, KeyEvent::Char('z'));
    }

    #[test]
    fn injection_during_session_is_rejected() {
        // Malware cannot reach the injection service mid-session because
        // the OS is suspended; the keyboard model enforces it even if it
        // could. We assert the device-level rule directly.
        let mut m = machine();
        let session = m.skinit(b"pal").unwrap();
        // (Borrow rules prevent calling m.os_inject_key here — which *is*
        // the "OS is suspended" property. Check the device rule:)
        drop(session);
        let mut m2 = machine();
        {
            let _session = m2.skinit(b"pal").unwrap();
        }
        // After drop the OS can inject again.
        assert!(m2.os_inject_key(KeyEvent::Enter).is_ok());
    }

    #[test]
    fn session_display_is_cleared_on_entry_and_exit() {
        let mut m = machine();
        m.os_write_display(0, 0, "OS: click OK to pay attacker")
            .unwrap();
        let mut session = m.skinit(b"pal").unwrap();
        assert!(!session.screen().iter().any(|r| r.contains("attacker")));
        session.show(2, 0, "PAY 42.00 EUR TO bookshop").unwrap();
        assert!(session.screen().iter().any(|r| r.contains("bookshop")));
        session.end();
        assert!(!m.read_display().iter().any(|r| r.contains("bookshop")));
    }

    #[test]
    fn quote_inside_session_covers_pal_measurement() {
        let mut m = machine();
        let aik = m.tpm_provision().make_identity();
        let slb = b"pal-v1";
        let mut session = m.skinit(slb).unwrap();
        let nonce = Sha1::digest(b"nonce");
        let q = session
            .quote(aik, PcrSelection::drtm_only(), nonce)
            .unwrap();
        session.end();
        let pk = m.tpm().read_pubkey(aik).unwrap();
        assert!(q.verify(&pk, &nonce));
        // The quoted PCR17 value equals H(0 || H(slb)).
        let expected =
            Sha1::digest_concat(Sha1Digest::zero().as_bytes(), Sha1::digest(slb).as_bytes());
        assert_eq!(q.pcr_values[0], expected);
    }

    #[test]
    fn sealed_state_survives_sessions_of_same_pal_only() {
        let mut m = machine();
        let srk = utp_tpm::keys::SRK_HANDLE;
        let blob = {
            let mut s = m.skinit(b"pal-A").unwrap();
            s.seal_to_current(srk, PcrSelection::drtm_only(), b"pal-A state")
                .unwrap()
        };
        // Same PAL, next session: unseal succeeds.
        {
            let mut s = m.skinit(b"pal-A").unwrap();
            assert_eq!(s.unseal(srk, &blob).unwrap(), b"pal-A state");
        }
        // Different PAL: PCR17 differs, unseal fails.
        {
            let mut s = m.skinit(b"pal-B").unwrap();
            assert_eq!(s.unseal(srk, &blob).unwrap_err(), TpmError::WrongPcrValue);
        }
        // OS after resume: PCR17 is capped, unseal fails.
        assert!(m.tpm_provision().unseal(srk, &blob).is_err());
    }

    #[test]
    fn clock_advances_with_modeled_costs() {
        let mut m = Machine::new(MachineConfig::realistic(
            utp_tpm::VendorProfile::Infineon,
            5,
        ));
        let t0 = m.now();
        let session = m.skinit(&vec![0xAA; 4096]).unwrap();
        let t1 = session.now();
        // suspend 25ms + skinit 10ms + 4096*2.7us ≈ 46ms.
        assert!(t1 - t0 >= Duration::from_millis(40), "got {:?}", t1 - t0);
        session.end();
        assert!(m.now() - t1 >= Duration::from_millis(35));
    }

    #[test]
    fn skinit_count_tracks_launches() {
        let mut m = machine();
        assert_eq!(m.skinit_count(), 0);
        m.skinit(b"a").unwrap().end();
        m.skinit(b"b").unwrap().end();
        assert_eq!(m.skinit_count(), 2);
    }
}
