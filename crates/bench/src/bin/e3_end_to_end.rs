//! Prints the E3 tables (end-to-end latency sweeps).
use utp_bench::experiments::e3_end_to_end as e3;

fn main() {
    let rtt = e3::run_rtt_sweep();
    let payload = e3::run_payload_sweep();
    let bandwidth = e3::run_bandwidth_sweep();
    println!("{}", e3::render(&rtt, &payload, &bandwidth));
}
