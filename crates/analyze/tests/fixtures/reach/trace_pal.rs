// Fed as `crates/tpm/src/quote_path.rs` (a TCB file). It names the
// flight-recorder crate, so the call resolves cross-crate — exactly the
// PAL-reachable trace emission the explicit tcb-reachability gate
// denies.
use utp_trace::span_volatile;
pub fn attest_with_tracing() {
    span_volatile();
}
