//! The message bus: typed frames routed over a [`Topology`] with
//! per-hop delay, loss, reordering, and scripted partitions.
//!
//! Delivery is simulated end to end in one step: `send` walks the
//! route, accumulates per-hop delay, rolls loss/partition fate per
//! hop, and either schedules one delivery event on the caller's
//! [`EventQueue`] or drops the frame. Accounting is split the way the
//! flat [`Link`](crate::Link) model now splits it: a hop only counts
//! toward `messages_carried`/`bytes_carried` once the frame is known
//! to survive that hop; otherwise it lands in `messages_dropped`/
//! `bytes_dropped` for the hop that killed it.

use crate::event::EventQueue;
use crate::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// What a frame carries — the five message kinds of the confirmation
/// protocol's network footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// Client → provider: open an order.
    PlaceOrder,
    /// Provider → client: the signed challenge/nonce.
    Challenge,
    /// Client → provider: the confirmation evidence. `replay` marks a
    /// retry resending evidence already delivered at least once.
    Evidence {
        /// True when this is a timeout-driven resend.
        replay: bool,
    },
    /// Provider → client: the settlement receipt. `settled` is false
    /// for a rejection receipt.
    Receipt {
        /// True when the transaction settled.
        settled: bool,
    },
    /// Provider → client: admission control shed the submission; retry
    /// no sooner than the carried delay.
    RetryAfter {
        /// Back-off the provider asked for.
        delay: Duration,
    },
}

/// One routed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Typed payload.
    pub payload: Payload,
    /// Wire size in bytes (drives serialization delay).
    pub bytes: u32,
    /// The transaction this frame belongs to.
    pub txn: u64,
}

/// Aggregated per-class link accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Messages that survived a hop of this class.
    pub messages_carried: u64,
    /// Bytes that survived a hop of this class.
    pub bytes_carried: u64,
    /// Messages killed on a hop of this class (loss or partition).
    pub messages_dropped: u64,
    /// Bytes killed on a hop of this class.
    pub bytes_dropped: u64,
}

/// Routes frames over a topology, scheduling deliveries on an
/// [`EventQueue`].
pub struct MessageBus {
    topology: Topology,
    rng: StdRng,
    stats: Vec<ClassStats>,
}

impl MessageBus {
    /// A bus over `topology`, with all jitter/loss/reorder draws
    /// derived from `seed`.
    pub fn new(topology: Topology, seed: u64) -> MessageBus {
        let stats = vec![ClassStats::default(); topology.classes().len()];
        MessageBus {
            topology,
            rng: StdRng::seed_from_u64(seed ^ 0x0042_5553_u64),
            stats,
        }
    }

    /// The topology the bus routes over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-class accounting, indexed like [`Topology::classes`].
    pub fn class_stats(&self) -> &[ClassStats] {
        &self.stats
    }

    /// Sends `frame` at virtual time `now`. On survival the delivery
    /// is scheduled on `queue` and the total one-way delay returned;
    /// a frame killed by loss or a partition window returns `None`.
    pub fn send(
        &mut self,
        queue: &mut EventQueue<Frame>,
        frame: Frame,
        now: Duration,
    ) -> Option<Duration> {
        let delay = self.transit(&frame, now)?;
        queue.schedule(now + delay, frame);
        Some(delay)
    }

    /// Rolls a frame's fate hop by hop and returns its one-way delay,
    /// or `None` if loss or a partition kills it. Accounting happens
    /// here; callers that manage their own event types schedule the
    /// delivery themselves at `now + delay`.
    pub fn transit(&mut self, frame: &Frame, now: Duration) -> Option<Duration> {
        let route = self.topology.route(frame.src, frame.dst);
        let mut elapsed = Duration::ZERO;
        for class in route {
            let idx = class as usize;
            let profile = &self.topology.classes()[idx].1;
            let depart = now + elapsed;
            // Fate first: accounting must not count a frame as carried
            // before it is known to survive the hop.
            let killed = profile.is_partitioned(depart)
                || (profile.loss_ppm > 0
                    && self.rng.gen_range(0..1_000_000_u32) < profile.loss_ppm);
            if killed {
                self.stats[idx].messages_dropped += 1;
                self.stats[idx].bytes_dropped += u64::from(frame.bytes);
                return None;
            }
            self.stats[idx].messages_carried += 1;
            self.stats[idx].bytes_carried += u64::from(frame.bytes);
            let propagation = profile.config.base_rtt / 2;
            let jitter = profile.config.jitter.mul_f64(self.rng.gen::<f64>());
            let serialization =
                Duration::from_secs_f64(f64::from(frame.bytes) / profile.config.bandwidth as f64);
            let reorder = if profile.reorder_ppm > 0
                && self.rng.gen_range(0..1_000_000_u32) < profile.reorder_ppm
            {
                profile.reorder_window.mul_f64(self.rng.gen::<f64>())
            } else {
                Duration::ZERO
            };
            elapsed += propagation + jitter + serialization + reorder;
        }
        Some(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkProfile;
    use crate::LinkConfig;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn frame(src: u32, dst: u32, bytes: u32) -> Frame {
        Frame {
            src: NodeId(src),
            dst: NodeId(dst),
            payload: Payload::PlaceOrder,
            bytes,
            txn: 1,
        }
    }

    #[test]
    fn clean_star_delivers_with_floor_delay() {
        let t = Topology::star(2, LinkProfile::clean(LinkConfig::fixed_rtt(ms(40))));
        let mut bus = MessageBus::new(t, 7);
        let mut q = EventQueue::new();
        let d = bus.send(&mut q, frame(1, 0, 1_000), Duration::ZERO);
        let d = d.expect("clean link never drops");
        assert!(d >= ms(20), "at least half the RTT: {d:?}");
        let (at, f) = q.pop().expect("delivery scheduled");
        assert_eq!(at, d);
        assert_eq!(f.dst, NodeId(0));
        assert_eq!(bus.class_stats()[0].messages_carried, 1);
        assert_eq!(bus.class_stats()[0].bytes_carried, 1_000);
        assert_eq!(bus.class_stats()[0].messages_dropped, 0);
    }

    #[test]
    fn partition_window_drops_and_accounts_separately() {
        let profile =
            LinkProfile::clean(LinkConfig::fixed_rtt(ms(10))).with_partition(ms(100), ms(200));
        let t = Topology::star(1, profile);
        let mut bus = MessageBus::new(t, 7);
        let mut q = EventQueue::new();
        assert!(bus.send(&mut q, frame(1, 0, 64), ms(150)).is_none());
        assert_eq!(bus.class_stats()[0].messages_dropped, 1);
        assert_eq!(bus.class_stats()[0].bytes_dropped, 64);
        assert_eq!(bus.class_stats()[0].messages_carried, 0);
        // After heal, traffic flows again.
        assert!(bus.send(&mut q, frame(1, 0, 64), ms(250)).is_some());
        assert_eq!(bus.class_stats()[0].messages_carried, 1);
    }

    #[test]
    fn total_loss_kills_everything_deterministically() {
        let profile = LinkProfile::clean(LinkConfig::fixed_rtt(ms(10))).with_loss_ppm(1_000_000);
        let t = Topology::star(1, profile);
        let mut bus = MessageBus::new(t, 3);
        let mut q = EventQueue::new();
        for _ in 0..10 {
            assert!(bus.send(&mut q, frame(1, 0, 10), Duration::ZERO).is_none());
        }
        assert_eq!(bus.class_stats()[0].messages_dropped, 10);
        assert!(q.is_empty());
    }

    #[test]
    fn two_tier_hop_accounting_lands_per_class() {
        let core = LinkProfile::clean(LinkConfig::fixed_rtt(ms(4)));
        let leaf = LinkProfile::clean(LinkConfig::fixed_rtt(ms(30)));
        let t = Topology::two_tier(1, 1, core, leaf);
        let mut bus = MessageBus::new(t, 5);
        let mut q = EventQueue::new();
        let d = bus
            .send(&mut q, frame(2, 0, 100), Duration::ZERO)
            .expect("clean path");
        assert!(d >= ms(17), "leaf half-RTT 15ms + core half-RTT 2ms: {d:?}");
        assert_eq!(bus.class_stats()[0].messages_carried, 1, "core hop");
        assert_eq!(bus.class_stats()[1].messages_carried, 1, "leaf hop");
    }

    #[test]
    fn same_seed_same_deliveries() {
        let profile = LinkProfile::clean(LinkConfig::broadband()).with_loss_ppm(200_000);
        let run = |seed: u64| {
            let t = Topology::star(4, profile.clone());
            let mut bus = MessageBus::new(t, seed);
            let mut q = EventQueue::new();
            let mut deliveries = Vec::new();
            for i in 0..40 {
                let f = frame(1 + (i % 4), 0, 200);
                deliveries.push(bus.send(&mut q, f, ms(u64::from(i))));
            }
            (deliveries, bus.class_stats().to_vec())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0, "seed changes the jitter/loss draws");
    }
}
