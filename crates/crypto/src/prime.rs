//! Probabilistic primality testing and prime generation for RSA keys.

use crate::bigint::BigUint;
use rand::Rng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211,
];

/// Number of Miller–Rabin rounds; 2^-80 error bound is ample for a
/// reproduction (FIPS 186-4 table C.2 suggests fewer for these sizes).
const MR_ROUNDS: usize = 40;

/// Returns `true` if `n` is (probably) prime.
///
/// Deterministically correct for `n < 3 215 031 751` via fixed bases, and
/// probabilistically correct (error < 2⁻⁸⁰) above via random bases.
///
/// # Example
///
/// ```
/// use utp_crypto::bigint::BigUint;
/// use utp_crypto::prime::is_probable_prime;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert!(is_probable_prime(&BigUint::from_u64(104_729), &mut rng));
/// assert!(!is_probable_prime(&BigUint::from_u64(104_730), &mut rng));
/// ```
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n == &BigUint::from_u64(2) {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let bp = BigUint::from_u64(p);
        if n == &bp {
            return true;
        }
        if n.rem(&bp).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^r with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while d.is_even() {
        d = d.shr(1);
        r += 1;
    }
    let two = BigUint::from_u64(2);
    let n_minus_2 = n.sub(&two);
    // First a handful of fixed bases (catches small pseudoprimes
    // deterministically), then random bases.
    let fixed: [u64; 7] = [2, 3, 5, 7, 11, 13, 17];
    let witness = |a: BigUint| -> bool {
        // Returns true if `a` witnesses compositeness.
        let mut x = a.mod_pow(&d, n);
        if x.is_one() || x == n_minus_1 {
            return false;
        }
        for _ in 1..r {
            x = x.mod_mul(&x, n);
            if x == n_minus_1 {
                return false;
            }
        }
        true
    };
    for &a in &fixed {
        let ab = BigUint::from_u64(a);
        if ab >= n_minus_1 {
            continue;
        }
        if witness(ab) {
            return false;
        }
    }
    let random_rounds = MR_ROUNDS.saturating_sub(fixed.len());
    for _ in 0..random_rounds {
        // Uniform in [2, n-2].
        let a = loop {
            let c = BigUint::random_below(rng, &n_minus_2);
            if c >= two {
                break c;
            }
        };
        if witness(a) {
            return false;
        }
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 8` — RSA never needs primes that small and the top-two-
/// bits trick below assumes room to set them.
pub fn generate_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 8, "prime size too small: {} bits", bits);
    loop {
        let mut candidate = BigUint::random_odd_with_bits(rng, bits);
        // Set the second-highest bit too so products of two such primes have
        // exactly 2*bits bits, the standard RSA trick.
        candidate.set_bit(bits - 2);
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    #[test]
    fn small_primes_accepted() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 97, 211, 104_729, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), &mut r),
                "{} should be prime",
                p
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 9, 15, 91, 561, 41041, 104_730, 1_000_000_006] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), &mut r),
                "{} should be composite",
                c
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Classic Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 62745, 162401] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), &mut r), "{}", c);
        }
    }

    #[test]
    fn generated_prime_has_requested_bits() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = generate_prime(&mut r, bits);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
        }
    }

    #[test]
    fn generated_primes_are_distinct() {
        let mut r = rng();
        let a = generate_prime(&mut r, 64);
        let b = generate_prime(&mut r, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn product_of_two_primes_is_composite() {
        let mut r = rng();
        let a = generate_prime(&mut r, 32);
        let b = generate_prime(&mut r, 32);
        assert!(!is_probable_prime(&a.mul(&b), &mut r));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_prime_request_panics() {
        let mut r = rng();
        let _ = generate_prime(&mut r, 4);
    }
}
