//! Item-level parsing on top of the lexer: functions with their call
//! sites and macro uses, impl/trait contexts, struct fields and derives.
//!
//! This is deliberately not a full parser. It recognizes exactly the
//! shapes the interprocedural passes need — `fn` items (with enclosing
//! `impl`/`trait` type), `struct` declarations (field names, field type
//! idents, `derive` attributes), and call/macro sites inside bodies —
//! and is conservative everywhere else: anything it cannot classify it
//! simply skips, and the call-graph layer treats unresolvable calls as
//! worst-case.

use crate::lexer::{Token, TokenKind};

/// A function or method call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (the last path segment before `(`).
    pub name: String,
    /// Nearest path qualifier, e.g. `Sha1` in `sha1::Sha1::digest(..)`.
    pub qualifier: Option<String>,
    /// `recv.name(..)` method-call syntax?
    pub is_method: bool,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token index of the name token (into the file's token stream).
    pub tok: usize,
    /// Token index range of the argument list, exclusive of the parens.
    pub args: (usize, usize),
}

/// A macro invocation `name!(..)` / `name![..]` / `name!{..}`.
#[derive(Debug, Clone)]
pub struct MacroUse {
    /// Macro name without the `!`.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token index range of the arguments, exclusive of the delimiters.
    pub args: (usize, usize),
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` target type, if any.
    pub impl_type: Option<String>,
    /// Line of the `fn` keyword.
    pub start_line: u32,
    /// Start line including any preceding `#[..]` attributes.
    pub attr_line: u32,
    /// Line of the closing brace (or the `;` for bodyless decls).
    pub end_line: u32,
    /// Token range of the body including braces; `None` for decls.
    pub body: Option<(usize, usize)>,
    /// Identifier tokens of the return type (empty when none).
    pub ret_idents: Vec<String>,
    /// Calls made inside the body.
    pub calls: Vec<CallSite>,
    /// Macros invoked inside the body.
    pub macros: Vec<MacroUse>,
}

/// One field of a struct.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name (empty for tuple fields).
    pub name: String,
    /// All identifier tokens of the field type, e.g. `HashMap u64 Vec u8`.
    pub type_idents: Vec<String>,
}

/// One `struct` declaration.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Line of the `struct` keyword.
    pub line: u32,
    /// Line of a `#[derive(.. Debug ..)]` attribute, if present.
    pub derive_debug_line: Option<u32>,
    /// Declared fields.
    pub fields: Vec<FieldItem>,
}

/// One `impl` block header.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Trait being implemented (`Debug` in `impl fmt::Debug for X`).
    pub trait_name: Option<String>,
    /// Target type name (`X`).
    pub type_name: String,
}

/// Everything item-level parsed out of one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// All functions, in source order.
    pub fns: Vec<FnItem>,
    /// All struct declarations.
    pub structs: Vec<StructItem>,
    /// All impl block headers.
    pub impls: Vec<ImplInfo>,
    /// Attribute-inclusive line spans of items (fn/struct/enum/trait/
    /// impl/mod), used for whole-item suppression coverage.
    pub item_spans: Vec<(u32, u32)>,
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "return", "loop", "for", "in", "as", "let", "mut", "ref",
    "move", "fn", "impl", "dyn", "box", "unsafe", "where", "yield", "Self",
];

/// Parses the item structure of one token stream.
pub fn parse_items(tokens: &[Token]) -> FileItems {
    let mut out = FileItems::default();
    // (type context, token index of the context's closing brace)
    let mut ctxs: Vec<(Option<String>, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while ctxs.last().is_some_and(|&(_, close)| i > close) {
            ctxs.pop();
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" if !in_type_position(tokens, i) => {
                let Some(open) = find_forward(tokens, i + 1, "{") else {
                    break;
                };
                let Some(close) = matching(tokens, open, "{", "}") else {
                    break;
                };
                let (trait_name, type_name) = parse_impl_header(&tokens[i + 1..open]);
                out.item_spans
                    .push((attr_line(tokens, i), tokens[close].line));
                if let Some(type_name) = type_name {
                    out.impls.push(ImplInfo {
                        trait_name,
                        type_name: type_name.clone(),
                    });
                    ctxs.push((Some(type_name), close));
                }
                i = open + 1;
            }
            "trait" if tokens.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident) => {
                let name = tokens[i + 1].text.clone();
                let open = find_forward(tokens, i + 2, "{");
                let semi = find_forward(tokens, i + 2, ";");
                match (open, semi) {
                    (Some(open), semi) if semi.is_none_or(|s| open < s) => {
                        let Some(close) = matching(tokens, open, "{", "}") else {
                            break;
                        };
                        out.item_spans
                            .push((attr_line(tokens, i), tokens[close].line));
                        ctxs.push((Some(name), close));
                        i = open + 1;
                    }
                    _ => i += 1,
                }
            }
            "mod"
                if tokens.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident)
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct("{")) =>
            {
                if let Some(close) = matching(tokens, i + 2, "{", "}") {
                    out.item_spans
                        .push((attr_line(tokens, i), tokens[close].line));
                }
                i += 3;
            }
            "struct" | "enum" | "union" => {
                let end = parse_struct_like(tokens, i, &mut out);
                i = end;
            }
            "fn" if tokens.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident) => {
                let end = parse_fn(
                    tokens,
                    i,
                    ctxs.last().and_then(|(c, _)| c.clone()),
                    &mut out,
                );
                i = end;
            }
            _ => i += 1,
        }
    }
    out
}

/// `impl` directly after these puncts is `impl Trait` type syntax, not a
/// block: `-> impl Iterator`, `(x: impl Fn())`, generic args, bounds.
fn in_type_position(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) else {
        return false;
    };
    ["->", "(", ",", "<", "&", "=", "+", ":", "::"]
        .iter()
        .any(|p| prev.is_punct(p))
}

/// Splits an impl header into `(trait, type)`: the segment after a
/// top-level `for` is the type, anything before it the trait.
fn parse_impl_header(header: &[Token]) -> (Option<String>, Option<String>) {
    let mut j = 0;
    // Skip leading generic params `impl<..>`.
    if header.first().is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(header, 0);
    }
    // Find a top-level `for` separator (not HRTB `for<'a>`).
    let mut split = None;
    let mut k = j;
    while k < header.len() {
        let t = &header[k];
        if t.is_punct("<") {
            k = skip_angles(header, k);
            continue;
        }
        if t.is_ident("for") && !header.get(k + 1).is_some_and(|n| n.is_punct("<")) {
            split = Some(k);
            break;
        }
        k += 1;
    }
    let (trait_seg, type_seg) = match split {
        Some(s) => (&header[j..s], &header[s + 1..]),
        None => (&header[0..0], &header[j..]),
    };
    (path_last_ident(trait_seg), path_first_type_ident(type_seg))
}

/// Last identifier of a path before generics: `fmt::Debug` → `Debug`.
fn path_last_ident(seg: &[Token]) -> Option<String> {
    let mut last = None;
    for t in seg {
        if t.is_punct("<") {
            break;
        }
        if t.kind == TokenKind::Ident {
            last = Some(t.text.clone());
        }
    }
    last
}

/// First meaningful type identifier: `&mut Ticket<T>` → `Ticket`.
fn path_first_type_ident(seg: &[Token]) -> Option<String> {
    seg.iter()
        .find(|t| t.kind == TokenKind::Ident && !t.is_ident("dyn") && !t.is_ident("mut"))
        .map(|t| t.text.clone())
}

/// Skips a balanced `<..>` group starting at `open`; returns the index
/// one past the closing `>`.
fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < tokens.len() {
        if tokens[k].is_punct("<") {
            depth += 1;
        } else if tokens[k].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    tokens.len()
}

/// Parses a struct/enum/union starting at keyword index `kw`; records a
/// `StructItem` for structs. Returns the index to resume scanning at.
fn parse_struct_like(tokens: &[Token], kw: usize, out: &mut FileItems) -> usize {
    let Some(name_tok) = tokens.get(kw + 1) else {
        return kw + 1;
    };
    if name_tok.kind != TokenKind::Ident {
        return kw + 1;
    }
    let mut j = kw + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(tokens, j);
    }
    // Find the body start: `;` (unit), `(` (tuple) or `{` (named), skipping
    // a where clause.
    let mut body = None;
    while let Some(t) = tokens.get(j) {
        if t.is_punct(";") {
            break;
        }
        if t.is_punct("(") || t.is_punct("{") {
            body = Some(j);
            break;
        }
        if t.is_punct("<") {
            j = skip_angles(tokens, j);
            continue;
        }
        j += 1;
    }
    let start = attr_line(tokens, kw);
    let (fields, end) = match body {
        Some(open) if tokens[open].is_punct("{") => {
            let close = matching(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
            (parse_named_fields(&tokens[open + 1..close]), close)
        }
        Some(open) => {
            let close = matching(tokens, open, "(", ")").unwrap_or(tokens.len() - 1);
            (parse_tuple_fields(&tokens[open + 1..close]), close)
        }
        None => (Vec::new(), j.min(tokens.len().saturating_sub(1))),
    };
    out.item_spans
        .push((start, tokens.get(end).map_or(start, |t| t.line)));
    if tokens[kw].is_ident("struct") {
        out.structs.push(StructItem {
            name: name_tok.text.clone(),
            line: tokens[kw].line,
            derive_debug_line: derive_debug_line(tokens, kw),
            fields,
        });
    }
    // Tuple structs end with `;` after the paren group; either way the
    // caller resumes after `end` and skips any trailing `;` naturally.
    end + 1
}

/// Finds a `#[derive(.. Debug ..)]` in the attributes preceding `kw`.
fn derive_debug_line(tokens: &[Token], kw: usize) -> Option<u32> {
    let mut k = kw;
    // Step back over visibility (`pub`, `pub(crate)`) between attributes
    // and the `struct` keyword itself.
    loop {
        if k >= 1 && tokens[k - 1].is_ident("pub") {
            k -= 1;
        } else if k >= 1 && tokens[k - 1].is_punct(")") {
            match matching_back(tokens, k - 1, "(", ")") {
                Some(open) if open >= 1 && tokens[open - 1].is_ident("pub") => k = open - 1,
                _ => break,
            }
        } else {
            break;
        }
    }
    while k >= 2 && tokens[k - 1].is_punct("]") {
        let open = matching_back(tokens, k - 1, "[", "]")?;
        if open == 0 || !tokens[open - 1].is_punct("#") {
            return None;
        }
        let attr = &tokens[open + 1..k - 1];
        if attr.first().is_some_and(|t| t.is_ident("derive"))
            && attr.iter().any(|t| t.is_ident("Debug"))
        {
            return Some(tokens[open - 1].line);
        }
        k = open - 1;
    }
    None
}

/// Parses `name: Type, ..` field lists (attributes and `pub` skipped).
fn parse_named_fields(body: &[Token]) -> Vec<FieldItem> {
    let mut fields = Vec::new();
    let mut j = 0;
    while j < body.len() {
        // Skip attributes on the field.
        while body.get(j).is_some_and(|t| t.is_punct("#")) {
            match body
                .get(j + 1)
                .and_then(|_| matching(body, j + 1, "[", "]"))
            {
                Some(close) => j = close + 1,
                None => return fields,
            }
        }
        if body.get(j).is_some_and(|t| t.is_ident("pub")) {
            j += 1;
            if body.get(j).is_some_and(|t| t.is_punct("(")) {
                match matching(body, j, "(", ")") {
                    Some(close) => j = close + 1,
                    None => return fields,
                }
            }
        }
        let Some(name) = body.get(j) else { break };
        if name.kind != TokenKind::Ident || !body.get(j + 1).is_some_and(|t| t.is_punct(":")) {
            j += 1;
            continue;
        }
        let (type_idents, next) = collect_type_until_comma(body, j + 2);
        fields.push(FieldItem {
            name: name.text.clone(),
            type_idents,
        });
        j = next;
    }
    fields
}

/// Parses tuple-struct field types `(TypeA, TypeB)`.
fn parse_tuple_fields(body: &[Token]) -> Vec<FieldItem> {
    let mut fields = Vec::new();
    let mut j = 0;
    while j < body.len() {
        let (type_idents, next) = collect_type_until_comma(body, j);
        if !type_idents.is_empty() {
            fields.push(FieldItem {
                name: String::new(),
                type_idents,
            });
        }
        if next <= j {
            break;
        }
        j = next;
    }
    fields
}

/// Collects identifier tokens of a type up to a top-level `,`; returns
/// the idents and the index past the comma.
fn collect_type_until_comma(body: &[Token], mut j: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut angle = 0i32;
    let mut paren = 0i32;
    while j < body.len() {
        let t = &body[j];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            paren += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            paren -= 1;
        } else if t.is_punct(",") && angle <= 0 && paren <= 0 {
            return (idents, j + 1);
        } else if t.kind == TokenKind::Ident && !t.is_ident("pub") && !t.is_ident("dyn") {
            idents.push(t.text.clone());
        }
        j += 1;
    }
    (idents, j)
}

/// Parses a `fn` item starting at the keyword; returns the resume index.
fn parse_fn(tokens: &[Token], kw: usize, impl_type: Option<String>, out: &mut FileItems) -> usize {
    let name = tokens[kw + 1].text.clone();
    // Signature runs to the first `{` or `;` at group depth 0 — a `;`
    // inside an array type like `&[u8; 32]` does not end the item.
    let mut j = kw + 2;
    let mut ret_start = None;
    let mut body_open = None;
    let mut semi = None;
    let mut depth = 0i32;
    while let Some(t) = tokens.get(j) {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct("{") {
                body_open = Some(j);
                break;
            }
            if t.is_punct(";") {
                semi = Some(j);
                break;
            }
            if t.is_punct("->") && ret_start.is_none() {
                ret_start = Some(j + 1);
            }
        }
        j += 1;
    }
    let sig_end = body_open.or(semi).unwrap_or(tokens.len());
    let ret_idents = ret_start
        .map(|r| {
            tokens[r..sig_end]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone())
                .collect()
        })
        .unwrap_or_default();
    let attr = attr_line(tokens, kw);
    match body_open {
        Some(open) => {
            let close = matching(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
            let (calls, macros) = extract_calls(tokens, open + 1, close);
            out.item_spans.push((attr, tokens[close].line));
            out.fns.push(FnItem {
                name,
                impl_type,
                start_line: tokens[kw].line,
                attr_line: attr,
                end_line: tokens[close].line,
                body: Some((open, close)),
                ret_idents,
                calls,
                macros,
            });
            close + 1
        }
        None => {
            let end = semi.unwrap_or(kw + 1);
            out.item_spans.push((attr, tokens[end].line));
            out.fns.push(FnItem {
                name,
                impl_type,
                start_line: tokens[kw].line,
                attr_line: attr,
                end_line: tokens[end].line,
                body: None,
                ret_idents,
                calls: Vec::new(),
                macros: Vec::new(),
            });
            end + 1
        }
    }
}

/// Extracts call and macro sites from a body token range `[from, to)`.
/// Nested items are scanned too (their calls attribute to the outer fn,
/// which is conservative for reachability).
fn extract_calls(tokens: &[Token], from: usize, to: usize) -> (Vec<CallSite>, Vec<MacroUse>) {
    let mut calls = Vec::new();
    let mut macros = Vec::new();
    let mut j = from;
    while j < to {
        let t = &tokens[j];
        if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            j += 1;
            continue;
        }
        // `fn name` declarations are not calls.
        if j > 0 && tokens[j - 1].is_ident("fn") {
            j += 1;
            continue;
        }
        // Macro use: `name!( .. )` / `![..]` / `!{..}`.
        if tokens.get(j + 1).is_some_and(|n| n.is_punct("!")) {
            if let Some(open) = tokens.get(j + 2) {
                let delim = [("(", ")"), ("[", "]"), ("{", "}")]
                    .into_iter()
                    .find(|(o, _)| open.is_punct(o));
                if let Some((o, c)) = delim {
                    if let Some(close) = matching(tokens, j + 2, o, c) {
                        macros.push(MacroUse {
                            name: t.text.clone(),
                            line: t.line,
                            args: (j + 3, close),
                        });
                        // Do not skip the args: calls inside them count.
                        j += 3;
                        continue;
                    }
                }
            }
            j += 2;
            continue;
        }
        // Plain or turbofished call.
        let mut open = j + 1;
        if tokens.get(j + 1).is_some_and(|n| n.is_punct("::"))
            && tokens.get(j + 2).is_some_and(|n| n.is_punct("<"))
        {
            open = skip_angles(tokens, j + 2);
        }
        if tokens.get(open).is_some_and(|n| n.is_punct("(")) {
            if let Some(close) = matching(tokens, open, "(", ")") {
                let is_method = j > 0 && tokens[j - 1].is_punct(".");
                let qualifier = (j >= 2
                    && tokens[j - 1].is_punct("::")
                    && tokens[j - 2].kind == TokenKind::Ident)
                    .then(|| tokens[j - 2].text.clone());
                calls.push(CallSite {
                    name: t.text.clone(),
                    qualifier,
                    is_method,
                    line: t.line,
                    tok: j,
                    args: (open + 1, close),
                });
            }
        }
        j += 1;
    }
    (calls, macros)
}

/// Start line of the item at `kw` including contiguous preceding
/// `#[..]` attribute groups.
fn attr_line(tokens: &[Token], kw: usize) -> u32 {
    let mut k = kw;
    let mut line = tokens[kw].line;
    // Skip visibility / qualifiers back to attributes: `pub(crate) fn`,
    // `pub async unsafe fn`, `pub const fn` ...
    while k > 0 {
        let p = &tokens[k - 1];
        let is_qual = p.kind == TokenKind::Ident
            && ["pub", "const", "async", "unsafe", "extern", "default"].contains(&p.text.as_str());
        if is_qual || p.is_punct(")") && k >= 2 && is_vis_group(tokens, k - 1) {
            if p.is_punct(")") {
                let Some(open) = matching_back(tokens, k - 1, "(", ")") else {
                    break;
                };
                k = open;
            } else {
                k -= 1;
            }
            line = tokens[k].line.min(line);
            continue;
        }
        break;
    }
    while k >= 2 && tokens[k - 1].is_punct("]") {
        let Some(open) = matching_back(tokens, k - 1, "[", "]") else {
            break;
        };
        if open == 0 || !tokens[open - 1].is_punct("#") {
            break;
        }
        line = tokens[open - 1].line;
        k = open - 1;
    }
    line
}

/// Is the `)` at `close` the end of a `pub(..)` visibility group?
fn is_vis_group(tokens: &[Token], close: usize) -> bool {
    matching_back(tokens, close, "(", ")")
        .and_then(|open| open.checked_sub(1))
        .is_some_and(|p| tokens[p].is_ident("pub"))
}

/// Index of the first `what` punct at or after `from`.
fn find_forward(tokens: &[Token], from: usize, what: &str) -> Option<usize> {
    (from..tokens.len()).find(|&i| tokens[i].is_punct(what))
}

/// Index of the bracket matching the opener at `open_idx`.
pub fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            match depth {
                0 => return None,
                1 => return Some(i),
                _ => depth -= 1,
            }
        }
    }
    None
}

/// Index of the bracket matching the closer at `close_idx`, scanning
/// backwards.
pub fn matching_back(tokens: &[Token], close_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for i in (0..=close_idx).rev() {
        let t = &tokens[i];
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            match depth {
                0 => return None,
                1 => return Some(i),
                _ => depth -= 1,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn parses_free_and_impl_fns_with_calls() {
        let src = "\
pub fn free(x: u32) -> u32 {
    helper(x)
}

impl Widget {
    fn method(&self) {
        self.other();
        utp_crypto::sha1::Sha1::digest(b\"x\");
    }
}
";
        let f = items(src);
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "free");
        assert_eq!(f.fns[0].impl_type, None);
        assert_eq!(f.fns[0].calls[0].name, "helper");
        assert_eq!(f.fns[1].name, "method");
        assert_eq!(f.fns[1].impl_type.as_deref(), Some("Widget"));
        let calls: Vec<&str> = f.fns[1].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(calls.contains(&"other"));
        assert!(calls.contains(&"digest"));
        let digest = f.fns[1].calls.iter().find(|c| c.name == "digest").unwrap();
        assert_eq!(digest.qualifier.as_deref(), Some("Sha1"));
        assert!(!digest.is_method);
        assert!(
            f.fns[1]
                .calls
                .iter()
                .find(|c| c.name == "other")
                .unwrap()
                .is_method
        );
    }

    #[test]
    fn trait_impl_header_resolves_type_after_for() {
        let f = items("impl fmt::Debug for Verifier { fn fmt(&self) {} }\n");
        assert_eq!(f.impls.len(), 1);
        assert_eq!(f.impls[0].trait_name.as_deref(), Some("Debug"));
        assert_eq!(f.impls[0].type_name, "Verifier");
        assert_eq!(f.fns[0].impl_type.as_deref(), Some("Verifier"));
    }

    #[test]
    fn impl_trait_in_return_position_is_not_a_block() {
        let f = items("fn passes() -> impl Iterator<Item = u32> {\n    helper()\n}\n");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].impl_type, None);
        assert_eq!(f.fns[0].calls[0].name, "helper");
    }

    #[test]
    fn struct_fields_and_derive_debug_are_captured() {
        let src = "\
#[derive(Debug, Clone)]
pub struct KeySlot {
    pub handle: u32,
    pub keypair: RsaKeyPair,
    slots: HashMap<u32, Vec<u8>>,
}
";
        let f = items(src);
        assert_eq!(f.structs.len(), 1);
        let s = &f.structs[0];
        assert_eq!(s.name, "KeySlot");
        assert_eq!(s.derive_debug_line, Some(1));
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[1].name, "keypair");
        assert_eq!(s.fields[1].type_idents, vec!["RsaKeyPair"]);
        assert_eq!(s.fields[2].type_idents, vec!["HashMap", "u32", "Vec", "u8"]);
    }

    #[test]
    fn macros_and_turbofish_calls_are_extracted() {
        let src = "\
fn f(v: Vec<u32>) {
    println!(\"{} {}\", v.len(), session_key);
    let _x = v.iter().collect::<Vec<_>>();
}
";
        let f = items(src);
        let m = &f.fns[0].macros;
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "println");
        let calls: Vec<&str> = f.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(calls.contains(&"collect"));
        assert!(calls.contains(&"len"));
    }

    #[test]
    fn attr_line_covers_attributes_and_visibility() {
        let src = "\
#[inline]
#[must_use]
pub(crate) fn f() -> u32 {
    3
}
";
        let f = items(src);
        assert_eq!(f.fns[0].attr_line, 1);
        assert_eq!(f.fns[0].start_line, 3);
        assert_eq!(f.fns[0].end_line, 5);
    }
}
