//! The pass registry and shared pass helpers.

pub mod authz_flow;
pub mod ct_discipline;
pub mod flow;
pub mod forbid_unsafe;
pub mod lock_discipline;
pub mod no_panic;
pub mod no_panic_transitive;
pub mod protocol_order;
pub mod secret_taint;
pub mod tcb_boundary;
pub mod tcb_reachability;
pub mod untrusted_arith;
pub mod wallclock;

use crate::diag::Severity;
use crate::graph::WorkspaceIndex;
use crate::source::SourceFile;

/// A raw finding from one pass, before suppression filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    /// 1-based line number.
    pub line: u32,
    /// Gate or advisory.
    pub severity: Severity,
    /// Explanation including the suggested fix.
    pub message: String,
}

/// One analysis pass. File-local passes implement [`Pass::check`];
/// interprocedural passes implement [`Pass::check_workspace`] over the
/// symbol index / call graph. A pass may implement both.
pub trait Pass {
    /// Stable lint id, e.g. `no-panic-in-tcb` (used in allow annotations).
    fn id(&self) -> &'static str;

    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;

    /// Runs the file-local pass; returns raw findings (suppressions are
    /// applied by the driver).
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let _ = file;
        Vec::new()
    }

    /// Runs the workspace-wide pass; returns `(file index, finding)`
    /// pairs against [`WorkspaceIndex::files`].
    fn check_workspace(&self, ws: &WorkspaceIndex) -> Vec<(usize, Finding)> {
        let _ = ws;
        Vec::new()
    }
}

/// All passes, in reporting order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(tcb_boundary::TcbBoundary),
        Box::new(no_panic::NoPanicInTcb),
        Box::new(ct_discipline::CtDiscipline),
        Box::new(forbid_unsafe::ForbidUnsafeEverywhere),
        Box::new(wallclock::WallclockInModel),
        Box::new(tcb_reachability::TcbReachability),
        Box::new(no_panic_transitive::NoPanicTransitive),
        Box::new(secret_taint::SecretTaint),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(untrusted_arith::UntrustedArith),
        Box::new(authz_flow::AuthzFlow),
        Box::new(protocol_order::ProtocolOrder),
    ]
}

/// Files forming the trusted computing base: the confirmation PAL(s) and
/// the whole TPM driver crate.
pub fn is_tcb_path(path: &str) -> bool {
    path.starts_with("crates/tpm/src/")
        || path == "crates/flicker/src/pal.rs"
        || path == "crates/core/src/pal.rs"
}

/// Words that mark a binding as secret-carrying for ct-discipline.
const SECRET_WORDS: &[&str] = &[
    "key", "keys", "secret", "secrets", "auth", "hmac", "digest", "digests", "nonce", "nonces",
    "mac", "macs", "tag", "tags",
];

/// Does this identifier name secret material (component-wise match, so
/// `session_key` and `auth_digest` hit but `machine` does not)?
/// SCREAMING_CASE identifiers are exempt: constants like `DIGEST_LEN`
/// are public protocol parameters, not secret bindings.
pub fn is_secret_ident(ident: &str) -> bool {
    if ident
        .chars()
        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
    {
        return false;
    }
    ident
        .split('_')
        .any(|component| SECRET_WORDS.contains(&component.to_ascii_lowercase().as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_ident_matches_components_not_substrings() {
        assert!(is_secret_ident("key"));
        assert!(is_secret_ident("session_key"));
        assert!(is_secret_ident("auth_digest"));
        assert!(is_secret_ident("expected_hmac"));
        assert!(!is_secret_ident("machine"));
        assert!(!is_secret_ident("keyboard"));
        assert!(!is_secret_ident("monkey"));
    }

    #[test]
    fn tcb_paths_cover_pal_and_tpm() {
        assert!(is_tcb_path("crates/tpm/src/device.rs"));
        assert!(is_tcb_path("crates/flicker/src/pal.rs"));
        assert!(is_tcb_path("crates/core/src/pal.rs"));
        assert!(!is_tcb_path("crates/server/src/flow.rs"));
        assert!(!is_tcb_path("crates/tpm/tests/properties.rs"));
    }
}
