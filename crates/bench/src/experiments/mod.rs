//! Experiment implementations E1–E7 (see DESIGN.md for the index).

pub mod e10_service;
pub mod e11_durability;
pub mod e12_explore;
pub mod e13_fleet;
pub mod e1_tpm_micro;
pub mod e2_session_breakdown;
pub mod e3_end_to_end;
pub mod e4_server_throughput;
pub mod e5_attacks;
pub mod e6_captcha_compare;
pub mod e7_tcb_size;
pub mod e8_amortized;
pub mod e9_batching;
