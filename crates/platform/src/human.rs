//! The human operator model.
//!
//! The paper's user-facing numbers (how long confirmation takes, how often
//! users mistype a confirmation code, how long CAPTCHA solving takes by
//! comparison) require a human. We model one with seedable distributions
//! so every experiment is reproducible:
//!
//! * reading: a fixed orientation time plus a per-character rate
//!   (~250 words/min ≈ 20 chars/s, the usual HCI estimate);
//! * typing: per-character delays around a configurable mean (~40 wpm for
//!   a non-expert confirming a code);
//! * errors: a per-character mistype probability; mistypes are *corrected*
//!   (backspace + retype) with some probability, otherwise submitted wrong.

use crate::keyboard::KeyEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Configuration of the simulated human.
#[derive(Debug, Clone)]
pub struct HumanConfig {
    /// Fixed time to orient on a freshly drawn screen.
    pub orientation: Duration,
    /// Reading rate in characters per second.
    pub read_cps: f64,
    /// Mean per-character typing interval.
    pub key_interval: Duration,
    /// Probability of mistyping any given character.
    pub error_rate: f64,
    /// Probability a mistype is noticed and corrected.
    pub correction_rate: f64,
}

impl Default for HumanConfig {
    fn default() -> Self {
        HumanConfig {
            orientation: Duration::from_millis(1200),
            read_cps: 20.0,
            key_interval: Duration::from_millis(260),
            error_rate: 0.02,
            correction_rate: 0.9,
        }
    }
}

/// What a typing episode produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedInput {
    /// The key events, in order, including any backspace corrections.
    pub events: Vec<KeyEvent>,
    /// The final string as the receiving device will reconstruct it.
    pub final_text: String,
    /// Total virtual time spent typing.
    pub elapsed: Duration,
    /// True if an uncorrected error made `final_text` differ from the
    /// intended string.
    pub submitted_wrong: bool,
}

/// A deterministic simulated human operator.
#[derive(Debug, Clone)]
pub struct HumanModel {
    config: HumanConfig,
    rng: StdRng,
}

impl HumanModel {
    /// Creates a human with the default configuration and the given seed.
    pub fn new(seed: u64) -> Self {
        Self::with_config(HumanConfig::default(), seed)
    }

    /// Creates a human with explicit parameters.
    pub fn with_config(config: HumanConfig, seed: u64) -> Self {
        HumanModel {
            config,
            rng: StdRng::seed_from_u64(seed ^ 0x0048_554d_414e_u64),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HumanConfig {
        &self.config
    }

    /// Time to read `text` on screen (orientation + rate), with ±20%
    /// lognormal-ish jitter.
    pub fn reading_time(&mut self, text: &str) -> Duration {
        let base = self.config.orientation.as_secs_f64()
            + text.chars().count() as f64 / self.config.read_cps;
        let jitter = 0.8 + 0.4 * self.rng.gen::<f64>();
        Duration::from_secs_f64(base * jitter)
    }

    /// Types `intended`, producing key events, timing and error outcome.
    pub fn type_string(&mut self, intended: &str) -> TypedInput {
        let mut events = Vec::new();
        let mut final_text = String::new();
        let mut elapsed = Duration::ZERO;
        let mut submitted_wrong = false;
        for ch in intended.chars() {
            elapsed += self.key_delay();
            if self.rng.gen::<f64>() < self.config.error_rate {
                // Mistype: a neighbouring character.
                let wrong = Self::neighbour(ch);
                events.push(KeyEvent::Char(wrong));
                final_text.push(wrong);
                if self.rng.gen::<f64>() < self.config.correction_rate {
                    // Notice and fix: backspace + correct char.
                    elapsed += self.key_delay() * 2;
                    events.push(KeyEvent::Backspace);
                    final_text.pop();
                    elapsed += self.key_delay();
                    events.push(KeyEvent::Char(ch));
                    final_text.push(ch);
                } else {
                    submitted_wrong = true;
                }
            } else {
                events.push(KeyEvent::Char(ch));
                final_text.push(ch);
            }
        }
        elapsed += self.key_delay();
        events.push(KeyEvent::Enter);
        TypedInput {
            events,
            final_text,
            elapsed,
            submitted_wrong,
        }
    }

    /// A single keypress (e.g. pressing Enter to confirm, Escape to
    /// reject) with its think-free motor delay.
    pub fn press(&mut self, key: KeyEvent) -> (KeyEvent, Duration) {
        (key, self.key_delay())
    }

    fn key_delay(&mut self) -> Duration {
        let mean = self.config.key_interval.as_secs_f64();
        let jitter = 0.6 + 0.8 * self.rng.gen::<f64>();
        Duration::from_secs_f64(mean * jitter)
    }

    fn neighbour(c: char) -> char {
        // A crude QWERTY-neighbour map; unknown characters slip to 'x'.
        match c {
            'a' => 's',
            'b' => 'v',
            'c' => 'x',
            'd' => 'f',
            'e' => 'r',
            'f' => 'g',
            '0' => '9',
            '1' => '2',
            '2' => '3',
            '3' => '4',
            '4' => '5',
            '5' => '6',
            '6' => '7',
            '7' => '8',
            '8' => '9',
            '9' => '0',
            other => {
                if other.is_ascii_uppercase() {
                    'X'
                } else {
                    'x'
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reading_time_grows_with_length() {
        let mut h = HumanModel::new(1);
        let short: Duration = (0..20).map(|_| h.reading_time("short line")).sum();
        let mut h = HumanModel::new(1);
        let long: Duration = (0..20)
            .map(|_| h.reading_time(&"a much longer line of text ".repeat(5)))
            .sum();
        assert!(long > short);
    }

    #[test]
    fn typing_is_deterministic_per_seed() {
        let mut a = HumanModel::new(9);
        let mut b = HumanModel::new(9);
        assert_eq!(a.type_string("482913"), b.type_string("482913"));
    }

    #[test]
    fn perfect_human_never_errs() {
        let cfg = HumanConfig {
            error_rate: 0.0,
            ..HumanConfig::default()
        };
        let mut h = HumanModel::with_config(cfg, 3);
        for _ in 0..50 {
            let t = h.type_string("123456");
            assert_eq!(t.final_text, "123456");
            assert!(!t.submitted_wrong);
            assert_eq!(*t.events.last().unwrap(), KeyEvent::Enter);
        }
    }

    #[test]
    fn error_prone_human_sometimes_submits_wrong() {
        let cfg = HumanConfig {
            error_rate: 0.3,
            correction_rate: 0.5,
            ..HumanConfig::default()
        };
        let mut h = HumanModel::with_config(cfg, 4);
        let mut wrong = 0;
        for _ in 0..200 {
            if h.type_string("123456").submitted_wrong {
                wrong += 1;
            }
        }
        assert!(wrong > 0, "expected some uncorrected errors");
        assert!(wrong < 200, "not every attempt should fail");
    }

    #[test]
    fn corrected_errors_produce_correct_final_text() {
        let cfg = HumanConfig {
            error_rate: 0.5,
            correction_rate: 1.0,
            ..HumanConfig::default()
        };
        let mut h = HumanModel::with_config(cfg, 5);
        for _ in 0..50 {
            let t = h.type_string("confirm");
            assert_eq!(t.final_text, "confirm");
            assert!(!t.submitted_wrong);
        }
    }

    #[test]
    fn final_text_matches_event_replay() {
        // Reconstruct the text from events the way the keyboard consumer
        // would, and check it agrees with final_text.
        let cfg = HumanConfig {
            error_rate: 0.3,
            correction_rate: 0.7,
            ..HumanConfig::default()
        };
        let mut h = HumanModel::with_config(cfg, 6);
        for _ in 0..50 {
            let t = h.type_string("9021");
            let mut replay = String::new();
            for e in &t.events {
                match e {
                    KeyEvent::Char(c) => replay.push(*c),
                    KeyEvent::Backspace => {
                        replay.pop();
                    }
                    KeyEvent::Enter => {}
                    KeyEvent::Escape => {}
                }
            }
            assert_eq!(replay, t.final_text);
        }
    }

    #[test]
    fn typing_time_scales_with_length() {
        let mut h = HumanModel::new(7);
        let short = h.type_string("12").elapsed;
        let long = h.type_string("123456789012345678901234").elapsed;
        assert!(long > short);
    }
}
