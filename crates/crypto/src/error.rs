//! Error type shared by the crypto primitives.

use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A message is too long for the key / padding mode in use.
    MessageTooLong {
        /// Maximum number of bytes the operation accepts.
        max: usize,
        /// Actual number of bytes supplied.
        got: usize,
    },
    /// A ciphertext or signature is not the same length as the modulus.
    LengthMismatch {
        /// Expected length in bytes.
        expected: usize,
        /// Actual length in bytes.
        got: usize,
    },
    /// PKCS#1 padding failed to verify on decryption / verification.
    BadPadding,
    /// A signature failed verification.
    BadSignature,
    /// Key generation could not find suitable parameters.
    KeyGeneration(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MessageTooLong { max, got } => {
                write!(f, "message too long: {} bytes exceeds maximum {}", got, max)
            }
            CryptoError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "length mismatch: expected {} bytes, got {}",
                    expected, got
                )
            }
            CryptoError::BadPadding => write!(f, "invalid PKCS#1 padding"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::KeyGeneration(why) => write!(f, "key generation failed: {}", why),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let variants: Vec<CryptoError> = vec![
            CryptoError::MessageTooLong { max: 10, got: 20 },
            CryptoError::LengthMismatch {
                expected: 4,
                got: 2,
            },
            CryptoError::BadPadding,
            CryptoError::BadSignature,
            CryptoError::KeyGeneration("no primes"),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(CryptoError::BadPadding);
    }
}
