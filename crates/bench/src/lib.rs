//! Experiment harnesses regenerating the paper's evaluation.
//!
//! One module per experiment (E1–E7, defined in DESIGN.md); each exposes a
//! `run(...)` returning structured rows plus a `render(...)` printing the
//! paper-style table. The `src/bin/eN_*` binaries are thin wrappers; the
//! integration tests assert the *shapes* the paper reports (who wins, by
//! roughly what factor) hold on the regenerated data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

/// Where the experiment bins drop their perf artifacts (relative to the
/// workspace root the bins are run from).
pub const ARTIFACT_DIR: &str = "target/bench";

/// Writes an experiment's artifact pair into [`ARTIFACT_DIR`] and notes
/// the written paths on **stderr** — stdout is reserved for the tables
/// that `scripts/record_experiments.sh` splices into EXPERIMENTS.md.
pub fn emit_artifacts(pair: &utp_obs::ArtifactPair) {
    match pair.write(std::path::Path::new(ARTIFACT_DIR)) {
        Ok(paths) => {
            for p in paths {
                eprintln!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("failed to write perf artifacts: {e}");
            std::process::exit(1);
        }
    }
}
