//! `secret-taint` — key material must not flow to Debug/logging/wire
//! sinks.
//!
//! Scope: non-test code in `crates/tpm`, `crates/crypto`, `crates/core`
//! (the crates that handle seal/auth key material). Three rules:
//!
//! 1. **Debug derives.** A `#[derive(Debug)]` on a struct carrying
//!    secret material is a deny unless every secret field's type has a
//!    manual (redacting) `impl Debug` in the workspace — the manual
//!    impl is the approved redaction boundary (see `RsaKeyPair`).
//!    Secret-carrying is a fixpoint: a field is secret if its *name* is
//!    secret-shaped, its type is a designated secret type, or its type
//!    is itself a secret-carrying struct.
//! 2. **Console/logging sinks.** A tainted identifier reaching
//!    `println!`/`print!`/`eprintln!`/`eprint!`/`dbg!` (including
//!    `{ident}` inline captures in the format string) is a deny. Taint
//!    propagates through `let` bindings from secret-named identifiers
//!    and from calls returning secret types or bearing secret-shaped
//!    names.
//! 3. **Wire sinks.** `.to_bytes()`/`.write()`/`.serialize()` on a
//!    tainted receiver outside the approved sealing boundary files is a
//!    deny — private keys leave the TPM model only wrapped or sealed.
//! 4. **Trace sinks.** A tainted identifier in the argument list of a
//!    flight-recorder emission (`span`/`event`/`span_volatile`/
//!    `event_volatile`) is a deny *workspace-wide*, not just in the key
//!    crates: trace records are serialized verbatim into the JSONL
//!    export, which is the least-guarded output the workspace has.
//!    Idents immediately followed by `::` are path qualifiers (the
//!    `utp_trace::keys::OP` key-name registry), not values, and are
//!    skipped.
//! 5. **Journal sinks.** A tainted identifier in the argument list of a
//!    settlement-journal append (`.append_record()` /
//!    `.install_snapshot()`) is a deny *workspace-wide*: WAL frames
//!    land verbatim on the (simulated) disk, outliving the process and
//!    any zeroization — durable state is the last place key material
//!    may ever appear. Same `::` path-qualifier exemption as rule 4
//!    (`JournalRecord::Settle` names a variant, not a value).
//!
//! Nonces are deliberately *not* sources here: in this protocol the
//! nonce is the quote's public `externalData`, not a secret.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Severity;
use crate::graph::WorkspaceIndex;
use crate::items::FnItem;
use crate::lexer::TokenKind;
use crate::passes::{Finding, Pass};
use crate::source::SourceFile;

/// Identifier components that mark a binding as key material.
const SECRET_COMPONENTS: &[&str] = &[
    "secret",
    "secrets",
    "key",
    "keys",
    "keypair",
    "seed",
    "priv",
    "private",
    "passphrase",
];

/// Components that mark the binding as public/ciphertext even when a
/// secret component is present (`key_bits`, `public_key`, `sealed_key`).
const PUBLIC_COMPONENTS: &[&str] = &[
    "public", "pub", "bits", "len", "size", "count", "id", "ids", "handle", "handles", "cert",
    "certs", "ca", "aik", "ek", "srk", "usage", "sealed", "wrapped", "wrap", "load", "blob",
    "store", "slot", "slots", "cache", "hash", "digest", "index", "bound",
];

/// Types that are secret by fiat, wherever they appear.
const DESIGNATED_SECRET_TYPES: &[&str] = &["RsaKeyPair"];

/// Call-name components that launder taint: their *output* is protected
/// ciphertext even when a secret flows in (`seal_to_current(.., &key)`).
/// Note `unseal`/`decrypt`/`unwrap` are distinct components and do not
/// match, so the inverse operations keep their outputs secret.
const SANITIZER_COMPONENTS: &[&str] = &["seal", "encrypt", "wrap"];

/// Console/logging macro sinks.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Wire-serialization method sinks.
const WIRE_METHODS: &[&str] = &["to_bytes", "write", "serialize"];

/// Flight-recorder emission sinks (`utp_trace::span(..)` and friends):
/// field values land verbatim in the JSONL export.
const TRACE_SINK_FNS: &[&str] = &["span", "event", "span_volatile", "event_volatile"];

/// Settlement-journal append sinks: the record payload is framed onto
/// the WAL byte-for-byte and survives the process.
const JOURNAL_SINK_METHODS: &[&str] = &["append_record", "install_snapshot"];

/// Files allowed to serialize key material (the sealing/wrapping
/// boundary plus the key types' own codecs).
const WIRE_BOUNDARY_FILES: &[&str] = &[
    "crates/tpm/src/keys.rs",
    "crates/tpm/src/seal.rs",
    "crates/crypto/src/rsa.rs",
];

/// Is this identifier secret key material (for taint purposes)?
pub fn is_taint_secret_ident(ident: &str) -> bool {
    if ident
        .chars()
        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
    {
        return false;
    }
    let lower: Vec<String> = ident.split('_').map(|c| c.to_ascii_lowercase()).collect();
    lower
        .iter()
        .any(|c| SECRET_COMPONENTS.contains(&c.as_str()))
        && !lower
            .iter()
            .any(|c| PUBLIC_COMPONENTS.contains(&c.as_str()))
}

fn in_scope(path: &str) -> bool {
    path.starts_with("crates/tpm/src/")
        || path.starts_with("crates/crypto/src/")
        || path.starts_with("crates/core/src/")
}

/// The pass.
pub struct SecretTaint;

impl Pass for SecretTaint {
    fn id(&self) -> &'static str {
        "secret-taint"
    }

    fn description(&self) -> &'static str {
        "key material must not reach Debug/logging/wire sinks"
    }

    fn check_workspace(&self, ws: &WorkspaceIndex) -> Vec<(usize, Finding)> {
        let mut out = Vec::new();
        let secret_structs = secret_struct_fixpoint(ws);
        let manual_debug = manual_debug_types(ws);
        let redacting = redacting_types(ws, &secret_structs, &manual_debug);
        let secret_returning = secret_returning_fns(ws, &secret_structs);

        for (fi, file) in ws.files.iter().enumerate() {
            if !in_scope(&file.path) || !ws.metas[fi].is_src_ctx {
                continue;
            }
            check_debug_derives(file, &secret_structs, &redacting, fi, &mut out);
        }
        for idx in 0..ws.fns.len() {
            let fi = ws.fns[idx].file;
            let file = &ws.files[fi];
            if !ws.is_live_fn(idx) {
                continue;
            }
            if in_scope(&file.path) {
                check_fn_sinks(file, ws.fn_item(idx), &secret_returning, fi, &mut out);
            }
            check_trace_sinks(file, ws.fn_item(idx), fi, &mut out);
            check_journal_sinks(file, ws.fn_item(idx), fi, &mut out);
        }
        out
    }
}

/// Structs that (transitively) carry secret material, mapped to the
/// field that makes them secret.
fn secret_struct_fixpoint(ws: &WorkspaceIndex) -> BTreeMap<String, String> {
    let mut secret: BTreeMap<String, String> = DESIGNATED_SECRET_TYPES
        .iter()
        .map(|t| (t.to_string(), "designated secret type".to_string()))
        .collect();
    loop {
        let mut changed = false;
        for (fi, file) in ws.files.iter().enumerate() {
            if !in_scope(&file.path) || !ws.metas[fi].is_src_ctx {
                continue;
            }
            for s in &file.items.structs {
                if secret.contains_key(&s.name) {
                    continue;
                }
                let cause = s.fields.iter().find_map(|f| {
                    if is_taint_secret_ident(&f.name) {
                        return Some(format!("field `{}` is secret-named", f.name));
                    }
                    f.type_idents
                        .iter()
                        .find(|t| secret.contains_key(*t))
                        .map(|t| format!("field `{}` contains secret type `{}`", f.name, t))
                });
                if let Some(cause) = cause {
                    secret.insert(s.name.clone(), cause);
                    changed = true;
                }
            }
        }
        if !changed {
            return secret;
        }
    }
}

/// Types with a manual `impl Debug` anywhere in library source — the
/// approved redaction boundary.
fn manual_debug_types(ws: &WorkspaceIndex) -> BTreeSet<String> {
    ws.files
        .iter()
        .enumerate()
        .filter(|(fi, _)| ws.metas[*fi].is_src_ctx)
        .flat_map(|(_, f)| f.items.impls.iter())
        .filter(|i| i.trait_name.as_deref() == Some("Debug"))
        .map(|i| i.type_name.clone())
        .collect()
}

/// Types whose Debug output is redacted: manual impls, plus (by
/// fixpoint) structs whose derived Debug only ever reaches secrets
/// through types that already redact. A derive over fully-redacted
/// fields prints only redacted text, so it is itself a safe boundary.
fn redacting_types(
    ws: &WorkspaceIndex,
    secret_structs: &BTreeMap<String, String>,
    manual_debug: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut redacting = manual_debug.clone();
    loop {
        let mut changed = false;
        for (fi, file) in ws.files.iter().enumerate() {
            if !ws.metas[fi].is_src_ctx {
                continue;
            }
            for s in &file.items.structs {
                if redacting.contains(&s.name)
                    || s.derive_debug_line.is_none()
                    || DESIGNATED_SECRET_TYPES.contains(&s.name.as_str())
                {
                    continue;
                }
                let safe = s.fields.iter().all(|f| {
                    let secret = is_taint_secret_ident(&f.name)
                        || f.type_idents.iter().any(|t| secret_structs.contains_key(t));
                    !secret || f.type_idents.iter().any(|t| redacting.contains(t))
                });
                if safe && redacting.insert(s.name.clone()) {
                    changed = true;
                }
            }
        }
        if !changed {
            return redacting;
        }
    }
}

/// Function names whose return value is tainted: secret-shaped name or
/// a return type mentioning a secret struct.
fn secret_returning_fns(
    ws: &WorkspaceIndex,
    secret_structs: &BTreeMap<String, String>,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for idx in 0..ws.fns.len() {
        let item = ws.fn_item(idx);
        let ret_secret = item.ret_idents.iter().any(|t| {
            secret_structs.contains_key(t)
                || (t == "Self"
                    && item
                        .impl_type
                        .as_ref()
                        .is_some_and(|ty| secret_structs.contains_key(ty)))
        });
        if is_taint_secret_ident(&item.name) || ret_secret {
            out.insert(item.name.clone());
        }
    }
    out
}

fn check_debug_derives(
    file: &SourceFile,
    secret_structs: &BTreeMap<String, String>,
    redacting: &BTreeSet<String>,
    fi: usize,
    out: &mut Vec<(usize, Finding)>,
) {
    for s in &file.items.structs {
        let Some(line) = s.derive_debug_line else {
            continue;
        };
        if file.in_test_code(s.line) {
            continue;
        }
        // A designated secret type must never derive Debug at all.
        if DESIGNATED_SECRET_TYPES.contains(&s.name.as_str()) {
            out.push((
                fi,
                Finding {
                    line,
                    severity: Severity::Deny,
                    message: format!(
                        "derive(Debug) on `{}` formats private key material; write a \
                         manual redacting `impl fmt::Debug` that prints only public \
                         parameters",
                        s.name
                    ),
                },
            ));
            continue;
        }
        let offending: Vec<&str> = s
            .fields
            .iter()
            .filter(|f| {
                let secret = is_taint_secret_ident(&f.name)
                    || f.type_idents.iter().any(|t| secret_structs.contains_key(t));
                let redacted = f.type_idents.iter().any(|t| redacting.contains(t));
                secret && !redacted
            })
            .map(|f| f.name.as_str())
            .collect();
        if !offending.is_empty() {
            out.push((
                fi,
                Finding {
                    line,
                    severity: Severity::Deny,
                    message: format!(
                        "derive(Debug) on `{}` formats secret field(s) `{}` whose types \
                         have no redacting Debug impl; add a manual `impl fmt::Debug` or \
                         route the field through a type that redacts",
                        s.name,
                        offending.join("`, `")
                    ),
                },
            ));
        }
    }
}

fn check_fn_sinks(
    file: &SourceFile,
    item: &FnItem,
    secret_returning: &BTreeSet<String>,
    fi: usize,
    out: &mut Vec<(usize, Finding)>,
) {
    let tainted = local_taint(file, item, secret_returning);
    let is_tainted = |ident: &str| is_taint_secret_ident(ident) || tainted.contains(ident);

    for m in &item.macros {
        if !PRINT_MACROS.contains(&m.name.as_str()) {
            continue;
        }
        let mut hit: Option<String> = None;
        for t in &file.tokens[m.args.0..m.args.1] {
            match t.kind {
                TokenKind::Ident if is_tainted(&t.text) => {
                    hit = Some(t.text.clone());
                }
                // `println!("{session_key}")` inline captures.
                TokenKind::Str => {
                    for name in tainted
                        .iter()
                        .map(String::as_str)
                        .chain(capture_candidates(&t.text))
                    {
                        if is_tainted(name)
                            && (t.text.contains(&format!("{{{name}}}"))
                                || t.text.contains(&format!("{{{name}:")))
                        {
                            hit = Some(name.to_string());
                        }
                    }
                }
                _ => {}
            }
            if hit.is_some() {
                break;
            }
        }
        if let Some(ident) = hit {
            out.push((
                fi,
                Finding {
                    line: m.line,
                    severity: Severity::Deny,
                    message: format!(
                        "secret `{ident}` flows into `{}!` in `{}`; secrets must never \
                         reach console/logging sinks — log a digest or drop the field",
                        m.name, item.name
                    ),
                },
            ));
        }
    }

    if WIRE_BOUNDARY_FILES.contains(&file.path.as_str()) {
        return;
    }
    for c in &item.calls {
        if !c.is_method || !WIRE_METHODS.contains(&c.name.as_str()) {
            continue;
        }
        // Receiver ident: `recv . name (` — two tokens before the name.
        let Some(recv) = c.tok.checked_sub(2).map(|r| &file.tokens[r]) else {
            continue;
        };
        if recv.kind == TokenKind::Ident && is_tainted(&recv.text) {
            out.push((
                fi,
                Finding {
                    line: c.line,
                    severity: Severity::Deny,
                    message: format!(
                        "secret `{}` is serialized via `.{}()` in `{}` outside the \
                         approved sealing boundary ({}); key material leaves the TPM \
                         model only wrapped or sealed",
                        recv.text,
                        c.name,
                        item.name,
                        WIRE_BOUNDARY_FILES.join(", ")
                    ),
                },
            ));
        }
    }
}

/// Rule 4: tainted identifiers must not appear in the argument list of
/// a flight-recorder emission. Runs workspace-wide — trace records are
/// serialized into the JSONL export wherever they are emitted.
fn check_trace_sinks(file: &SourceFile, item: &FnItem, fi: usize, out: &mut Vec<(usize, Finding)>) {
    if !item
        .calls
        .iter()
        .any(|c| !c.is_method && TRACE_SINK_FNS.contains(&c.name.as_str()))
    {
        return;
    }
    // Name-based taint only: the `secret_returning` name set blankets
    // common constructor names like `new` (any constructor of a secret
    // type), which is tolerable inside the three key crates but far too
    // noisy for a workspace-wide rule.
    let tainted = local_taint(file, item, &BTreeSet::new());
    let is_tainted = |ident: &str| is_taint_secret_ident(ident) || tainted.contains(ident);
    for c in &item.calls {
        if c.is_method || !TRACE_SINK_FNS.contains(&c.name.as_str()) {
            continue;
        }
        let args = &file.tokens[c.args.0..c.args.1];
        let hit = args.iter().enumerate().find_map(|(j, t)| {
            if t.kind != TokenKind::Ident || !is_tainted(&t.text) {
                return None;
            }
            // `keys::OP`-style path qualifiers name record *keys*, not
            // values; only the value position can carry the secret.
            if args.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                return None;
            }
            Some(t.text.clone())
        });
        if let Some(ident) = hit {
            out.push((
                fi,
                Finding {
                    line: c.line,
                    severity: Severity::Deny,
                    message: format!(
                        "secret `{ident}` flows into trace sink `{}` in `{}`; trace \
                         records are serialized into the JSONL export — record a \
                         digest, a length, or nothing",
                        c.name, item.name
                    ),
                },
            ));
        }
    }
}

/// Rule 5: tainted identifiers must not appear in the argument list of
/// a settlement-journal append. Runs workspace-wide — the WAL is
/// durable, so a leaked secret outlives the process and any in-memory
/// zeroization.
fn check_journal_sinks(
    file: &SourceFile,
    item: &FnItem,
    fi: usize,
    out: &mut Vec<(usize, Finding)>,
) {
    if !item
        .calls
        .iter()
        .any(|c| c.is_method && JOURNAL_SINK_METHODS.contains(&c.name.as_str()))
    {
        return;
    }
    // Name-based taint only, same rationale as the trace-sink rule.
    let tainted = local_taint(file, item, &BTreeSet::new());
    let is_tainted = |ident: &str| is_taint_secret_ident(ident) || tainted.contains(ident);
    for c in &item.calls {
        if !c.is_method || !JOURNAL_SINK_METHODS.contains(&c.name.as_str()) {
            continue;
        }
        let args = &file.tokens[c.args.0..c.args.1];
        let hit = args.iter().enumerate().find_map(|(j, t)| {
            if t.kind != TokenKind::Ident || !is_tainted(&t.text) {
                return None;
            }
            // `JournalRecord::Settle`-style path qualifiers name the
            // record shape, not a value.
            if args.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                return None;
            }
            Some(t.text.clone())
        });
        if let Some(ident) = hit {
            out.push((
                fi,
                Finding {
                    line: c.line,
                    severity: Severity::Deny,
                    message: format!(
                        "secret `{ident}` flows into journal sink `{}` in `{}`; WAL \
                         frames are durable and outlive zeroization — journal a \
                         digest, a handle, or nothing",
                        c.name, item.name
                    ),
                },
            ));
        }
    }
}

/// Identifier-shaped words inside a format string, candidates for
/// inline-capture checks.
fn capture_candidates(s: &str) -> impl Iterator<Item = &str> {
    s.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
}

/// Local flow: `let x = <expr mentioning a secret or calling a
/// secret-returning fn>;` taints `x`; iterated so chains propagate.
fn local_taint(
    file: &SourceFile,
    item: &FnItem,
    secret_returning: &BTreeSet<String>,
) -> BTreeSet<String> {
    let Some((open, close)) = item.body else {
        return BTreeSet::new();
    };
    let tokens = &file.tokens[open..=close];
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    for _ in 0..3 {
        let mut changed = false;
        let mut j = 0;
        while j < tokens.len() {
            if !tokens[j].is_ident("let") {
                j += 1;
                continue;
            }
            let mut k = j + 1;
            if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let Some(name) = tokens.get(k).filter(|t| t.kind == TokenKind::Ident) else {
                j += 1;
                continue;
            };
            // Scan the initializer up to the statement's `;`.
            let mut m = k + 1;
            let mut secret_rhs = false;
            let mut sanitized = false;
            let mut depth = 0i32;
            while let Some(t) = tokens.get(m) {
                if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if t.is_punct(";") && depth == 0 {
                    break;
                } else if t.kind == TokenKind::Ident
                    && tokens.get(m + 1).is_some_and(|n| n.is_punct("("))
                    && t.text
                        .split('_')
                        .any(|c| SANITIZER_COMPONENTS.contains(&c.to_ascii_lowercase().as_str()))
                {
                    // A sealing/encryption call: its result is ciphertext,
                    // so this binding stays clean even if secrets flow in.
                    sanitized = true;
                } else if t.kind == TokenKind::Ident
                    && (is_taint_secret_ident(&t.text)
                        || tainted.contains(&t.text)
                        || (secret_returning.contains(&t.text)
                            && tokens.get(m + 1).is_some_and(|n| n.is_punct("("))))
                {
                    secret_rhs = true;
                }
                m += 1;
            }
            if secret_rhs && !sanitized && tainted.insert(name.text.clone()) {
                changed = true;
            }
            j = k + 1;
        }
        if !changed {
            break;
        }
    }
    tainted
}
