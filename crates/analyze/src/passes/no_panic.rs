//! Pass 2: `no-panic-in-tcb` — TCB code must not be able to abort.
//!
//! A panic inside the PAL or TPM driver tears down the trusted session
//! mid-transaction, which at best loses the confirmation and at worst
//! leaves sealed state half-written. All fallible operations must return
//! a proper error (`TpmError`, `PalError`, ...). Forbidden in non-test
//! TCB code: `.unwrap()`, `.expect(...)`, `panic!`, `todo!`,
//! `unimplemented!`, and panicking index/slice expressions with a dynamic
//! index. Constant indices (`buf[0]`) and full-range slices (`&buf[..]`)
//! are tolerated because their bounds behavior is locally evident.

use super::{Finding, Pass};
use crate::diag::Severity;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// The `no-panic-in-tcb` pass.
pub struct NoPanicInTcb;

impl Pass for NoPanicInTcb {
    fn id(&self) -> &'static str {
        "no-panic-in-tcb"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/unimplemented! or dynamic indexing in TCB code"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if !super::is_tcb_path(&file.path) {
            return Vec::new();
        }
        let tokens = &file.tokens;
        let mut findings = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if file.in_test_code(t.line) {
                continue;
            }
            match t.kind {
                TokenKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                    let after_dot = i > 0 && tokens[i - 1].is_punct(".");
                    let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
                    if after_dot && called {
                        findings.push(Finding {
                            line: t.line,
                            severity: Severity::Deny,
                            message: format!(
                                "`.{}()` can abort the trusted session; propagate a typed \
                                 error (e.g. `TpmError`) with `?` / `ok_or` instead",
                                t.text
                            ),
                        });
                    }
                }
                TokenKind::Ident
                    if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
                        && tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
                {
                    findings.push(Finding {
                        line: t.line,
                        severity: Severity::Deny,
                        message: format!(
                            "`{}!` aborts the trusted session mid-transaction; TCB code \
                             must return a typed error instead",
                            t.text
                        ),
                    });
                }
                TokenKind::Punct if t.text == "[" => {
                    if let Some(f) = check_index_expr(file, i) {
                        findings.push(f);
                    }
                }
                _ => {}
            }
        }
        findings
    }
}

/// Flags `expr[...]` indexing whose bracket contents are not a lone
/// integer literal or a full-range `..`.
fn check_index_expr(file: &SourceFile, open: usize) -> Option<Finding> {
    let tokens = &file.tokens;
    let prev = tokens.get(open.checked_sub(1)?)?;
    // Indexing only when the bracket follows a value: `ident[`, `)[`, `][`.
    let is_index = prev.kind == TokenKind::Ident && !is_keyword_before_bracket(&prev.text)
        || prev.is_punct(")")
        || prev.is_punct("]");
    if !is_index {
        return None;
    }
    // Find the closing bracket (same-level scan).
    let mut depth = 1usize;
    let mut close = open + 1;
    while close < tokens.len() {
        if tokens[close].is_punct("[") {
            depth += 1;
        } else if tokens[close].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        close += 1;
    }
    let inner = &tokens[open + 1..close.min(tokens.len())];
    let benign = match inner {
        // `buf[3]` — constant index, bounds locally evident.
        [only] if only.kind == TokenKind::Number => true,
        // `&buf[..]` — full-range slice, cannot panic.
        [only] if only.is_punct("..") => true,
        _ => false,
    };
    if benign {
        return None;
    }
    Some(Finding {
        line: tokens[open].line,
        severity: Severity::Deny,
        message: "dynamic index/slice can panic out-of-bounds and abort the trusted \
                  session; use `.get(..)` / `.get_mut(..)` and propagate a typed error"
            .to_string(),
    })
}

/// Keywords that can directly precede `[` without forming an index
/// expression (e.g. `return [a, b]`).
fn is_keyword_before_bracket(text: &str) -> bool {
    matches!(
        text,
        "return" | "in" | "else" | "match" | "break" | "mut" | "const" | "static" | "as" | "dyn"
    )
}
