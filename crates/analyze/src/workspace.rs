//! Workspace file discovery.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

/// Collects every `.rs` file under `root`, skipping build output, VCS
/// metadata and test fixture directories. Returns
/// `(workspace-relative path with forward slashes, absolute path)` pairs
/// in sorted order.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the analyzer's default root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_skips_target() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root above crates/analyze");
        let files = collect_rs_files(&root).expect("walk succeeds");
        assert!(files
            .iter()
            .any(|(rel, _)| rel == "crates/tpm/src/device.rs"));
        assert!(files.iter().any(|(rel, _)| rel == "src/lib.rs"));
        assert!(!files.iter().any(|(rel, _)| rel.contains("target/")));
        // Sorted, relative, forward-slash form.
        assert!(files.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
