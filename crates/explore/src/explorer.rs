//! The bounded state-space explorer.
//!
//! Classic explicit-state model checking, specialised to the paper's
//! settlement path: states are forks of the live provider stack (plus
//! the virtual clock), transitions are adversary [`Action`]s, and every
//! reached state is checked against the invariant [`Oracle`]. State
//! deduplication hashes the canonical observable view — two
//! interleavings that land on identical provider state are explored
//! once.
//!
//! The search is **bounded** (depth and state budget) and therefore
//! sound only up to the bound: it proves the absence of violations
//! reachable within `max_depth` adversary moves over the given
//! alphabet, nothing more. Exhaustion of a budget is reported, never
//! silent.

use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;
use std::time::Duration;

use crate::action::{Action, Schedule};
use crate::oracle::{Oracle, Violation, INVARIANT_COUNT};
use crate::scenario::Scenario;
use crate::sut::{fingerprint, Fork};

/// Frontier discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Breadth-first: finds *shortest* counterexamples first. Default.
    Bfs,
    /// Depth-first: lower frontier memory, longer counterexamples.
    Dfs,
}

impl Strategy {
    fn label(&self) -> &'static str {
        match self {
            Strategy::Bfs => "bfs",
            Strategy::Dfs => "dfs",
        }
    }
}

/// Exploration bounds and options.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum schedule length explored.
    pub max_depth: usize,
    /// Maximum number of distinct states retained (budget).
    pub max_states: usize,
    /// Frontier discipline.
    pub strategy: Strategy,
    /// Stop at the first invariant violation instead of collecting all.
    pub stop_at_first_violation: bool,
}

impl ExploreConfig {
    /// The CI smoke budget: BFS, shallow, small state cap.
    pub fn smoke() -> Self {
        ExploreConfig {
            max_depth: 3,
            max_states: 2_000,
            strategy: Strategy::Bfs,
            stop_at_first_violation: false,
        }
    }

    /// The nightly budget: deeper and wider than [`ExploreConfig::smoke`].
    pub fn nightly() -> Self {
        ExploreConfig {
            max_depth: 5,
            max_states: 60_000,
            strategy: Strategy::Bfs,
            stop_at_first_violation: false,
        }
    }
}

/// An invariant violation plus the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The adversary moves from the branch point to the violation.
    pub schedule: Schedule,
    /// What broke.
    pub violation: Violation,
}

/// What an exploration run did and found.
#[derive(Debug)]
pub struct ExploreReport {
    /// Distinct states reached (root included).
    pub explored: u64,
    /// Transitions pruned because the successor state was already seen.
    pub pruned: u64,
    /// Deepest schedule length reached.
    pub deepest: usize,
    /// Individual invariant evaluations performed.
    pub checks: u64,
    /// Every violation found (first per violating transition).
    pub violations: Vec<Counterexample>,
    /// True when `max_states` stopped the search before the frontier
    /// drained — coverage below the depth bound is then incomplete.
    pub budget_exhausted: bool,
    /// Deterministic exploration log: header, one line per discovered
    /// state, one line per violation, and a trailing summary.
    pub log: String,
}

impl ExploreReport {
    /// Registers the run's budget accounting on a metrics registry.
    /// Exploration is deterministic, so every value is virtual-class
    /// and byte-reproducible in bench artifacts.
    pub fn export_metrics(&self, registry: &utp_obs::MetricsRegistry) {
        registry.counter("explore.states", &[]).add(self.explored);
        registry.counter("explore.pruned", &[]).add(self.pruned);
        registry
            .gauge("explore.deepest", &[])
            .set(self.deepest as u64);
        registry.counter("explore.checks", &[]).add(self.checks);
        registry
            .counter("explore.violations", &[])
            .add(self.violations.len() as u64);
        registry
            .gauge("explore.budget_exhausted", &[])
            .set(u64::from(self.budget_exhausted));
    }
}

struct Node<S> {
    sut: S,
    now: Duration,
    oracle: Oracle,
    schedule: Schedule,
    depth: usize,
    id: u64,
}

/// Explores every interleaving of `alphabet` actions from the branch
/// point, up to the configured bounds, checking the oracle after each
/// action. Deterministic: identical inputs produce an identical report
/// and byte-identical log.
pub fn explore<S: Fork>(
    scenario: &Scenario,
    root: &S,
    alphabet: &[Action],
    config: &ExploreConfig,
) -> ExploreReport {
    let mut log = String::new();
    let _ = writeln!(
        log,
        "explore strategy={} max_depth={} max_states={} alphabet={}",
        config.strategy.label(),
        config.max_depth,
        config.max_states,
        alphabet.len(),
    );

    let root_view = root.view();
    let root_oracle = Oracle::new(scenario, &root_view);
    let root_fp = fingerprint(scenario.base_now, &root_view);

    let mut visited: HashSet<[u8; 32]> = HashSet::new();
    visited.insert(*root_fp.as_bytes());
    let _ = writeln!(log, "s=0 d=0 parent=- via=- fp={}", &root_fp.to_hex()[..16]);

    let mut frontier: VecDeque<Node<S>> = VecDeque::new();
    frontier.push_back(Node {
        sut: root.fork(),
        now: scenario.base_now,
        oracle: root_oracle,
        schedule: Vec::new(),
        depth: 0,
        id: 0,
    });

    let mut explored: u64 = 1;
    let mut pruned: u64 = 0;
    let mut deepest: usize = 0;
    let mut checks: u64 = 0;
    let mut violations: Vec<Counterexample> = Vec::new();
    let mut budget_exhausted = false;
    let mut next_id: u64 = 1;

    'search: while let Some(node) = match config.strategy {
        Strategy::Bfs => frontier.pop_front(),
        Strategy::Dfs => frontier.pop_back(),
    } {
        if node.depth >= config.max_depth {
            continue;
        }
        // DFS pushes children onto the back; iterate the alphabet in
        // reverse there so states are still *visited* in alphabet order.
        let order: Vec<&Action> = match config.strategy {
            Strategy::Bfs => alphabet.iter().collect(),
            Strategy::Dfs => alphabet.iter().rev().collect(),
        };
        let mut children: Vec<Node<S>> = Vec::new();
        for action in order {
            let mut sut = node.sut.fork();
            let mut oracle = node.oracle.clone();
            let mut now = node.now;
            let _result = crate::sut::apply_action(&mut sut, scenario, &mut now, action);
            let view = sut.view();
            checks += INVARIANT_COUNT;
            let mut schedule = node.schedule.clone();
            schedule.push(*action);
            if let Err(violation) = oracle.check(&view, action.is_crash()) {
                let _ = writeln!(
                    log,
                    "violation parent={} via=[{}] invariant={}",
                    node.id, action, violation.invariant
                );
                violations.push(Counterexample {
                    schedule,
                    violation,
                });
                if config.stop_at_first_violation {
                    break 'search;
                }
                continue;
            }
            let fp = fingerprint(now, &view);
            if !visited.insert(*fp.as_bytes()) {
                pruned += 1;
                continue;
            }
            if explored as usize >= config.max_states {
                budget_exhausted = true;
                break 'search;
            }
            let id = next_id;
            next_id += 1;
            explored += 1;
            deepest = deepest.max(node.depth + 1);
            let _ = writeln!(
                log,
                "s={} d={} parent={} via=[{}] fp={}",
                id,
                node.depth + 1,
                node.id,
                action,
                &fp.to_hex()[..16]
            );
            children.push(Node {
                sut,
                now,
                oracle,
                schedule,
                depth: node.depth + 1,
                id,
            });
        }
        frontier.extend(children);
    }

    let _ = writeln!(
        log,
        "summary explored={} pruned={} deepest={} checks={} violations={} budget_exhausted={}",
        explored,
        pruned,
        deepest,
        checks,
        violations.len(),
        budget_exhausted
    );

    ExploreReport {
        explored,
        pruned,
        deepest,
        checks,
        violations,
        budget_exhausted,
        log,
    }
}
