//! The simulated append-only storage device.
//!
//! Like the TPM and the network link, the disk is a *model*: every
//! operation returns its cost as a virtual-clock [`Duration`] (the
//! caller advances the simulated machine), and durability is explicit —
//! appended bytes sit in a volatile write cache until a flush moves them
//! to the durable media. Faults are injectable so crash-consistency is
//! testable deterministically: flushes can be silently dropped (a lying
//! drive), the device can halt after a configured number of appends (a
//! dying disk), and a crash can leave a torn tail — a prefix of the
//! unflushed cache, optionally with its last byte corrupted — exactly
//! the suffix states a real power loss produces.

use std::collections::BTreeSet;
use std::time::Duration;

/// Calibrated latency model for one device class. Append cost is
/// `append_base + append_per_byte × len`; a flush costs `flush` flat
/// (the dominant term for small settlement records, as fsync is on real
/// hardware); sequential recovery reads cost
/// `read_base + read_per_byte × len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Fixed per-append overhead (submission, translation layers).
    pub append_base: Duration,
    /// Marginal cost per appended byte.
    pub append_per_byte: Duration,
    /// Cost of one durability barrier (fsync).
    pub flush: Duration,
    /// Fixed cost to open a sequential read (seek / queue).
    pub read_base: Duration,
    /// Marginal cost per byte read back during recovery.
    pub read_per_byte: Duration,
}

impl DeviceProfile {
    /// An NVMe-class drive: ~30 µs barriers, ~1 GB/s small writes.
    pub fn nvme() -> Self {
        DeviceProfile {
            append_base: Duration::from_nanos(1_000),
            append_per_byte: Duration::from_nanos(1),
            flush: Duration::from_micros(30),
            read_base: Duration::from_micros(10),
            read_per_byte: Duration::from_nanos(1),
        }
    }

    /// A SATA-SSD-class drive: ~0.5 ms barriers.
    pub fn ssd() -> Self {
        DeviceProfile {
            append_base: Duration::from_micros(5),
            append_per_byte: Duration::from_nanos(2),
            flush: Duration::from_micros(500),
            read_base: Duration::from_micros(100),
            read_per_byte: Duration::from_nanos(2),
        }
    }

    /// A spinning disk: ~12 ms barriers (rotational latency dominates).
    pub fn hdd() -> Self {
        DeviceProfile {
            append_base: Duration::from_micros(20),
            append_per_byte: Duration::from_nanos(10),
            flush: Duration::from_millis(12),
            read_base: Duration::from_millis(8),
            read_per_byte: Duration::from_nanos(10),
        }
    }

    /// Small, round costs for unit tests.
    pub fn fast_for_tests() -> Self {
        DeviceProfile {
            append_base: Duration::from_micros(1),
            append_per_byte: Duration::from_nanos(1),
            flush: Duration::from_micros(100),
            read_base: Duration::from_micros(10),
            read_per_byte: Duration::from_nanos(1),
        }
    }

    fn append_cost(&self, len: usize) -> Duration {
        self.append_base + self.append_per_byte * len as u32
    }

    fn read_cost(&self, len: usize) -> Duration {
        self.read_base + self.read_per_byte * len as u32
    }
}

/// Injectable fault script. All fields default to "no faults".
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// 1-based indexes of flush calls the device silently drops: the
    /// call returns normally (and is billed normally) but the cache is
    /// not persisted — a lying drive. A later honest flush still
    /// persists the data; a crash before one loses it.
    pub drop_flushes: BTreeSet<u64>,
    /// After this many accepted appends the device halts: subsequent
    /// appends and flushes are silently discarded (a dying disk).
    pub halt_after_appends: Option<u64>,
    /// On [`StorageDevice::crash`], keep this many bytes of the
    /// unflushed cache as a torn tail on the media.
    pub torn_tail_bytes: usize,
    /// If true, the last surviving torn-tail byte has its low bit
    /// flipped (a partially written sector).
    pub corrupt_torn_tail: bool,
}

impl FaultPlan {
    /// A fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }
}

/// Operation counters, snapshotted by [`StorageDevice::counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceCounters {
    /// Appends accepted (halted-device drops excluded).
    pub appends: u64,
    /// Bytes accepted into the cache.
    pub bytes_appended: u64,
    /// Flush calls made (including dropped ones).
    pub flushes: u64,
    /// Flushes the fault plan silently dropped.
    pub flushes_dropped: u64,
}

impl DeviceCounters {
    /// Registers the counters under `device.*` names, labeled with
    /// which device (`log` or `snap`) they were snapshotted from.
    pub fn export_metrics(&self, registry: &utp_obs::MetricsRegistry, device: &str) {
        let labels: &[(&str, &str)] = &[("device", device)];
        registry.counter("device.appends", labels).add(self.appends);
        registry
            .counter("device.bytes_appended", labels)
            .add(self.bytes_appended);
        registry.counter("device.flushes", labels).add(self.flushes);
        registry
            .counter("device.flushes_dropped", labels)
            .add(self.flushes_dropped);
    }
}

/// The simulated append-only device: durable media plus a volatile
/// write cache, with deterministic costs and scripted faults.
///
/// `Clone` copies the whole device — media, cache, fault script and
/// counters — which is how the adversarial explorer forks a branch of
/// the state space without disturbing the original timeline.
#[derive(Debug, Clone)]
pub struct StorageDevice {
    profile: DeviceProfile,
    faults: FaultPlan,
    media: Vec<u8>,
    cache: Vec<u8>,
    halted: bool,
    counters: DeviceCounters,
}

impl StorageDevice {
    /// A fault-free device with the given cost model.
    pub fn new(profile: DeviceProfile) -> Self {
        Self::with_faults(profile, FaultPlan::none())
    }

    /// A device with a scripted fault plan.
    pub fn with_faults(profile: DeviceProfile, faults: FaultPlan) -> Self {
        StorageDevice {
            profile,
            faults,
            media: Vec::new(),
            cache: Vec::new(),
            halted: false,
            counters: DeviceCounters::default(),
        }
    }

    /// Appends bytes to the write cache, returning the virtual cost.
    /// A halted device discards the write and costs nothing.
    pub fn append(&mut self, bytes: &[u8]) -> Duration {
        if self.halted {
            return Duration::ZERO;
        }
        self.cache.extend_from_slice(bytes);
        self.counters.appends += 1;
        self.counters.bytes_appended += bytes.len() as u64;
        if self.faults.halt_after_appends == Some(self.counters.appends) {
            self.halted = true;
        }
        self.profile.append_cost(bytes.len())
    }

    /// Durability barrier: moves the cache onto the media — unless this
    /// flush index is scripted to be dropped, in which case the call is
    /// billed but the cache stays volatile. Returns the virtual cost.
    pub fn flush(&mut self) -> Duration {
        if self.halted {
            return Duration::ZERO;
        }
        self.counters.flushes += 1;
        if self.faults.drop_flushes.contains(&self.counters.flushes) {
            self.counters.flushes_dropped += 1;
        } else {
            self.media.append(&mut self.cache);
        }
        self.profile.flush
    }

    /// Power loss: the unflushed cache is lost, except for a scripted
    /// torn tail (a prefix of the cache, optionally with its final byte
    /// corrupted) that lands on the media. The device is usable again
    /// afterwards — recovery reads [`StorageDevice::durable`].
    pub fn crash(&mut self) {
        let keep = self.faults.torn_tail_bytes.min(self.cache.len());
        if keep > 0 {
            let mut tail = self.cache[..keep].to_vec();
            if self.faults.corrupt_torn_tail {
                // `keep > 0` guarantees a last element.
                if let Some(last) = tail.last_mut() {
                    *last ^= 1;
                }
            }
            self.media.extend_from_slice(&tail);
        }
        self.cache.clear();
        self.halted = false;
    }

    /// The durable bytes (what survives a crash right now).
    pub fn durable(&self) -> &[u8] {
        &self.media
    }

    /// The full appended view (media plus unflushed cache) — what a
    /// live reader sees, not what a crash preserves.
    pub fn appended(&self) -> Vec<u8> {
        let mut all = self.media.clone();
        all.extend_from_slice(&self.cache);
        all
    }

    /// Bytes sitting in the volatile cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Cost of sequentially reading `len` bytes back (recovery).
    pub fn read_cost(&self, len: usize) -> Duration {
        self.profile.read_cost(len)
    }

    /// Truncates the log to a new generation (media and cache cleared),
    /// billed as one barrier. Used after a snapshot supersedes the log.
    pub fn truncate(&mut self) -> Duration {
        self.media.clear();
        self.cache.clear();
        self.profile.flush
    }

    /// Discards durable bytes beyond `len` — crash repair: recovery
    /// chops a torn/corrupt suffix so later appends extend a clean
    /// prefix.
    pub fn discard_after(&mut self, len: usize) {
        self.media.truncate(len);
    }

    /// Replaces the durable media with a captured image, clearing the
    /// cache. Rehydration support for crash-point sweeps: this models
    /// swapping the platter in, not writing through the interface, so
    /// it costs nothing and bumps no counters.
    pub fn seed_media(&mut self, bytes: &[u8]) {
        self.media = bytes.to_vec();
        self.cache.clear();
    }

    /// Is the device halted by the fault plan?
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Operation counters.
    pub fn counters(&self) -> DeviceCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_then_flush_is_durable() {
        let mut d = StorageDevice::new(DeviceProfile::fast_for_tests());
        let c1 = d.append(b"hello");
        assert_eq!(c1, Duration::from_nanos(1_005));
        assert_eq!(d.durable(), b"");
        assert_eq!(d.cache_len(), 5);
        let c2 = d.flush();
        assert_eq!(c2, Duration::from_micros(100));
        assert_eq!(d.durable(), b"hello");
        assert_eq!(d.cache_len(), 0);
    }

    #[test]
    fn crash_loses_unflushed_cache() {
        let mut d = StorageDevice::new(DeviceProfile::fast_for_tests());
        d.append(b"durable");
        d.flush();
        d.append(b"volatile");
        d.crash();
        assert_eq!(d.durable(), b"durable");
        assert_eq!(d.cache_len(), 0);
    }

    #[test]
    fn torn_tail_survives_crash_with_corruption() {
        let faults = FaultPlan {
            torn_tail_bytes: 3,
            corrupt_torn_tail: true,
            ..FaultPlan::none()
        };
        let mut d = StorageDevice::with_faults(DeviceProfile::fast_for_tests(), faults);
        d.append(b"abcdef");
        d.crash();
        // First two torn bytes intact, third has its low bit flipped.
        assert_eq!(d.durable(), &[b'a', b'b', b'c' ^ 1]);
    }

    #[test]
    fn dropped_flush_loses_data_on_crash_but_later_flush_repairs() {
        let faults = FaultPlan {
            drop_flushes: [1].into_iter().collect(),
            ..FaultPlan::none()
        };
        let mut d = StorageDevice::with_faults(DeviceProfile::fast_for_tests(), faults);
        d.append(b"x");
        d.flush(); // dropped: billed, not persisted
        assert_eq!(d.durable(), b"");
        assert_eq!(d.counters().flushes_dropped, 1);
        d.flush(); // honest: repairs
        assert_eq!(d.durable(), b"x");
    }

    #[test]
    fn halted_device_discards_writes_silently() {
        let faults = FaultPlan {
            halt_after_appends: Some(2),
            ..FaultPlan::none()
        };
        let mut d = StorageDevice::with_faults(DeviceProfile::fast_for_tests(), faults);
        d.append(b"a");
        d.append(b"b"); // the halting append still lands in cache
        assert!(d.halted());
        assert_eq!(d.append(b"c"), Duration::ZERO);
        assert_eq!(d.flush(), Duration::ZERO);
        d.crash(); // power-cycle clears the halt
        assert!(!d.halted());
        assert_eq!(d.durable(), b"");
    }

    #[test]
    fn truncate_and_discard_after() {
        let mut d = StorageDevice::new(DeviceProfile::fast_for_tests());
        d.append(b"0123456789");
        d.flush();
        d.discard_after(4);
        assert_eq!(d.durable(), b"0123");
        d.truncate();
        assert_eq!(d.durable(), b"");
    }

    #[test]
    fn profiles_order_sanely() {
        for p in [
            DeviceProfile::nvme(),
            DeviceProfile::ssd(),
            DeviceProfile::hdd(),
        ] {
            assert!(p.flush > p.append_cost(64), "flush dominates appends");
        }
        assert!(DeviceProfile::hdd().flush > DeviceProfile::ssd().flush);
        assert!(DeviceProfile::ssd().flush > DeviceProfile::nvme().flush);
    }
}
