// Fed as `crates/trace/src/lib.rs`: the flight recorder itself.
// Reachability from a TCB entry point is denied by the explicit trace
// gate regardless of any declared category.
#![forbid(unsafe_code)]
pub fn span_volatile() {}
