//! Clean twin of `provider_unbound.rs`: the evidence-order binding
//! pre-check runs unconditionally before dispatch, so `order-bound`
//! dominates every path to the settlement sinks.

pub fn submit_bound(
    store: &mut Store,
    verifier: &Verifier,
    order_id: u64,
    evidence: &Evidence,
    now: Duration,
) -> Result<Receipt, VerifyError> {
    check_order_binding(store, order_id, evidence)?;
    let verified = verifier.verify(evidence, now)?;
    store.try_settle(order_id);
    Ok(Receipt {
        order_id,
        attempts: verified.attempts,
    })
}

fn check_order_binding(
    store: &Store,
    order_id: u64,
    evidence: &Evidence,
) -> Result<(), VerifyError> {
    if evidence.tx_digest() != store.digest_of(order_id) {
        return Err(VerifyError::TokenMismatch);
    }
    Ok(())
}
