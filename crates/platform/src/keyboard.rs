//! The PS/2 keyboard model.
//!
//! The trusted path's input leg rests on one hardware fact: during a secure
//! session the PAL programs the keyboard controller for exclusive access
//! (and SKINIT's protections prevent DMA/interrupt games), so *malware
//! cannot synthesize keystrokes that the PAL would accept*. We model that
//! with an ownership bit and an event-source tag: hardware events (from the
//! human's fingers) always enter the queue; software injection is an OS
//! service that fails while the PAL owns the device.

use crate::error::PlatformError;
use std::collections::VecDeque;
use std::time::Duration;

/// Who currently owns an input/output device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceOwner {
    /// The (untrusted) operating system.
    Os,
    /// The PAL inside an active secure session.
    Pal,
}

/// A decoded key event (we model post-scancode decoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyEvent {
    /// A printable character.
    Char(char),
    /// The Enter key.
    Enter,
    /// The Escape key.
    Escape,
    /// Backspace.
    Backspace,
}

impl KeyEvent {
    /// The character for `Char`, `None` otherwise.
    pub fn as_char(self) -> Option<char> {
        match self {
            KeyEvent::Char(c) => Some(c),
            _ => None,
        }
    }
}

/// Where an event originated. The PAL never sees this tag (hardware does
/// not label keystrokes); it exists so the *simulation* can enforce that
/// software injection is impossible during a session, and so tests can
/// assert the security property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSource {
    /// A real key press by the human at the physical keyboard.
    Hardware,
    /// Synthesized by software through the OS input-injection service.
    SoftwareInjected,
}

/// A queued event with its arrival time and provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedEvent {
    /// The key event.
    pub event: KeyEvent,
    /// Virtual time at which the event entered the controller.
    pub at: Duration,
    /// Provenance (simulation-only metadata).
    pub source: InputSource,
}

/// The keyboard controller.
#[derive(Debug, Clone)]
pub struct Keyboard {
    owner: DeviceOwner,
    queue: VecDeque<QueuedEvent>,
}

impl Default for Keyboard {
    fn default() -> Self {
        Keyboard::new()
    }
}

impl Keyboard {
    /// A keyboard owned by the OS with an empty queue.
    pub fn new() -> Self {
        Keyboard {
            owner: DeviceOwner::Os,
            queue: VecDeque::new(),
        }
    }

    /// Current owner.
    pub fn owner(&self) -> DeviceOwner {
        self.owner
    }

    /// Transfers ownership (invoked by the machine on session entry/exit).
    /// Taking ownership flushes the queue — the PAL must not trust input
    /// buffered while the OS was in control, and vice versa.
    pub(crate) fn set_owner(&mut self, owner: DeviceOwner) {
        self.owner = owner;
        self.queue.clear();
    }

    /// A hardware key press (the human). Always accepted.
    pub fn press_hardware(&mut self, event: KeyEvent, at: Duration) {
        self.queue.push_back(QueuedEvent {
            event,
            at,
            source: InputSource::Hardware,
        });
    }

    /// Software injection via the OS service. Rejected while the PAL owns
    /// the controller — this is the property malware runs into.
    pub fn inject_software(&mut self, event: KeyEvent, at: Duration) -> Result<(), PlatformError> {
        if self.owner() == DeviceOwner::Pal {
            return Err(PlatformError::DeviceIsolated("keyboard"));
        }
        self.queue.push_back(QueuedEvent {
            event,
            at,
            source: InputSource::SoftwareInjected,
        });
        Ok(())
    }

    /// Reads the next event as `reader`. Only the owner may read.
    pub fn read(&mut self, reader: DeviceOwner) -> Result<Option<QueuedEvent>, PlatformError> {
        if self.owner() != reader {
            return Err(PlatformError::NotOwner("keyboard"));
        }
        Ok(self.queue.pop_front())
    }

    /// Number of queued events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn os_owns_at_boot_and_reads_injected_input() {
        let mut kb = Keyboard::new();
        assert_eq!(kb.owner(), DeviceOwner::Os);
        kb.inject_software(KeyEvent::Char('x'), t(1)).unwrap();
        let ev = kb.read(DeviceOwner::Os).unwrap().unwrap();
        assert_eq!(ev.event, KeyEvent::Char('x'));
        assert_eq!(ev.source, InputSource::SoftwareInjected);
    }

    #[test]
    fn injection_fails_while_pal_owns() {
        let mut kb = Keyboard::new();
        kb.set_owner(DeviceOwner::Pal);
        let err = kb.inject_software(KeyEvent::Enter, t(0)).unwrap_err();
        assert_eq!(err, PlatformError::DeviceIsolated("keyboard"));
        // Hardware presses still arrive.
        kb.press_hardware(KeyEvent::Enter, t(2));
        assert_eq!(kb.pending(), 1);
    }

    #[test]
    fn only_owner_reads() {
        let mut kb = Keyboard::new();
        kb.press_hardware(KeyEvent::Char('a'), t(0));
        assert!(kb.read(DeviceOwner::Pal).is_err());
        assert!(kb.read(DeviceOwner::Os).unwrap().is_some());
    }

    #[test]
    fn ownership_transfer_flushes_stale_input() {
        let mut kb = Keyboard::new();
        // Malware pre-loads a fake confirmation before the session starts.
        kb.inject_software(KeyEvent::Enter, t(0)).unwrap();
        kb.set_owner(DeviceOwner::Pal);
        // The PAL sees an empty queue: the pre-loaded event is gone.
        assert_eq!(kb.read(DeviceOwner::Pal).unwrap(), None);
        // And the same on the way back to the OS.
        kb.press_hardware(KeyEvent::Char('q'), t(1));
        kb.set_owner(DeviceOwner::Os);
        assert_eq!(kb.read(DeviceOwner::Os).unwrap(), None);
    }

    #[test]
    fn events_preserve_fifo_order_and_time() {
        let mut kb = Keyboard::new();
        kb.press_hardware(KeyEvent::Char('a'), t(1));
        kb.press_hardware(KeyEvent::Char('b'), t(2));
        let e1 = kb.read(DeviceOwner::Os).unwrap().unwrap();
        let e2 = kb.read(DeviceOwner::Os).unwrap().unwrap();
        assert_eq!((e1.event, e1.at), (KeyEvent::Char('a'), t(1)));
        assert_eq!((e2.event, e2.at), (KeyEvent::Char('b'), t(2)));
    }

    #[test]
    fn as_char_extracts_only_chars() {
        assert_eq!(KeyEvent::Char('z').as_char(), Some('z'));
        assert_eq!(KeyEvent::Enter.as_char(), None);
    }
}
