//! The session executor: launch, run, bind, quote, resume — with the
//! per-phase timing breakdown the paper's evaluation reports.

use crate::error::FlickerError;
use crate::pal::{Operator, Pal, PalEnv};
use std::time::Duration;
use utp_crypto::sha1::{Sha1, Sha1Digest};
use utp_platform::machine::{LaunchInfo, Machine};
use utp_tpm::pcr::PcrSelection;
use utp_tpm::quote::Quote;

/// Which late-launch instruction to use for the session.
#[derive(Debug, Clone)]
pub enum Launch {
    /// AMD `SKINIT` (the paper's platform): the PAL is the SLB.
    Skinit,
    /// Intel `GETSEC[SENTER]`: launch through the given SINIT ACM image.
    Senter {
        /// The SINIT authenticated code module image.
        sinit: Vec<u8>,
    },
}

/// Request to attest the session with a quote after the PAL's I/O has been
/// bound into PCR 17.
#[derive(Debug, Clone)]
pub struct AttestSpec {
    /// AIK to sign with.
    pub aik_handle: u32,
    /// Verifier nonce (`externalData`).
    pub nonce: Sha1Digest,
    /// PCRs to cover; normally [`PcrSelection::drtm_only`].
    pub selection: PcrSelection,
}

/// Per-phase virtual-time breakdown of one session (the paper's session
/// latency table, row by row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    /// OS and device quiesce before `SKINIT`.
    pub suspend: Duration,
    /// `SKINIT` microcode incl. streaming the SLB to the TPM.
    pub skinit: Duration,
    /// PAL execution, including human interaction.
    pub pal: Duration,
    /// Of `pal`, the part spent waiting on the human.
    pub human: Duration,
    /// Binding the I/O digest into PCR 17 and (optionally) quoting.
    pub attest: Duration,
    /// OS resume.
    pub resume: Duration,
}

impl PhaseTimings {
    /// Total session time.
    pub fn total(&self) -> Duration {
        self.suspend + self.skinit + self.pal + self.attest + self.resume
    }

    /// The machine-only cost (total minus human wait), the number the
    /// paper compares against CAPTCHA server cost.
    pub fn machine_only(&self) -> Duration {
        self.total() - self.human
    }

    /// The breakdown as `(span name, virtual start, duration)` triples,
    /// anchored at session start time `t0` — the shape the `utp-trace`
    /// flight recorder ingests. Names match the `utp-trace` static
    /// registry; this crate stays data-only (no recorder dependency) so
    /// nothing PAL-reachable can ever emit a trace record.
    ///
    /// The human wait happens *inside* the PAL phase; it is rendered as
    /// a sub-span at the tail of `session.pal`.
    pub fn spans(&self, t0: Duration) -> [(&'static str, Duration, Duration); 6] {
        let skinit_start = t0 + self.suspend;
        let pal_start = skinit_start + self.skinit;
        let attest_start = pal_start + self.pal;
        let resume_start = attest_start + self.attest;
        let human_start = pal_start + self.pal.saturating_sub(self.human);
        [
            ("session.suspend", t0, self.suspend),
            ("session.skinit", skinit_start, self.skinit),
            ("session.pal", pal_start, self.pal),
            ("session.human", human_start, self.human),
            ("session.attest", attest_start, self.attest),
            ("session.resume", resume_start, self.resume),
        ]
    }
}

/// Everything a session produced.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The PAL's output bytes.
    pub output: Vec<u8>,
    /// How the session was launched (incl. the SINIT measurement on TXT).
    pub launch: LaunchInfo,
    /// The SLB/MLE measurement (PAL identity).
    pub measurement: Sha1Digest,
    /// Digest binding this session's input and output.
    pub io_digest: Sha1Digest,
    /// PCR 17 value after the I/O extend (what a quote covers).
    pub pcr17_after_io: Sha1Digest,
    /// The quote, if attestation was requested.
    pub quote: Option<Quote>,
    /// Per-phase timing breakdown.
    pub timings: PhaseTimings,
}

/// Canonical digest binding a PAL invocation's input and output:
/// `SHA1( len(in) || in || len(out) || out )`.
pub fn io_digest(input: &[u8], output: &[u8]) -> Sha1Digest {
    let mut ctx = Sha1::new();
    ctx.update(&(input.len() as u32).to_be_bytes());
    ctx.update(input);
    ctx.update(&(output.len() as u32).to_be_bytes());
    ctx.update(output);
    ctx.finalize()
}

/// Runs one complete Flicker session.
///
/// Sequence: `SKINIT(pal.image())` → `pal.invoke(env, input)` → extend
/// PCR 17 with [`io_digest`] → optional `TPM_Quote` → cap PCR 17 and
/// resume the OS. The OS is resumed even when the PAL fails.
///
/// # Errors
///
/// Propagates platform launch failures, TPM failures and PAL failures.
pub fn run_pal(
    machine: &mut Machine,
    pal: &mut dyn Pal,
    input: &[u8],
    operator: &mut dyn Operator,
    attest: Option<AttestSpec>,
) -> Result<SessionReport, FlickerError> {
    run_pal_with_launch(machine, Launch::Skinit, pal, input, operator, attest)
}

/// Like [`run_pal`] but with an explicit launch flavor — use
/// [`Launch::Senter`] for Intel TXT platforms. The attestation selection
/// for TXT should cover PCRs 17 and 18 (see
/// [`crate::attestation::check_attested_session_txt`]).
///
/// # Errors
///
/// Same as [`run_pal`].
pub fn run_pal_with_launch(
    machine: &mut Machine,
    launch: Launch,
    pal: &mut dyn Pal,
    input: &[u8],
    operator: &mut dyn Operator,
    attest: Option<AttestSpec>,
) -> Result<SessionReport, FlickerError> {
    let suspend = machine.config().suspend_cost;
    let t0 = machine.now();
    let image = pal.image().to_vec();
    let mut session = match &launch {
        Launch::Skinit => machine.skinit(&image)?,
        Launch::Senter { sinit } => machine.senter(sinit, &image)?,
    };
    let launch_info = session.launch();
    let measurement = session.measurement();
    let t_launched = session.now();

    let (pal_result, human) = {
        let mut env = PalEnv::new(&mut session, operator);
        let r = pal.invoke(&mut env, input);
        let human = env.human_time();
        (r, human)
    };
    let t_pal_done = session.now();

    let output = match pal_result {
        Ok(out) => out,
        Err(e) => {
            session.end();
            return Err(e.into());
        }
    };

    let io = io_digest(input, &output);
    let pcr17_after_io = session.extend(launch_info.io_pcr(), &io)?;
    let quote = match &attest {
        Some(spec) => Some(session.quote(spec.aik_handle, spec.selection, spec.nonce)?),
        None => None,
    };
    let t_attested = session.now();
    session.end();
    let t_end = machine.now();

    let timings = PhaseTimings {
        suspend,
        skinit: (t_launched - t0).saturating_sub(suspend),
        pal: t_pal_done - t_launched,
        human,
        attest: t_attested - t_pal_done,
        resume: t_end - t_attested,
    };
    Ok(SessionReport {
        output,
        launch: launch_info,
        measurement,
        io_digest: io,
        pcr17_after_io,
        quote,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pal::{PalError, ScriptedOperator};
    use utp_platform::machine::MachineConfig;
    use utp_tpm::VendorProfile;

    struct Echo;
    impl Pal for Echo {
        fn image(&self) -> &[u8] {
            b"echo"
        }
        fn invoke(&mut self, _env: &mut PalEnv<'_, '_>, input: &[u8]) -> Result<Vec<u8>, PalError> {
            Ok(input.to_vec())
        }
    }

    struct Failing;
    impl Pal for Failing {
        fn image(&self) -> &[u8] {
            b"failing"
        }
        fn invoke(
            &mut self,
            _env: &mut PalEnv<'_, '_>,
            _input: &[u8],
        ) -> Result<Vec<u8>, PalError> {
            Err(PalError::Failed("deliberate".into()))
        }
    }

    fn machine() -> Machine {
        Machine::new(MachineConfig::fast_for_tests(21))
    }

    #[test]
    fn echo_session_without_attestation() {
        let mut m = machine();
        let mut op = ScriptedOperator::silent();
        let report = run_pal(&mut m, &mut Echo, b"payload", &mut op, None).unwrap();
        assert_eq!(report.output, b"payload");
        assert!(report.quote.is_none());
        assert_eq!(report.measurement, Sha1::digest(b"echo"));
        assert!(!m.in_secure_session());
    }

    #[test]
    fn attested_session_yields_verifiable_quote() {
        let mut m = machine();
        let aik = m.tpm_provision().make_identity();
        let nonce = Sha1::digest(b"n1");
        let mut op = ScriptedOperator::silent();
        let report = run_pal(
            &mut m,
            &mut Echo,
            b"in",
            &mut op,
            Some(AttestSpec {
                aik_handle: aik,
                nonce,
                selection: PcrSelection::drtm_only(),
            }),
        )
        .unwrap();
        let quote = report.quote.unwrap();
        let pk = m.tpm().read_pubkey(aik).unwrap();
        assert!(quote.verify(&pk, &nonce));
        // The quoted PCR 17 value equals the expected chain.
        let expected = crate::attestation::expected_pcr17(&report.measurement, &report.io_digest);
        assert_eq!(quote.pcr_values[0], expected);
        assert_eq!(report.pcr17_after_io, expected);
    }

    #[test]
    fn io_digest_binds_both_directions() {
        assert_ne!(io_digest(b"a", b"b"), io_digest(b"b", b"a"));
        assert_ne!(io_digest(b"ab", b""), io_digest(b"a", b"b"));
        assert_ne!(io_digest(b"", b"ab"), io_digest(b"a", b"b"));
    }

    #[test]
    fn failing_pal_still_resumes_os() {
        let mut m = machine();
        let mut op = ScriptedOperator::silent();
        let err = run_pal(&mut m, &mut Failing, b"", &mut op, None).unwrap_err();
        assert!(matches!(err, FlickerError::Pal(_)));
        assert!(!m.in_secure_session());
        // The machine can launch again.
        assert!(run_pal(&mut m, &mut Echo, b"", &mut op, None).is_ok());
    }

    #[test]
    fn timings_reflect_cost_model() {
        let mut m = Machine::new(MachineConfig::realistic(VendorProfile::Infineon, 2));
        let aik = m.tpm_provision().make_identity();
        let mut op = ScriptedOperator::silent();
        let report = run_pal(
            &mut m,
            &mut Echo,
            b"x",
            &mut op,
            Some(AttestSpec {
                aik_handle: aik,
                nonce: Sha1Digest::zero(),
                selection: PcrSelection::drtm_only(),
            }),
        )
        .unwrap();
        let t = report.timings;
        assert_eq!(t.suspend, Duration::from_millis(25));
        assert!(t.skinit >= Duration::from_millis(10));
        // Attest phase includes the ~331 ms Infineon quote.
        assert!(t.attest >= Duration::from_millis(300), "{:?}", t.attest);
        assert!(t.resume >= Duration::from_millis(35));
        assert_eq!(
            t.total(),
            t.suspend + t.skinit + t.pal + t.attest + t.resume
        );
        assert!(t.machine_only() <= t.total());
    }

    #[test]
    fn phase_spans_tile_the_session() {
        let t = PhaseTimings {
            suspend: Duration::from_millis(25),
            skinit: Duration::from_millis(12),
            pal: Duration::from_millis(100),
            human: Duration::from_millis(80),
            attest: Duration::from_millis(331),
            resume: Duration::from_millis(35),
        };
        let t0 = Duration::from_secs(1);
        let spans = t.spans(t0);
        assert_eq!(spans[0], ("session.suspend", t0, t.suspend));
        // Phases (minus the human sub-span) tile [t0, t0 + total()].
        let mut cursor = t0;
        for (name, start, dur) in spans {
            if name == "session.human" {
                continue;
            }
            assert_eq!(start, cursor, "{name} starts where the last ended");
            cursor += dur;
        }
        assert_eq!(cursor, t0 + t.total());
        // The human sub-span sits at the tail of the PAL phase.
        let pal = spans[2];
        let human = spans[3];
        assert_eq!(human.1 + human.2, pal.1 + pal.2);
    }

    #[test]
    fn different_inputs_give_different_pcr17() {
        let mut m = machine();
        let mut op = ScriptedOperator::silent();
        let r1 = run_pal(&mut m, &mut Echo, b"tx-1", &mut op, None).unwrap();
        let r2 = run_pal(&mut m, &mut Echo, b"tx-2", &mut op, None).unwrap();
        assert_ne!(r1.pcr17_after_io, r2.pcr17_after_io);
        // Same input reproduces the same binding (fresh launches).
        let r3 = run_pal(&mut m, &mut Echo, b"tx-1", &mut op, None).unwrap();
        assert_eq!(r1.pcr17_after_io, r3.pcr17_after_io);
    }
}
