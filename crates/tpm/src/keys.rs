//! TPM key hierarchy: endorsement key (EK), storage root key (SRK), and
//! attestation identity keys (AIKs).
//!
//! A real TPM 1.2 ships with a unique EK whose public half is certified by
//! the manufacturer; AIKs are generated inside the chip and certified by a
//! privacy CA that checks the EK certificate. We model the same structure
//! with from-scratch RSA keys; key sizes are configurable so tests stay
//! fast while experiments run the realistic 2048-bit size.

use crate::error::TpmError;
use std::collections::HashMap;
use utp_crypto::rsa::{RsaKeyPair, RsaPublicKey};

/// Reserved handle of the storage root key.
pub const SRK_HANDLE: u32 = 0x4000_0000;
/// Reserved handle of the endorsement key.
pub const EK_HANDLE: u32 = 0x4000_0001;
/// First handle assigned to generated AIKs.
pub const FIRST_AIK_HANDLE: u32 = 0x0100_0000;

/// What a key slot is allowed to do — TPM 1.2 keys are single-purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyUsage {
    /// Storage keys wrap other keys / sealed data (SRK).
    Storage,
    /// Identity keys sign quotes only (AIK).
    Identity,
    /// The EK decrypts privacy-CA challenges only.
    Endorsement,
}

/// A key slot inside the TPM.
#[derive(Debug, Clone)]
pub struct KeySlot {
    /// Handle used by commands to refer to this key.
    pub handle: u32,
    /// Allowed usage.
    pub usage: KeyUsage,
    /// The key material (kept inside the TPM in hardware; public here
    /// because this is a simulator — nothing outside `utp-tpm` touches it).
    pub keypair: RsaKeyPair,
}

/// The TPM's key store.
#[derive(Debug, Clone)]
pub struct KeyStore {
    slots: HashMap<u32, KeySlot>,
    next_aik: u32,
    next_loaded: u32,
}

impl KeyStore {
    /// Creates the factory state: EK and SRK installed, no AIKs.
    ///
    /// `key_bits` controls RSA size (use 512 in tests, 1024+ in
    /// experiments); `seed` differentiates TPM identities.
    pub fn factory(key_bits: usize, seed: u64) -> Self {
        let mut slots = HashMap::new();
        slots.insert(
            EK_HANDLE,
            KeySlot {
                handle: EK_HANDLE,
                usage: KeyUsage::Endorsement,
                keypair: RsaKeyPair::generate(key_bits, seed.wrapping_mul(3).wrapping_add(1)),
            },
        );
        slots.insert(
            SRK_HANDLE,
            KeySlot {
                handle: SRK_HANDLE,
                usage: KeyUsage::Storage,
                keypair: RsaKeyPair::generate(key_bits, seed.wrapping_mul(3).wrapping_add(2)),
            },
        );
        KeyStore {
            slots,
            next_aik: FIRST_AIK_HANDLE,
            next_loaded: crate::wrapped::FIRST_LOADED_HANDLE,
        }
    }

    /// Generates a new AIK and returns its handle.
    pub fn make_identity(&mut self, key_bits: usize, seed: u64) -> u32 {
        let handle = self.next_aik;
        self.next_aik += 1;
        self.slots.insert(
            handle,
            KeySlot {
                handle,
                usage: KeyUsage::Identity,
                keypair: RsaKeyPair::generate(
                    key_bits,
                    seed.wrapping_mul(7).wrapping_add(handle as u64),
                ),
            },
        );
        handle
    }

    /// Looks up a slot.
    pub fn get(&self, handle: u32) -> Result<&KeySlot, TpmError> {
        self.slots
            .get(&handle)
            .ok_or(TpmError::BadKeyHandle(handle))
    }

    /// Loads an externally reconstructed key (wrapped-key support);
    /// returns its fresh handle.
    pub fn load_external(&mut self, usage: KeyUsage, keypair: RsaKeyPair) -> u32 {
        let handle = self.next_loaded;
        self.next_loaded += 1;
        self.slots.insert(
            handle,
            KeySlot {
                handle,
                usage,
                keypair,
            },
        );
        handle
    }

    /// Unloads a key. The EK and SRK are permanent.
    ///
    /// # Errors
    ///
    /// [`TpmError::BadKeyHandle`] for unknown or permanent handles.
    pub fn evict(&mut self, handle: u32) -> Result<(), TpmError> {
        if handle == EK_HANDLE || handle == SRK_HANDLE {
            return Err(TpmError::BadKeyHandle(handle));
        }
        self.slots
            .remove(&handle)
            .map(|_| ())
            .ok_or(TpmError::BadKeyHandle(handle))
    }

    /// Public key of a slot (what `TPM_GetPubKey` returns).
    pub fn public(&self, handle: u32) -> Result<&RsaPublicKey, TpmError> {
        Ok(self.get(handle)?.keypair.public())
    }

    /// Verifies a handle refers to a key with the given usage.
    pub fn expect_usage(&self, handle: u32, usage: KeyUsage) -> Result<&KeySlot, TpmError> {
        let slot = self.get(handle)?;
        if slot.usage != usage {
            return Err(TpmError::BadKeyHandle(handle));
        }
        Ok(slot)
    }

    /// Number of loaded keys (including EK/SRK).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Never empty: EK and SRK are permanent.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KeyStore {
        KeyStore::factory(512, 42)
    }

    #[test]
    fn factory_has_ek_and_srk() {
        let ks = store();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks.get(EK_HANDLE).unwrap().usage, KeyUsage::Endorsement);
        assert_eq!(ks.get(SRK_HANDLE).unwrap().usage, KeyUsage::Storage);
    }

    #[test]
    fn ek_and_srk_differ() {
        let ks = store();
        assert_ne!(
            ks.public(EK_HANDLE).unwrap(),
            ks.public(SRK_HANDLE).unwrap()
        );
    }

    #[test]
    fn different_seeds_give_different_identities() {
        let a = KeyStore::factory(512, 1);
        let b = KeyStore::factory(512, 2);
        assert_ne!(a.public(EK_HANDLE).unwrap(), b.public(EK_HANDLE).unwrap());
    }

    #[test]
    fn aik_generation_assigns_fresh_handles() {
        let mut ks = store();
        let h1 = ks.make_identity(512, 9);
        let h2 = ks.make_identity(512, 9);
        assert_ne!(h1, h2);
        assert_eq!(ks.get(h1).unwrap().usage, KeyUsage::Identity);
        assert_ne!(ks.public(h1).unwrap(), ks.public(h2).unwrap());
    }

    #[test]
    fn unknown_handle_is_error() {
        let ks = store();
        assert!(matches!(
            ks.get(0xDEAD).unwrap_err(),
            TpmError::BadKeyHandle(0xDEAD)
        ));
    }

    #[test]
    fn usage_check_enforced() {
        let mut ks = store();
        let aik = ks.make_identity(512, 3);
        assert!(ks.expect_usage(aik, KeyUsage::Identity).is_ok());
        assert!(ks.expect_usage(aik, KeyUsage::Storage).is_err());
        assert!(ks.expect_usage(SRK_HANDLE, KeyUsage::Identity).is_err());
    }
}
