//! Verifier-side reconstruction of attested sessions.
//!
//! A remote verifier never sees the machine — only a [`Quote`]. These
//! helpers recompute what PCR 17 *must* contain if (and only if) the
//! claimed PAL really ran with the claimed input/output, which is the
//! entire verification logic the service provider applies.

use utp_crypto::rsa::RsaPublicKey;
use utp_crypto::sha1::{Sha1, Sha1Digest};
use utp_tpm::pcr::PcrSelection;
use utp_tpm::quote::Quote;

/// PCR 17 immediately after a DRTM launch of a PAL with measurement `m`:
/// `H( 0^20 || m )`.
pub fn pcr17_after_launch(pal_measurement: &Sha1Digest) -> Sha1Digest {
    Sha1::digest_concat(Sha1Digest::zero().as_bytes(), pal_measurement.as_bytes())
}

/// PCR 17 after the runtime binds the session I/O:
/// `H( H(0^20 || m) || io_digest )`.
pub fn expected_pcr17(pal_measurement: &Sha1Digest, io_digest: &Sha1Digest) -> Sha1Digest {
    Sha1::digest_concat(
        pcr17_after_launch(pal_measurement).as_bytes(),
        io_digest.as_bytes(),
    )
}

/// Why verification failed (useful for metrics and the attack harness;
/// callers that only need a bool can use [`verify_attested_session`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttestationFailure {
    /// The quote does not cover exactly PCR 17.
    WrongSelection,
    /// The quoted PCR 17 value does not match the expected PAL + I/O chain.
    WrongPcrValue,
    /// The signature or nonce check failed.
    BadQuote,
}

/// Full check: selection, PCR-17 chain, signature, nonce.
///
/// # Errors
///
/// Returns the first [`AttestationFailure`] encountered.
pub fn check_attested_session(
    aik: &RsaPublicKey,
    nonce: &Sha1Digest,
    pal_measurement: &Sha1Digest,
    io_digest: &Sha1Digest,
    quote: &Quote,
) -> Result<(), AttestationFailure> {
    if quote.selection != PcrSelection::drtm_only() || quote.pcr_values.len() != 1 {
        return Err(AttestationFailure::WrongSelection);
    }
    let expected = expected_pcr17(pal_measurement, io_digest);
    if quote.pcr_values[0] != expected {
        return Err(AttestationFailure::WrongPcrValue);
    }
    if !quote.verify(aik, nonce) {
        return Err(AttestationFailure::BadQuote);
    }
    Ok(())
}

/// Expected PCR values after a TXT (`GETSEC[SENTER]`) session:
/// PCR 17 = `H(0^20 ∥ sinit)` (the ACM), PCR 18 = `H(H(0^20 ∥ mle) ∥ io)`
/// (the MLE with the session I/O bound in).
pub fn expected_txt_pcrs(
    sinit_measurement: &Sha1Digest,
    pal_measurement: &Sha1Digest,
    io_digest: &Sha1Digest,
) -> (Sha1Digest, Sha1Digest) {
    let pcr17 = Sha1::digest_concat(Sha1Digest::zero().as_bytes(), sinit_measurement.as_bytes());
    let pcr18_base = Sha1::digest_concat(Sha1Digest::zero().as_bytes(), pal_measurement.as_bytes());
    let pcr18 = Sha1::digest_concat(pcr18_base.as_bytes(), io_digest.as_bytes());
    (pcr17, pcr18)
}

/// The PCR selection a TXT session quote must cover: {17, 18}.
pub fn txt_selection() -> PcrSelection {
    PcrSelection::of(&[
        utp_tpm::pcr::PcrIndex::drtm(),
        utp_tpm::pcr::PcrIndex::new(utp_platform_txt_mle_pcr()).expect("PCR 18 valid"),
    ])
}

// Avoid a dependency cycle: mirror the platform's TXT MLE PCR constant.
const fn utp_platform_txt_mle_pcr() -> u32 {
    18
}

/// Full TXT check: selection {17,18}, both PCR chains, signature, nonce.
/// The verifier pins *both* the SINIT ACM measurement (Intel-published)
/// and the PAL measurement.
///
/// # Errors
///
/// Returns the first [`AttestationFailure`] encountered.
pub fn check_attested_session_txt(
    aik: &RsaPublicKey,
    nonce: &Sha1Digest,
    sinit_measurement: &Sha1Digest,
    pal_measurement: &Sha1Digest,
    io_digest: &Sha1Digest,
    quote: &Quote,
) -> Result<(), AttestationFailure> {
    if quote.selection != txt_selection() || quote.pcr_values.len() != 2 {
        return Err(AttestationFailure::WrongSelection);
    }
    let (pcr17, pcr18) = expected_txt_pcrs(sinit_measurement, pal_measurement, io_digest);
    // Quote values are in ascending PCR order: [17, 18].
    if quote.pcr_values[0] != pcr17 || quote.pcr_values[1] != pcr18 {
        return Err(AttestationFailure::WrongPcrValue);
    }
    if !quote.verify(aik, nonce) {
        return Err(AttestationFailure::BadQuote);
    }
    Ok(())
}

/// Boolean convenience wrapper around [`check_attested_session`].
#[must_use]
pub fn verify_attested_session(
    aik: &RsaPublicKey,
    nonce: &Sha1Digest,
    pal_measurement: &Sha1Digest,
    io_digest: &Sha1Digest,
    quote: &Quote,
) -> bool {
    check_attested_session(aik, nonce, pal_measurement, io_digest, quote).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pal::{Pal, PalEnv, PalError, ScriptedOperator};
    use crate::runtime::{run_pal, AttestSpec};
    use utp_platform::machine::{Machine, MachineConfig};

    struct Echo;
    impl Pal for Echo {
        fn image(&self) -> &[u8] {
            b"echo"
        }
        fn invoke(&mut self, _env: &mut PalEnv<'_, '_>, input: &[u8]) -> Result<Vec<u8>, PalError> {
            Ok(input.to_vec())
        }
    }

    fn attested_report() -> (
        Machine,
        utp_crypto::rsa::RsaPublicKey,
        Sha1Digest,
        crate::runtime::SessionReport,
    ) {
        let mut m = Machine::new(MachineConfig::fast_for_tests(31));
        let aik = m.tpm_provision().make_identity();
        let nonce = Sha1::digest(b"nonce-e2e");
        let mut op = ScriptedOperator::silent();
        let report = run_pal(
            &mut m,
            &mut Echo,
            b"transaction",
            &mut op,
            Some(AttestSpec {
                aik_handle: aik,
                nonce,
                selection: PcrSelection::drtm_only(),
            }),
        )
        .unwrap();
        let pk = m.tpm().read_pubkey(aik).unwrap();
        (m, pk, nonce, report)
    }

    #[test]
    fn genuine_session_verifies() {
        let (_m, pk, nonce, report) = attested_report();
        let quote = report.quote.as_ref().unwrap();
        assert_eq!(
            check_attested_session(&pk, &nonce, &report.measurement, &report.io_digest, quote),
            Ok(())
        );
        assert!(verify_attested_session(
            &pk,
            &nonce,
            &report.measurement,
            &report.io_digest,
            quote
        ));
    }

    #[test]
    fn wrong_pal_measurement_rejected() {
        let (_m, pk, nonce, report) = attested_report();
        let quote = report.quote.as_ref().unwrap();
        let fake_measurement = Sha1::digest(b"malicious pal");
        assert_eq!(
            check_attested_session(&pk, &nonce, &fake_measurement, &report.io_digest, quote),
            Err(AttestationFailure::WrongPcrValue)
        );
    }

    #[test]
    fn wrong_io_rejected() {
        let (_m, pk, nonce, report) = attested_report();
        let quote = report.quote.as_ref().unwrap();
        let forged_io = crate::runtime::io_digest(b"transaction", b"FORGED OUTPUT");
        assert_eq!(
            check_attested_session(&pk, &nonce, &report.measurement, &forged_io, quote),
            Err(AttestationFailure::WrongPcrValue)
        );
    }

    #[test]
    fn wrong_nonce_rejected() {
        let (_m, pk, _nonce, report) = attested_report();
        let quote = report.quote.as_ref().unwrap();
        let stale = Sha1::digest(b"previous nonce");
        assert_eq!(
            check_attested_session(&pk, &stale, &report.measurement, &report.io_digest, quote),
            Err(AttestationFailure::BadQuote)
        );
    }

    #[test]
    fn wrong_selection_rejected() {
        let (_m, pk, nonce, report) = attested_report();
        let mut quote = report.quote.clone().unwrap();
        quote
            .selection
            .insert(utp_tpm::pcr::PcrIndex::new(0).unwrap());
        assert_eq!(
            check_attested_session(&pk, &nonce, &report.measurement, &report.io_digest, &quote),
            Err(AttestationFailure::WrongSelection)
        );
    }

    #[test]
    fn chain_helpers_compose() {
        let m = Sha1::digest(b"pal");
        let io = Sha1::digest(b"io");
        let p1 = pcr17_after_launch(&m);
        assert_eq!(
            expected_pcr17(&m, &io),
            Sha1::digest_concat(p1.as_bytes(), io.as_bytes())
        );
    }
}

#[cfg(test)]
mod txt_tests {
    use super::*;
    use crate::pal::{Pal, PalEnv, PalError, ScriptedOperator};
    use crate::runtime::{run_pal_with_launch, AttestSpec, Launch};
    use utp_platform::machine::{LaunchInfo, Machine, MachineConfig};

    struct Echo;
    impl Pal for Echo {
        fn image(&self) -> &[u8] {
            b"echo-mle"
        }
        fn invoke(&mut self, _env: &mut PalEnv<'_, '_>, input: &[u8]) -> Result<Vec<u8>, PalError> {
            Ok(input.to_vec())
        }
    }

    const SINIT: &[u8] = b"intel sinit acm v2.1";

    fn txt_report() -> (
        utp_crypto::rsa::RsaPublicKey,
        Sha1Digest,
        crate::runtime::SessionReport,
    ) {
        let mut m = Machine::new(MachineConfig::fast_for_tests(55));
        let aik = m.tpm_provision().make_identity();
        let nonce = Sha1::digest(b"txt nonce");
        let mut op = ScriptedOperator::silent();
        let report = run_pal_with_launch(
            &mut m,
            Launch::Senter {
                sinit: SINIT.to_vec(),
            },
            &mut Echo,
            b"txn input",
            &mut op,
            Some(AttestSpec {
                aik_handle: aik,
                nonce,
                selection: txt_selection(),
            }),
        )
        .unwrap();
        let pk = m.tpm().read_pubkey(aik).unwrap();
        (pk, nonce, report)
    }

    #[test]
    fn genuine_txt_session_verifies() {
        let (pk, nonce, report) = txt_report();
        assert!(matches!(report.launch, LaunchInfo::Senter { .. }));
        assert_eq!(report.measurement, Sha1::digest(b"echo-mle"));
        let quote = report.quote.as_ref().unwrap();
        check_attested_session_txt(
            &pk,
            &nonce,
            &Sha1::digest(SINIT),
            &report.measurement,
            &report.io_digest,
            quote,
        )
        .unwrap();
    }

    #[test]
    fn wrong_sinit_rejected() {
        let (pk, nonce, report) = txt_report();
        let quote = report.quote.as_ref().unwrap();
        assert_eq!(
            check_attested_session_txt(
                &pk,
                &nonce,
                &Sha1::digest(b"rogue sinit"),
                &report.measurement,
                &report.io_digest,
                quote,
            ),
            Err(AttestationFailure::WrongPcrValue)
        );
    }

    #[test]
    fn wrong_mle_rejected() {
        let (pk, nonce, report) = txt_report();
        let quote = report.quote.as_ref().unwrap();
        assert_eq!(
            check_attested_session_txt(
                &pk,
                &nonce,
                &Sha1::digest(SINIT),
                &Sha1::digest(b"evil mle"),
                &report.io_digest,
                quote,
            ),
            Err(AttestationFailure::WrongPcrValue)
        );
    }

    #[test]
    fn skinit_quote_does_not_pass_txt_check_and_vice_versa() {
        // A quote from an AMD-style session covers only PCR 17; the TXT
        // checker requires {17,18}, so cross-platform confusion fails
        // closed on selection.
        let mut m = Machine::new(MachineConfig::fast_for_tests(56));
        let aik = m.tpm_provision().make_identity();
        let nonce = Sha1::digest(b"n");
        let mut op = ScriptedOperator::silent();
        let report = crate::runtime::run_pal(
            &mut m,
            &mut Echo,
            b"in",
            &mut op,
            Some(AttestSpec {
                aik_handle: aik,
                nonce,
                selection: PcrSelection::drtm_only(),
            }),
        )
        .unwrap();
        let pk = m.tpm().read_pubkey(aik).unwrap();
        let quote = report.quote.as_ref().unwrap();
        assert_eq!(
            check_attested_session_txt(
                &pk,
                &nonce,
                &Sha1::digest(SINIT),
                &report.measurement,
                &report.io_digest,
                quote,
            ),
            Err(AttestationFailure::WrongSelection)
        );
        // And the TXT quote fails the SKINIT checker the same way.
        let (pk2, nonce2, txt) = txt_report();
        assert_eq!(
            check_attested_session(
                &pk2,
                &nonce2,
                &txt.measurement,
                &txt.io_digest,
                txt.quote.as_ref().unwrap(),
            ),
            Err(AttestationFailure::WrongSelection)
        );
    }

    #[test]
    fn txt_io_binding_is_enforced() {
        let (pk, nonce, report) = txt_report();
        let quote = report.quote.as_ref().unwrap();
        let forged_io = crate::runtime::io_digest(b"txn input", b"FORGED");
        assert_eq!(
            check_attested_session_txt(
                &pk,
                &nonce,
                &Sha1::digest(SINIT),
                &report.measurement,
                &forged_io,
                quote,
            ),
            Err(AttestationFailure::WrongPcrValue)
        );
    }
}
