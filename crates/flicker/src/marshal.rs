//! Length-prefixed encoding helpers for PAL and protocol structures.
//!
//! PALs exchange inputs/outputs as flat byte strings (the real Flicker
//! copies them through a reserved physical-memory window), so every
//! structured message in this stack bottoms out in these helpers.

use crate::error::FlickerError;

/// Appends `data` with a `u32` big-endian length prefix.
pub fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    buf.extend_from_slice(&(data.len() as u32).to_be_bytes());
    buf.extend_from_slice(data);
}

/// Appends a `u32` big-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Appends a `u64` big-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// A cursor over a marshaled buffer.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at offset zero.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], FlickerError> {
        if self.remaining() < n {
            return Err(FlickerError::Marshal(format!(
                "need {} bytes, {} remain",
                n,
                self.remaining()
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u32` big-endian.
    pub fn u32(&mut self) -> Result<u32, FlickerError> {
        let raw: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| FlickerError::Marshal("u32 needs 4 bytes".into()))?;
        Ok(u32::from_be_bytes(raw))
    }

    /// Reads a `u64` big-endian.
    pub fn u64(&mut self) -> Result<u64, FlickerError> {
        let raw: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| FlickerError::Marshal("u64 needs 8 bytes".into()))?;
        Ok(u64::from_be_bytes(raw))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], FlickerError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Asserts the buffer is fully consumed (rejects trailing garbage).
    pub fn finish(self) -> Result<(), FlickerError> {
        if self.remaining() != 0 {
            return Err(FlickerError::Marshal(format!(
                "{} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_fields() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_bytes(&mut buf, b"payload");
        put_u64(&mut buf, u64::MAX);
        put_bytes(&mut buf, b"");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.bytes().unwrap(), b"");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"abcdef");
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        buf.push(0xFF);
        let mut r = Reader::new(&buf);
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn length_prefix_lies_are_detected() {
        // Prefix claims 100 bytes but only 3 follow.
        let mut buf = 100u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        let mut r = Reader::new(&buf);
        assert!(r.bytes().is_err());
    }
}
