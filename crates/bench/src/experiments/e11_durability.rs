//! E11 — WAL group commit vs. flush-per-record, and recovery cost.
//!
//! All numbers here are **virtual** device time from the simulated
//! [`StorageDevice`] profiles, not host wall-clock: the journal
//! serializes every append and barrier onto one deterministic device
//! timeline, so two runs of this experiment produce identical tables.
//!
//! **Part A** saturates a journal with settle records at group-commit
//! batch sizes `B ∈ {1, 4, 16, 64}` on each device profile. Durability
//! is *equal* across rows — WAL-before-ack means a record is acked only
//! once a flush covers it — so the sweep isolates what batching the
//! barrier buys: sustained settle throughput (records per virtual
//! second) and the per-record ack-latency distribution (submit→covered,
//! histogrammed). The paper's settlement path acks nothing it could
//! forget; group commit is how that stays affordable.
//!
//! **Part B** measures recovery: virtual time to scan + replay a log of
//! `n` settle records, with and without a mid-log snapshot (snapshot
//! installation truncates the log, so recovery reads snapshot + suffix
//! instead of the whole history).
//!
//! Regenerate: `cargo run -p utp-bench --bin e11_durability`

use crate::table;
use std::time::Duration;
use utp_journal::{DeviceProfile, Journal, JournalConfig, JournalRecord, NO_ORDER};
use utp_trace::LatencyHistogram;

/// One (profile × batch-size) group-commit measurement.
#[derive(Debug, Clone)]
pub struct CommitRow {
    /// Device profile name.
    pub profile: &'static str,
    /// Records per flush barrier.
    pub group_commit: usize,
    /// Settle records appended (all durable by the end).
    pub records: usize,
    /// Total virtual device time.
    pub device_time: Duration,
    /// Sustained records per virtual second.
    pub records_per_sec: f64,
    /// Flush barriers issued.
    pub syncs: u64,
    /// Ack latency (append submitted → covering flush durable).
    pub ack: LatencyHistogram,
}

/// One recovery measurement.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Settle records in the journal's history.
    pub records: usize,
    /// Whether a snapshot was installed at the midpoint.
    pub snapshot: bool,
    /// Log bytes actually read at recovery.
    pub log_bytes: usize,
    /// Records replayed from the log (the suffix, under a snapshot).
    pub replayed: u64,
    /// Virtual device time to read + replay.
    pub recovery_time: Duration,
}

/// The experiment output.
#[derive(Debug, Clone)]
pub struct E11Report {
    /// Part A: group-commit sweep.
    pub commit: Vec<CommitRow>,
    /// Part B: recovery cost sweep.
    pub recovery: Vec<RecoveryRow>,
}

/// The settle record the saturation loop appends: audit-only (no order
/// binding), the cheapest record the hot path writes.
fn settle_record(i: u64) -> JournalRecord {
    let mut nonce = [0u8; 20];
    nonce[..8].copy_from_slice(&i.to_be_bytes());
    JournalRecord::Settle {
        order_id: NO_ORDER,
        nonce,
        at: Duration::from_millis(i),
        outcome: Ok(()),
    }
}

/// Appends `records` settle records under batch size `group_commit`,
/// tracking each record's submit time and resolving its ack at the
/// covering flush — the same WAL-before-ack discipline the provider's
/// verification workers follow.
fn commit_row(
    profile_name: &'static str,
    profile: DeviceProfile,
    group_commit: usize,
    records: usize,
) -> CommitRow {
    let journal = Journal::new(JournalConfig::new(profile, group_commit));
    let mut ack = LatencyHistogram::new();
    let mut pending: Vec<Duration> = Vec::with_capacity(group_commit);
    for i in 0..records {
        let submitted = journal.device_time();
        let receipt = journal.append_record(&settle_record(i as u64));
        pending.push(submitted);
        if receipt.flushed {
            let durable_at = journal.device_time();
            for s in pending.drain(..) {
                ack.record_ns((durable_at - s).as_nanos() as u64);
            }
        }
    }
    if !pending.is_empty() {
        journal.sync();
        let durable_at = journal.device_time();
        for s in pending.drain(..) {
            ack.record_ns((durable_at - s).as_nanos() as u64);
        }
    }
    let device_time = journal.device_time();
    let stats = journal.stats();
    CommitRow {
        profile: profile_name,
        group_commit,
        records,
        device_time,
        records_per_sec: records as f64 / device_time.as_secs_f64(),
        syncs: stats.syncs,
        ack,
    }
}

/// Builds a journal holding `records` settle records (batched flushes),
/// optionally checkpoints at the midpoint, then measures a cold replay.
fn recovery_row(records: usize, snapshot: bool) -> RecoveryRow {
    let journal = Journal::new(JournalConfig::new(DeviceProfile::ssd(), 16));
    for i in 0..records {
        journal.append_record(&settle_record(i as u64));
        if snapshot && i == records / 2 {
            journal.sync();
            let (state, _, _) = journal.replay();
            journal.install_snapshot(&state);
        }
    }
    journal.sync();
    let log_bytes = journal.durable_log_bytes().len();
    // Cold restart: same durable images, fresh device timeline.
    let cold = Journal::with_durable(
        JournalConfig::new(DeviceProfile::ssd(), 16),
        &journal.durable_snapshot_bytes(),
        &journal.durable_log_bytes(),
    );
    let before = cold.device_time();
    let (_state, report, read_cost) = cold.replay();
    debug_assert_eq!(cold.device_time() - before, read_cost);
    RecoveryRow {
        records,
        snapshot,
        log_bytes,
        replayed: report.records_applied + report.records_skipped,
        recovery_time: read_cost,
    }
}

/// Runs both parts. `records_n` is the Part A saturation count; Part B
/// sweeps `log_lengths` with and without a midpoint snapshot.
pub fn run(records_n: usize, batch_sizes: &[usize], log_lengths: &[usize]) -> E11Report {
    let mut commit = Vec::new();
    for (name, profile) in [
        ("nvme", DeviceProfile::nvme()),
        ("ssd", DeviceProfile::ssd()),
        ("hdd", DeviceProfile::hdd()),
    ] {
        for &b in batch_sizes {
            commit.push(commit_row(name, profile.clone(), b, records_n));
        }
    }
    let mut recovery = Vec::new();
    for &n in log_lengths {
        recovery.push(recovery_row(n, false));
        recovery.push(recovery_row(n, true));
    }
    E11Report { commit, recovery }
}

/// Flattens the report into its perf artifact pair. E11 runs entirely
/// on the virtual device timeline, so everything — including the
/// group-commit amortization ratio and ack-latency distributions — is
/// canonical and byte-identical across runs; the host artifact stays
/// empty.
pub fn artifacts(report: &E11Report, config: &str) -> utp_obs::ArtifactPair {
    let mut pair = utp_obs::ArtifactPair::new("E11", config);
    for r in &report.commit {
        let batch = r.group_commit.to_string();
        let labels: &[(&str, &str)] = &[("device", r.profile), ("batch", &batch)];
        pair.canonical
            .push_u64("e11.records", labels, r.records as u64);
        pair.canonical.push_u64(
            "e11.device_time_ns",
            labels,
            r.device_time.as_nanos() as u64,
        );
        pair.canonical
            .push_f64("e11.records_per_sec", labels, r.records_per_sec);
        pair.canonical.push_u64("e11.syncs", labels, r.syncs);
        pair.canonical.push_hist("e11.ack_ns", labels, &r.ack);
    }
    for profile in ["nvme", "ssd", "hdd"] {
        // The amortization ratio needs the flush-per-record baseline row.
        if report
            .commit
            .iter()
            .any(|r| r.profile == profile && r.group_commit == 1)
        {
            pair.canonical.push_f64(
                "e11.best_speedup",
                &[("device", profile)],
                best_speedup(report, profile),
            );
        }
    }
    for r in &report.recovery {
        let records = r.records.to_string();
        let labels: &[(&str, &str)] = &[
            ("history", &records),
            ("snapshot", if r.snapshot { "midpoint" } else { "none" }),
        ];
        pair.canonical
            .push_u64("e11.log_bytes", labels, r.log_bytes as u64);
        pair.canonical.push_u64("e11.replayed", labels, r.replayed);
        pair.canonical.push_u64(
            "e11.recovery_time_ns",
            labels,
            r.recovery_time.as_nanos() as u64,
        );
    }
    pair
}

/// Speedup of the best batch size over flush-per-record on `profile`.
pub fn best_speedup(report: &E11Report, profile: &str) -> f64 {
    let rows: Vec<&CommitRow> = report
        .commit
        .iter()
        .filter(|r| r.profile == profile)
        .collect();
    let base = rows
        .iter()
        .find(|r| r.group_commit == 1)
        .expect("B=1 baseline row");
    let best = rows
        .iter()
        .map(|r| r.records_per_sec)
        .fold(0.0_f64, f64::max);
    best / base.records_per_sec
}

/// Renders both tables.
pub fn render(report: &E11Report) -> String {
    let commit_rows: Vec<Vec<String>> = report
        .commit
        .iter()
        .map(|r| {
            vec![
                r.profile.to_string(),
                r.group_commit.to_string(),
                r.records.to_string(),
                r.syncs.to_string(),
                table::ms(r.device_time),
                format!("{:.0}", r.records_per_sec),
                format!("{:.1}", r.ack.p50().as_secs_f64() * 1e6),
                format!("{:.1}", r.ack.p99().as_secs_f64() * 1e6),
            ]
        })
        .collect();
    let mut out = table::render(
        "E11a - WAL group commit vs flush-per-record (virtual device time, equal durability)",
        &[
            "device",
            "batch",
            "records",
            "flushes",
            "elapsed(ms)",
            "settles/s",
            "ack p50(us)",
            "ack p99(us)",
        ],
        &commit_rows,
    );
    out.push('\n');
    let recovery_rows: Vec<Vec<String>> = report
        .recovery
        .iter()
        .map(|r| {
            vec![
                r.records.to_string(),
                if r.snapshot { "midpoint" } else { "-" }.to_string(),
                r.log_bytes.to_string(),
                r.replayed.to_string(),
                table::ms(r.recovery_time),
            ]
        })
        .collect();
    out.push_str(&table::render(
        "E11b - recovery time vs log length (ssd profile, cold replay)",
        &[
            "history",
            "snapshot",
            "log bytes",
            "replayed",
            "recovery(ms)",
        ],
        &recovery_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_commit_buys_at_least_3x_on_every_profile() {
        // The acceptance bar: at equal durability (every record covered
        // by a flush before ack), the best batch size sustains >= 3x the
        // flush-per-record settle throughput.
        let report = run(512, &[1, 4, 16, 64], &[]);
        for profile in ["nvme", "ssd", "hdd"] {
            let speedup = best_speedup(&report, profile);
            assert!(
                speedup >= 3.0,
                "{profile}: best batch only {speedup:.2}x over flush-per-record"
            );
        }
    }

    #[test]
    fn every_record_is_acked_exactly_once_and_after_a_flush() {
        let report = run(256, &[1, 16], &[]);
        for row in &report.commit {
            assert_eq!(row.ack.count() as usize, row.records, "{row:?}");
            // Flush-per-record issues one barrier per record; batching
            // divides it (plus the final catch-up sync).
            if row.group_commit == 1 {
                assert_eq!(row.syncs as usize, row.records);
            } else {
                assert_eq!(row.syncs as usize, row.records / row.group_commit);
            }
            // Ack latency is never below one barrier on this device.
            assert!(row.ack.p50() > Duration::ZERO);
        }
    }

    #[test]
    fn batching_trades_ack_latency_for_throughput() {
        // p99 ack latency grows with the batch (early records wait for
        // the barrier) while throughput rises — the classic trade.
        let report = run(256, &[1, 64], &[]);
        let ssd: Vec<&CommitRow> = report
            .commit
            .iter()
            .filter(|r| r.profile == "ssd")
            .collect();
        assert!(ssd[1].records_per_sec > ssd[0].records_per_sec);
        assert!(ssd[1].ack.p99() >= ssd[0].ack.p99());
    }

    #[test]
    fn recovery_time_grows_with_history_and_snapshots_cut_it() {
        let report = run(0, &[], &[256, 1024]);
        let full: Vec<&RecoveryRow> = report.recovery.iter().filter(|r| !r.snapshot).collect();
        let snap: Vec<&RecoveryRow> = report.recovery.iter().filter(|r| r.snapshot).collect();
        assert!(full[1].recovery_time > full[0].recovery_time);
        for (f, s) in full.iter().zip(&snap) {
            assert_eq!(f.records, s.records);
            // The snapshot truncated the first half of the log...
            assert!(s.log_bytes < f.log_bytes, "{s:?} vs {f:?}");
            // ...and every record of history is still accounted for,
            // through the snapshot or the replayed suffix.
            assert!(s.replayed < f.replayed);
            assert_eq!(f.replayed as usize, f.records);
        }
    }

    #[test]
    fn virtual_timelines_are_deterministic_across_runs() {
        let a = run(128, &[1, 16], &[128]);
        let b = run(128, &[1, 16], &[128]);
        for (x, y) in a.commit.iter().zip(&b.commit) {
            assert_eq!(x.device_time, y.device_time);
            assert_eq!(x.syncs, y.syncs);
        }
        for (x, y) in a.recovery.iter().zip(&b.recovery) {
            assert_eq!(x.recovery_time, y.recovery_time);
        }
        assert_eq!(render(&a), render(&b));
    }
}
