//! Differential test: the sharded `VerifierService` must be
//! verdict-for-verdict identical to the serial `Verifier` on seeded
//! random batches of genuine and corrupted evidence, for every shard ×
//! thread combination in {1,2,4} × {1,2,8} — and a nonce double-spend
//! submitted concurrently must settle exactly once.
//!
//! Run with `--nocapture` to see per-combination timing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::{Evidence, Transaction, TransactionRequest};
use utp::core::verifier::{Verifier, VerifyError};
use utp::crypto::rsa::RsaPublicKey;
use utp::platform::machine::{Machine, MachineConfig};
use utp::server::service::{ServiceConfig, VerifierService};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// One evidence batch plus everything a verifier needs to adjudicate it.
struct World {
    ca_key: RsaPublicKey,
    /// `(request, issue_time, registered)` — unregistered requests model
    /// evidence for nonces this provider never issued.
    requests: Vec<(TransactionRequest, Duration, bool)>,
    evidence: Vec<Evidence>,
    /// Single submission instant for the whole batch.
    submit_at: Duration,
}

/// Builds a seeded batch mixing genuine evidence with every corruption
/// class the verifier distinguishes: flipped quote signatures, mangled
/// certificates, mangled token bytes, human rejections, unissued nonces,
/// and expired nonces.
fn build_world(n: usize, seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let ca = PrivacyCa::new(512, seed.wrapping_add(1));
    let mut issuer = Verifier::new(ca.public_key().clone(), seed.wrapping_add(2));
    let mut machine = Machine::new(MachineConfig::fast_for_tests(seed.wrapping_add(3)));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);

    let t0 = machine.now();
    let mut requests = Vec::new();
    let mut evidence = Vec::new();
    for i in 0..n {
        let kind = rng.gen_range(0..7u32);
        let tx = Transaction::new(i as u64, "shop.example", 100 + i as u64, "EUR", "diff");
        // Kind 5 issues in the past so it is expired at submission time.
        let issued_at = if kind == 5 {
            t0
        } else {
            t0 + Duration::from_secs(200)
        };
        let request = issuer.issue_request(tx.clone(), issued_at);
        let approve = kind != 4;
        let intent = if approve {
            Intent::approving(&tx)
        } else {
            Intent::rejecting()
        };
        let mut human = ConfirmingHuman::new(intent, seed.wrapping_add(100 + i as u64));
        let mut ev = client
            .confirm(&mut machine, &request, &mut human)
            .expect("confirmation session runs");
        let registered = match kind {
            1 => {
                // Quote signature corrupted at a random byte.
                let pos = rng.gen_range(0..ev.quote.signature.len());
                ev.quote.signature[pos] ^= 1 << rng.gen_range(0..8u32);
                true
            }
            2 => {
                // Certificate corrupted at a random byte.
                let pos = rng.gen_range(0..ev.aik_cert.len());
                ev.aik_cert[pos] ^= 1 << rng.gen_range(0..8u32);
                true
            }
            3 => {
                // Token bytes corrupted (parse failure or binding break).
                let pos = rng.gen_range(0..ev.token_bytes.len());
                ev.token_bytes[pos] ^= 1 << rng.gen_range(0..8u32);
                true
            }
            6 => false, // evidence for a nonce this provider never issued
            _ => true,  // 0 genuine, 4 human-rejected, 5 expired
        };
        requests.push((request, issued_at, registered));
        evidence.push(ev);
    }
    World {
        ca_key: ca.public_key().clone(),
        requests,
        evidence,
        // 200s-issued nonces are 150s old (valid, TTL 300); t0-issued are
        // 350s old (expired).
        submit_at: t0 + Duration::from_secs(350),
    }
}

/// Compressed verdict for comparison: transaction id on success, the
/// typed error otherwise.
fn serial_verdicts(world: &World) -> Vec<Result<u64, VerifyError>> {
    let mut verifier = Verifier::new(world.ca_key.clone(), 9_999);
    for (request, issued_at, registered) in &world.requests {
        if *registered {
            verifier.import_request(request, *issued_at);
        }
    }
    world
        .evidence
        .iter()
        .map(|ev| {
            verifier
                .verify(ev, world.submit_at)
                .map(|v| v.transaction.id)
        })
        .collect()
}

fn service_verdicts(world: &World, threads: usize, shards: usize) -> Vec<Result<u64, VerifyError>> {
    let service = VerifierService::start(world.ca_key.clone(), ServiceConfig::new(threads, shards));
    for (request, issued_at, registered) in &world.requests {
        if *registered {
            service.register(request, *issued_at);
        }
    }
    service
        .verify_evidence_batch(world.evidence.clone(), world.submit_at)
        .into_iter()
        .map(|r| r.map(|v| v.transaction.id))
        .collect()
}

#[test]
fn service_matches_serial_verifier_on_mixed_batches() {
    for seed in [42u64, 1337] {
        let world = build_world(36, seed);
        let reference = serial_verdicts(&world);
        // The mix must actually exercise both paths.
        assert!(
            reference.iter().any(|r| r.is_ok()),
            "seed {seed}: no accepts"
        );
        assert!(
            reference.iter().any(|r| r.is_err()),
            "seed {seed}: no rejects"
        );
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let (verdicts, elapsed) =
                    utp::server::metrics::host_timed(|| service_verdicts(&world, threads, shards));
                println!(
                    "differential seed={seed} threads={threads} shards={shards}: \
                     {} verdicts in {:.1} ms",
                    verdicts.len(),
                    elapsed.as_secs_f64() * 1e3
                );
                assert_eq!(
                    verdicts, reference,
                    "seed {seed} threads {threads} shards {shards}"
                );
            }
        }
    }
}

#[test]
fn concurrent_duplicate_submission_settles_exactly_once() {
    let ca = PrivacyCa::new(512, 7_001);
    let mut issuer = Verifier::new(ca.public_key().clone(), 7_002);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(7_003));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let tx = Transaction::new(1, "shop", 500, "EUR", "dup");
    let request = issuer.issue_request(tx.clone(), machine.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 7_004);
    let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
    let now = machine.now();

    for (threads, shards) in [(2, 1), (8, 4)] {
        const COPIES: usize = 16;
        let service =
            VerifierService::start(ca.public_key().clone(), ServiceConfig::new(threads, shards));
        service.register(&request, now);
        // Submit the same evidence from many threads at once so several
        // workers race on the same shard's settle step.
        let verdicts: Vec<Result<u64, VerifyError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..COPIES)
                .map(|_| {
                    let service = &service;
                    let evidence = evidence.clone();
                    scope.spawn(move || match service.submit_evidence(evidence, now) {
                        Ok(ticket) => ticket.wait().map(|v| v.transaction.id),
                        Err(_) => Err(VerifyError::ServiceUnavailable),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("submitter thread"))
                .collect()
        });
        let accepted = verdicts.iter().filter(|v| v.is_ok()).count();
        let replayed = verdicts
            .iter()
            .filter(|v| **v == Err(VerifyError::Replayed))
            .count();
        assert_eq!(
            accepted, 1,
            "threads {threads} shards {shards}: {verdicts:?}"
        );
        assert_eq!(replayed, COPIES - 1, "threads {threads} shards {shards}");
        let stats = service.shutdown();
        assert_eq!(stats.totals().accepted, 1);
        assert_eq!(stats.totals().replayed, COPIES as u64 - 1);
    }
}
