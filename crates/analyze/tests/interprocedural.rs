//! Fixture-pinned tests for the interprocedural passes.
//!
//! Each fixture set under `tests/fixtures/` is fed to [`analyze_files`]
//! under *fake* workspace-relative paths (pass scoping and the call
//! graph's crate mapping key off the path, not the on-disk location),
//! and the resulting diagnostics are pinned exactly: file, line, lint
//! and the load-bearing part of the message.
//!
//! `golden_json_snapshot` additionally locks the full combined JSON
//! document (findings + TCB report) against `tests/fixtures/golden.json`
//! so any change to output shape, ordering or content is a conscious
//! diff. Regenerate with `UPDATE_GOLDEN=1 cargo test -p utp-analyze`.

use std::fs;
use std::path::PathBuf;

use utp_analyze::diag::{render_json, Severity};
use utp_analyze::{analyze_files, Analysis};

fn fixture(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs the analyzer over fixtures mapped to fake workspace paths.
fn analyze(map: &[(&str, &str)]) -> Analysis {
    analyze_files(
        map.iter()
            .map(|(fake, rel)| (fake.to_string(), fixture(rel)))
            .collect(),
    )
}

/// Asserts diagnostics match `(file, line, lint, message-substring)`
/// exactly, in order.
fn assert_diags(analysis: &Analysis, expected: &[(&str, u32, &str, &str)]) {
    let got: Vec<String> = analysis
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.lint, d.message))
        .collect();
    assert_eq!(
        analysis.diagnostics.len(),
        expected.len(),
        "diagnostic count mismatch:\n{}",
        got.join("\n")
    );
    for (d, (file, line, lint, needle)) in analysis.diagnostics.iter().zip(expected) {
        assert_eq!(d.file, *file, "wrong file:\n{}", got.join("\n"));
        assert_eq!(d.line, *line, "wrong line:\n{}", got.join("\n"));
        assert_eq!(d.lint, *lint, "wrong lint:\n{}", got.join("\n"));
        assert_eq!(d.severity, Severity::Deny);
        assert!(
            d.message.contains(needle),
            "message `{}` does not contain `{}`",
            d.message,
            needle
        );
    }
}

#[test]
fn tcb_reachability_flags_undeclared_reachable_code() {
    let analysis = analyze(&[
        ("crates/core/src/pal.rs", "reach/pal.rs"),
        ("crates/core/src/rogue.rs", "reach/rogue.rs"),
    ]);
    assert_diags(
        &analysis,
        &[(
            "crates/core/src/rogue.rs",
            4,
            "tcb-reachability",
            "`rogue_helper` is reachable from the TCB (chain: invoke_confirmation -> rogue_helper)",
        )],
    );
    // The measured report sees the entry point and the spill.
    assert_eq!(analysis.tcb_report.entry_points, 1);
    assert_eq!(analysis.tcb_report.undeclared_reachable, 1);
}

#[test]
fn tcb_reachability_trace_gate_denies_pal_reachable_tracing() {
    let analysis = analyze(&[
        ("crates/tpm/src/quote_path.rs", "reach/trace_pal.rs"),
        ("crates/trace/src/lib.rs", "reach/trace_crate.rs"),
    ]);
    // Both layers fire: the import itself breaks the TCB boundary, and
    // the reachable recorder function trips the explicit trace gate.
    assert_diags(
        &analysis,
        &[
            (
                "crates/tpm/src/quote_path.rs",
                5,
                "tcb-boundary",
                "TCB file imports `utp_trace`, which is not on the TCB import allowlist",
            ),
            (
                "crates/trace/src/lib.rs",
                5,
                "tcb-reachability",
                "`span_volatile` in the flight recorder is reachable from the TCB \
                 (chain: attest_with_tracing -> span_volatile)",
            ),
        ],
    );
}

#[test]
fn tcb_reachability_journal_gate_denies_pal_reachable_durability() {
    let analysis = analyze(&[
        ("crates/tpm/src/persist.rs", "reach/journal_pal.rs"),
        ("crates/journal/src/lib.rs", "reach/journal_crate.rs"),
    ]);
    // Both layers fire: the import breaks the TCB boundary, and the
    // reachable journal function trips the explicit journal gate — the
    // TCB must never depend on disk.
    assert_diags(
        &analysis,
        &[
            (
                "crates/journal/src/lib.rs",
                5,
                "tcb-reachability",
                "`append_record` in the settlement journal is reachable from the TCB \
                 (chain: quote_then_persist -> append_record)",
            ),
            (
                "crates/tpm/src/persist.rs",
                5,
                "tcb-boundary",
                "TCB file imports `utp_journal`, which is outside the trusted computing base",
            ),
        ],
    );
}

#[test]
fn no_panic_transitive_follows_the_call_chain_out_of_the_tcb() {
    let analysis = analyze(&[
        ("crates/flicker/src/pal.rs", "panic/pal.rs"),
        ("crates/flicker/src/helper.rs", "panic/helper.rs"),
    ]);
    assert_diags(
        &analysis,
        &[(
            "crates/flicker/src/helper.rs",
            6,
            "no-panic-transitive",
            "`.expect()` in `helper_parse` is reachable from the TCB (chain: invoke -> helper_parse)",
        )],
    );
}

#[test]
fn secret_taint_flags_debug_derive_and_print_sink() {
    let analysis = analyze(&[("crates/tpm/src/leaky.rs", "taint/leaky.rs")]);
    assert_diags(
        &analysis,
        &[
            (
                "crates/tpm/src/leaky.rs",
                4,
                "secret-taint",
                "derive(Debug) on `LeakySlot` formats secret field(s) `session_key`",
            ),
            (
                "crates/tpm/src/leaky.rs",
                10,
                "secret-taint",
                "`session_key`",
            ),
        ],
    );
}

#[test]
fn secret_taint_flags_trace_sink_but_skips_key_name_paths() {
    let analysis = analyze(&[("crates/tpm/src/trace_leak.rs", "taint/trace_leak.rs")]);
    // Exactly one finding: `session_key` in the value position. The
    // `keys::OP` path segment does not trip the scan.
    assert_diags(
        &analysis,
        &[(
            "crates/tpm/src/trace_leak.rs",
            6,
            "secret-taint",
            "secret `session_key` flows into trace sink `span` in `record_unseal`",
        )],
    );
}

#[test]
fn secret_taint_flags_journal_sink_outside_key_crates() {
    let analysis = analyze(&[("crates/server/src/journal_leak.rs", "taint/journal_leak.rs")]);
    // Two findings on the append: `session_key` in the value position
    // (the `JournalRecord::` path segment does not trip the scan, and
    // the rule fires even though `crates/server` is outside the key
    // crates), and — since PR 8 — the unauthorized `Settle` journal
    // write itself (no verify/binding source on the path, no callers).
    assert_diags(
        &analysis,
        &[
            (
                "crates/server/src/journal_leak.rs",
                8,
                "authorization-flow",
                "journaling a `Settle` decision in `persist_session` is not dominated",
            ),
            (
                "crates/server/src/journal_leak.rs",
                8,
                "secret-taint",
                "secret `session_key` flows into journal sink `append_record` in `persist_session`",
            ),
        ],
    );
}

#[test]
fn secret_taint_flags_obs_sinks_outside_key_crates() {
    let analysis = analyze(&[("crates/server/src/obs_leak.rs", "taint/obs_leak.rs")]);
    // Two findings: `session_key` as a label value in the registry
    // registration and as the metric value of an artifact push. The
    // `names::`-qualified path segment does not trip the scan, and the
    // rule fires even though `crates/server` is outside the key crates.
    assert_diags(
        &analysis,
        &[
            (
                "crates/server/src/obs_leak.rs",
                9,
                "secret-taint",
                "secret `session_key` flows into metrics sink `counter` in `export_session`",
            ),
            (
                "crates/server/src/obs_leak.rs",
                13,
                "secret-taint",
                "secret `session_key` flows into metrics sink `push_u64` in `push_session`",
            ),
        ],
    );
}

#[test]
fn secret_taint_flags_fleet_report_sinks() {
    let analysis = analyze(&[("crates/bench/src/fleet_leak.rs", "taint/fleet_leak.rs")]);
    // Two findings: `session_key` as a scenario run tag and as a
    // fleet-report annotation value — both are folded into the report
    // digest and the E13 artifacts. The `labels::`-qualified path
    // segment does not trip the scan, and the rule fires even though
    // `crates/bench` is outside the key crates.
    assert_diags(
        &analysis,
        &[
            (
                "crates/bench/src/fleet_leak.rs",
                9,
                "secret-taint",
                "secret `session_key` flows into fleet-report sink `tag_run` in `tag_fleet_run`",
            ),
            (
                "crates/bench/src/fleet_leak.rs",
                13,
                "secret-taint",
                "secret `session_key` flows into fleet-report sink `annotate` in `annotate_report`",
            ),
        ],
    );
}

#[test]
fn tcb_boundary_denies_netsim_import() {
    let analysis = analyze(&[("crates/tpm/src/sim_hook.rs", "reach/netsim_pal.rs")]);
    // The fleet simulator is on the forbidden-crates list: a TCB file
    // importing it is denied at the boundary, before reachability even
    // runs.
    assert_diags(
        &analysis,
        &[(
            "crates/tpm/src/sim_hook.rs",
            6,
            "tcb-boundary",
            "TCB file imports `utp_netsim`, which is outside the trusted computing base",
        )],
    );
}

/// Flow-sensitive taint cases: a reassignment into a neutral-named
/// buffer taints it (the old let-only scan missed this), a zeroized
/// secret-named local is clean afterwards (the old name heuristic
/// flagged it), and return taint propagates through a neutral-named
/// fn into its caller's binding.
#[test]
fn secret_taint_flow_tracks_reassignment_zeroize_and_return_taint() {
    let analysis = analyze(&[("crates/tpm/src/flow_leak.rs", "taint/flow_leak.rs")]);
    assert_diags(
        &analysis,
        &[
            (
                "crates/tpm/src/flow_leak.rs",
                10,
                "secret-taint",
                "secret `buf` flows into `println!` in `reassign_then_print`",
            ),
            (
                "crates/tpm/src/flow_leak.rs",
                25,
                "secret-taint",
                "secret `sub` flows into `println!` in `log_derived`",
            ),
        ],
    );
}

#[test]
fn lock_discipline_flags_blocking_cycle_and_reentrancy() {
    let analysis = analyze(&[("crates/server/src/svc.rs", "locks/svc.rs")]);
    assert_diags(
        &analysis,
        &[
            (
                "crates/server/src/svc.rs",
                6,
                "lock-discipline",
                "guard `a` is held across blocking `.recv()` in `forward`",
            ),
            (
                "crates/server/src/svc.rs",
                12,
                "lock-discipline",
                "lock-order cycle: `a` -> `b`",
            ),
            (
                "crates/server/src/svc.rs",
                18,
                "lock-discipline",
                "lock-order cycle: `b` -> `a`",
            ),
            (
                "crates/server/src/svc.rs",
                24,
                "lock-discipline",
                "`double` re-acquires lock `a` while its guard is still held",
            ),
        ],
    );
}

/// Flow-sensitive lockset cases: path-sensitive holds are caught, and
/// the two shapes the old extent scan mis-handled — a guard moved into
/// a call before blocking, and a `.lock().method(..)` chained call
/// aliasing a locking workspace fn by name — stay clean.
#[test]
fn lock_discipline_flow_kills_paths_and_stale_reads() {
    let analysis = analyze(&[("crates/server/src/flow_svc.rs", "locks/flow_svc.rs")]);
    assert_diags(
        &analysis,
        &[
            (
                "crates/server/src/flow_svc.rs",
                13,
                "lock-discipline",
                "guard `a` is held across blocking `.recv()` in `branchy`",
            ),
            (
                "crates/server/src/flow_svc.rs",
                28,
                "lock-discipline",
                "`head` was read under an earlier `a` guard and reused after that guard was released",
            ),
        ],
    );
}

/// All fixture sets combined into one workspace: locks the entire JSON
/// document (findings + TCB report) byte-for-byte, which also pins the
/// deterministic (file, line, lint) sort order.
#[test]
fn golden_json_snapshot() {
    let analysis = analyze(&[
        ("crates/core/src/pal.rs", "reach/pal.rs"),
        ("crates/core/src/rogue.rs", "reach/rogue.rs"),
        ("crates/tpm/src/quote_path.rs", "reach/trace_pal.rs"),
        ("crates/trace/src/lib.rs", "reach/trace_crate.rs"),
        ("crates/tpm/src/persist.rs", "reach/journal_pal.rs"),
        ("crates/journal/src/lib.rs", "reach/journal_crate.rs"),
        ("crates/flicker/src/pal.rs", "panic/pal.rs"),
        ("crates/flicker/src/helper.rs", "panic/helper.rs"),
        ("crates/tpm/src/leaky.rs", "taint/leaky.rs"),
        ("crates/tpm/src/trace_leak.rs", "taint/trace_leak.rs"),
        ("crates/server/src/journal_leak.rs", "taint/journal_leak.rs"),
        ("crates/server/src/obs_leak.rs", "taint/obs_leak.rs"),
        ("crates/server/src/svc.rs", "locks/svc.rs"),
    ]);
    let findings = render_json(&analysis.diagnostics);
    let findings = findings.trim_end().trim_end_matches('}');
    let tcb = analysis.tcb_report.to_json();
    let tcb = tcb
        .trim_start()
        .trim_start_matches('{')
        .trim_end()
        .trim_end_matches('}');
    let document = format!("{findings},{tcb}}}\n");

    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&golden_path, &document).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&golden_path).expect(
        "tests/fixtures/golden.json missing; regenerate with \
         UPDATE_GOLDEN=1 cargo test -p utp-analyze",
    );
    assert_eq!(
        document, golden,
        "analyzer JSON output diverged from the golden snapshot; if the \
         change is intentional regenerate with UPDATE_GOLDEN=1"
    );
}

/// Two runs over identical input produce identical output (determinism
/// satellite: no HashMap iteration order leaks into diagnostics or the
/// report).
#[test]
fn output_is_deterministic_across_runs() {
    let map = [
        ("crates/core/src/pal.rs", "reach/pal.rs"),
        ("crates/core/src/rogue.rs", "reach/rogue.rs"),
        ("crates/tpm/src/leaky.rs", "taint/leaky.rs"),
        ("crates/server/src/svc.rs", "locks/svc.rs"),
    ];
    let a = analyze(&map);
    let b = analyze(&map);
    assert_eq!(render_json(&a.diagnostics), render_json(&b.diagnostics));
    assert_eq!(a.tcb_report.to_json(), b.tcb_report.to_json());
}
