//! The human operator for confirmation sessions.
//!
//! Bridges the platform's [`HumanModel`] (reading/typing speed, typos) to
//! the PAL's screen: the simulated human reads the transaction the PAL
//! actually displays, compares it with what they *intended* (the defense
//! the uni-directional path relies on — there is no trusted display, the
//! human is the output verifier), and then confirms or rejects.

use crate::pal::CODE_MARKER;
use crate::protocol::{Transaction, CODE_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use utp_flicker::pal::{Operator, OperatorResponse};
use utp_platform::human::{HumanConfig, HumanModel};
use utp_platform::keyboard::KeyEvent;

/// What the human believes they are approving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Intent {
    /// Expected payee substring.
    pub payee: String,
    /// Expected rendered amount (e.g. `42.00 EUR`).
    pub amount: String,
    /// Whether the human wants to approve at all.
    pub approve: bool,
}

impl Intent {
    /// Intent matching a transaction the human initiated.
    pub fn approving(tx: &Transaction) -> Self {
        Intent {
            payee: tx.payee.clone(),
            amount: tx.display_amount(),
            approve: true,
        }
    }

    /// The human did not initiate anything and will reject any prompt —
    /// the situation when malware triggers a confirmation out of the blue.
    pub fn rejecting() -> Self {
        Intent {
            payee: String::new(),
            amount: String::new(),
            approve: false,
        }
    }
}

/// A simulated human confirming (or rejecting) transactions at the PAL
/// screen.
#[derive(Debug, Clone)]
pub struct ConfirmingHuman {
    model: HumanModel,
    intent: Intent,
    /// Probability the human actually checks payee/amount before
    /// confirming (1.0 = always vigilant; the paper's security argument
    /// assumes the human reads what the PAL shows).
    vigilance: f64,
    rng: StdRng,
    /// Statistics: prompts answered.
    pub prompts_seen: usize,
}

impl ConfirmingHuman {
    /// A fully vigilant human with default speed parameters.
    pub fn new(intent: Intent, seed: u64) -> Self {
        Self::with_vigilance(intent, 1.0, seed)
    }

    /// A human who checks the screen with the given probability.
    pub fn with_vigilance(intent: Intent, vigilance: f64, seed: u64) -> Self {
        Self::with_config(intent, vigilance, HumanConfig::default(), seed)
    }

    /// Full control over the human parameters.
    pub fn with_config(intent: Intent, vigilance: f64, config: HumanConfig, seed: u64) -> Self {
        ConfirmingHuman {
            model: HumanModel::with_config(config, seed),
            intent,
            vigilance,
            rng: StdRng::seed_from_u64(seed ^ 0x4f50u64),
            prompts_seen: 0,
        }
    }

    fn screen_matches_intent(&self, screen: &[String]) -> bool {
        let payee_ok =
            !self.intent.payee.is_empty() && screen.iter().any(|r| r.contains(&self.intent.payee));
        let amount_ok = !self.intent.amount.is_empty()
            && screen.iter().any(|r| r.contains(&self.intent.amount));
        payee_ok && amount_ok
    }

    fn extract_code(screen: &[String]) -> Option<String> {
        let line = screen.iter().find(|r| r.contains(CODE_MARKER))?;
        let idx = line.find(CODE_MARKER)? + CODE_MARKER.len();
        let code: String = line[idx..].chars().take(CODE_LEN).collect();
        if code.len() == CODE_LEN && code.chars().all(|c| c.is_ascii_digit()) {
            Some(code)
        } else {
            None
        }
    }

    fn reject(&mut self, reading: Duration) -> OperatorResponse {
        let (key, delay) = self.model.press(KeyEvent::Escape);
        OperatorResponse {
            events: vec![key],
            elapsed: reading + delay,
        }
    }
}

impl Operator for ConfirmingHuman {
    fn respond(&mut self, screen: &[String]) -> OperatorResponse {
        self.prompts_seen += 1;
        let screen_text: String = screen.join("\n");
        let reading = self.model.reading_time(screen_text.trim());

        if !self.intent.approve {
            return self.reject(reading);
        }
        // The crucial human check: does the PAL's screen show what I meant
        // to pay? (Skipped by inattentive humans with prob 1 - vigilance.)
        let checks = self.rng.gen::<f64>() < self.vigilance;
        if checks && !self.screen_matches_intent(screen) {
            return self.reject(reading);
        }
        match Self::extract_code(screen) {
            Some(code) => {
                let typed = self.model.type_string(&code);
                OperatorResponse {
                    events: typed.events,
                    elapsed: reading + typed.elapsed,
                }
            }
            None => {
                // Press-Enter mode.
                let (key, delay) = self.model.press(KeyEvent::Enter);
                OperatorResponse {
                    events: vec![key],
                    elapsed: reading + delay,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx() -> Transaction {
        Transaction::new(1, "shop.example", 4_200, "EUR", "order")
    }

    fn screen_for(tx: &Transaction, code: Option<&str>) -> Vec<String> {
        let mut s = vec![
            "=== TRUSTED TRANSACTION CONFIRMATION ===".to_string(),
            String::new(),
            format!("Pay to : {}", tx.payee),
            format!("Amount : {}", tx.display_amount()),
            "Memo   : order".to_string(),
            String::new(),
        ];
        match code {
            Some(c) => s.push(format!("To {}{} then press ENTER.", CODE_MARKER, c)),
            None => s.push("Press ENTER to approve this transaction.".to_string()),
        }
        s
    }

    #[test]
    fn approves_matching_transaction_with_enter() {
        let t = tx();
        let mut h = ConfirmingHuman::new(Intent::approving(&t), 1);
        let r = h.respond(&screen_for(&t, None));
        assert_eq!(r.events, vec![KeyEvent::Enter]);
        assert!(r.elapsed >= Duration::from_millis(500));
    }

    #[test]
    fn types_displayed_code_when_asked() {
        let t = tx();
        // Perfect typist for determinism.
        let cfg = HumanConfig {
            error_rate: 0.0,
            ..HumanConfig::default()
        };
        let mut h = ConfirmingHuman::with_config(Intent::approving(&t), 1.0, cfg, 2);
        let r = h.respond(&screen_for(&t, Some("483920")));
        let typed: String = r.events.iter().filter_map(|e| e.as_char()).collect();
        assert_eq!(typed, "483920");
        assert_eq!(*r.events.last().unwrap(), KeyEvent::Enter);
    }

    #[test]
    fn vigilant_human_rejects_tampered_payee() {
        let intended = tx();
        let mut tampered = tx();
        tampered.payee = "attacker.example".into();
        let mut h = ConfirmingHuman::new(Intent::approving(&intended), 3);
        let r = h.respond(&screen_for(&tampered, None));
        assert_eq!(r.events, vec![KeyEvent::Escape]);
    }

    #[test]
    fn vigilant_human_rejects_tampered_amount() {
        let intended = tx();
        let mut tampered = tx();
        tampered.amount_cents = 999_900;
        let mut h = ConfirmingHuman::new(Intent::approving(&intended), 4);
        let r = h.respond(&screen_for(&tampered, None));
        assert_eq!(r.events, vec![KeyEvent::Escape]);
    }

    #[test]
    fn careless_human_sometimes_approves_tampered_transaction() {
        let intended = tx();
        let mut tampered = tx();
        tampered.payee = "attacker.example".into();
        let mut approved = 0;
        for seed in 0..200 {
            let mut h = ConfirmingHuman::with_vigilance(Intent::approving(&intended), 0.5, seed);
            let r = h.respond(&screen_for(&tampered, None));
            if r.events == vec![KeyEvent::Enter] {
                approved += 1;
            }
        }
        // Roughly half slip through at vigilance 0.5.
        assert!(approved > 50 && approved < 150, "approved {}", approved);
    }

    #[test]
    fn uninvolved_human_rejects_everything() {
        let t = tx();
        let mut h = ConfirmingHuman::new(Intent::rejecting(), 5);
        let r = h.respond(&screen_for(&t, None));
        assert_eq!(r.events, vec![KeyEvent::Escape]);
        let r = h.respond(&screen_for(&t, Some("111111")));
        assert_eq!(r.events, vec![KeyEvent::Escape]);
    }

    #[test]
    fn code_extraction_handles_absence_and_garbage() {
        assert_eq!(ConfirmingHuman::extract_code(&[]), None);
        assert_eq!(
            ConfirmingHuman::extract_code(&[format!("To {}12ab56 x", CODE_MARKER)]),
            None
        );
        assert_eq!(
            ConfirmingHuman::extract_code(&[format!("To {}123456 then", CODE_MARKER)]),
            Some("123456".into())
        );
    }
}
