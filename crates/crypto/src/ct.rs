//! Constant-time helpers for verifier code paths.

/// Compares two byte slices in time dependent only on the lengths.
///
/// Returns `false` immediately if lengths differ (length is not secret in
/// any UTP protocol message), otherwise accumulates a XOR difference over
/// every byte before deciding.
///
/// # Example
///
/// ```
/// use utp_crypto::ct::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"ab"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Constant-time conditional select: returns `a` if `choice` else `b`.
#[must_use]
pub fn ct_select(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (a & mask) | (b & !mask)
}

/// Best-effort secure wipe: overwrites `buf` with zeros and pins the
/// stores behind a compiler fence so they are not elided as dead
/// writes to a buffer about to go out of scope. Key-derived scratch
/// (padded HMAC key blocks, unsealed payload staging) must be wiped
/// before it leaves scope; this is also the taint kill recognized by
/// the `secret-taint` static analysis.
///
/// # Example
///
/// ```
/// use utp_crypto::ct::zeroize;
/// let mut key_block = [0xAAu8; 4];
/// zeroize(&mut key_block);
/// assert_eq!(key_block, [0u8; 4]);
/// ```
pub fn zeroize(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
    core::sync::atomic::compiler_fence(core::sync::atomic::Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_on_equal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn neq_on_single_bit_difference() {
        for i in 0..8 {
            let a = [0u8; 4];
            let mut b = [0u8; 4];
            b[2] = 1 << i;
            assert!(!ct_eq(&a, &b));
        }
    }

    #[test]
    fn neq_on_length_mismatch() {
        assert!(!ct_eq(b"a", b"ab"));
    }

    #[test]
    fn select_behaves() {
        assert_eq!(ct_select(true, 0xAA, 0x55), 0xAA);
        assert_eq!(ct_select(false, 0xAA, 0x55), 0x55);
    }

    #[test]
    fn zeroize_clears_every_byte() {
        let mut buf = [0xFFu8; 64];
        zeroize(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        let mut empty: [u8; 0] = [];
        zeroize(&mut empty);
    }
}
