//! A software TPM 1.2 for the uni-directional trusted path reproduction.
//!
//! The original paper runs on physical TPM 1.2 chips. This crate replaces
//! them with a functional software model plus a calibrated latency model:
//!
//! * **Functional, not mocked**: PCR extend/reset semantics, locality
//!   enforcement, DRTM (`TPM_HASH_START..END`) PCR-17 behaviour, real
//!   RSA-signed quotes ([`quote`]), PCR-bound sealed storage ([`seal`]),
//!   monotonic counters ([`counter`]), NV storage ([`nvram`]) and a
//!   byte-level TPM 1.2 command interface ([`command`]).
//! * **Timed**: every command reports the wall-clock cost a given vendor's
//!   chip would incur ([`timing`]), calibrated to the Flicker-era published
//!   microbenchmarks, so the paper's latency tables can be regenerated.
//!
//! The entry point is [`Tpm`].
//!
//! # Example
//!
//! ```
//! use utp_tpm::{Tpm, TpmConfig};
//! use utp_tpm::pcr::PcrIndex;
//! use utp_tpm::locality::Locality;
//!
//! let mut tpm = Tpm::new(TpmConfig::fast_for_tests(1));
//! tpm.startup_clear();
//! // Static PCRs start at zero and extend normally from locality 0.
//! let pcr0 = PcrIndex::new(0).unwrap();
//! tpm.extend(Locality::Zero, pcr0, &[0xAB; 20]).unwrap();
//! assert_ne!(tpm.pcr_read(pcr0).unwrap(), utp_crypto::sha1::Sha1Digest::zero());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod command;
pub mod counter;
pub mod device;
pub mod error;
pub mod keys;
pub mod locality;
pub mod nvram;
pub mod pcr;
pub mod quote;
pub mod seal;
pub mod timing;
pub mod wrapped;

pub use device::{Tpm, TpmConfig, TpmOpRecord};
pub use error::TpmError;
pub use timing::VendorProfile;
