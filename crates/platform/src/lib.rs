//! Simulated DRTM-capable machine for the uni-directional trusted path.
//!
//! The paper runs on an AMD laptop with `SKINIT`, a TPM 1.2 on the LPC bus,
//! a PS/2 keyboard and a VGA console, operated by a human. This crate
//! models all of it:
//!
//! * [`clock`] — a virtual clock; all experiment latencies are computed in
//!   virtual time so results are deterministic and hardware costs come from
//!   the calibrated models instead of the host CPU.
//! * [`keyboard`] / [`display`] — devices with an *ownership bit*: during a
//!   secure session the PAL owns them and software-injected input is
//!   rejected, which is exactly the isolation property SKINIT's DMA/
//!   interrupt protection provides.
//! * [`machine`] — the composition: an untrusted OS interface (TPM at
//!   locality 0, device access, ability to run malware) plus the
//!   [`machine::Machine::skinit`] late-launch path that is the only way to
//!   reach TPM locality 4.
//! * [`human`] — a seedable human operator model (reading speed, typing
//!   speed, error rates) so user-facing timings are reproducible.
//!
//! # Example
//!
//! ```
//! use utp_platform::machine::{Machine, MachineConfig};
//!
//! let mut m = Machine::new(MachineConfig::fast_for_tests(1));
//! // The only way to a measured launch is skinit(); the session exposes
//! // the SLB measurement the TPM recorded in PCR 17.
//! let session = m.skinit(b"pal code").unwrap();
//! assert_eq!(session.measurement(), utp_crypto::sha1::Sha1::digest(b"pal code"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootlog;
pub mod clock;
pub mod display;
pub mod error;
pub mod human;
pub mod keyboard;
pub mod machine;
pub mod scancode;

pub use clock::SimClock;
pub use error::PlatformError;
pub use machine::{Machine, MachineConfig};
