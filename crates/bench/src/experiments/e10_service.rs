//! E10 — persistent `VerifierService` throughput vs. the one-shot batch
//! pipeline, across shard counts, with cert-cache hit rate.
//!
//! Host-measured like E4: the RSA verifies are our actual code. The
//! legacy baseline (`verify_batch_parallel`) runs with the certificate
//! cache disabled — its historical cost model revalidated the AIK
//! certificate on every job — so the service rows isolate what sharding
//! plus caching buy at equal thread count.
//!
//! Each service run carries a `utp-trace` flight recorder: workers emit
//! volatile `svc.job` records (queue wait + verify CPU per job), the
//! submitter emits deterministic `svc.submit` events, and the row's
//! latency distributions are log-scale histograms folded straight from
//! those records. The canonical export (submitter side only) is
//! byte-identical across identical runs.
//!
//! Regenerate: `cargo run -p utp-bench --bin e10_service`

use crate::experiments::e4_server_throughput::{self as e4, ThroughputRow};
use crate::table;
use std::sync::Arc;
use std::time::{Duration, Instant};
use utp_server::metrics::{throughput, ServiceStats};
use utp_server::pipeline::verify_batch_parallel;
use utp_server::service::{ServiceConfig, SubmitError, VerifierService};
use utp_trace::{keys, names, Export, LatencyHistogram, Recorder, Value};

/// One (threads × shards) service measurement.
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Worker threads.
    pub threads: usize,
    /// Nonce-settlement shards.
    pub shards: usize,
    /// Evidence submissions verified (all settling).
    pub jobs: usize,
    /// Wall-clock elapsed.
    pub elapsed: Duration,
    /// Settled verifications per second.
    pub ops_per_sec: f64,
    /// Fraction of AIK lookups served from the cert cache.
    pub cache_hit_rate: f64,
    /// Host-measured enqueue-to-dequeue wait, from `svc.job` records.
    pub wait: LatencyHistogram,
    /// Host-measured verification CPU, from `svc.job` records.
    pub verify: LatencyHistogram,
    /// Full shutdown snapshot: per-shard settlement, per-worker
    /// utilization, cache and overload counters, drain time.
    pub stats: ServiceStats,
}

/// The overload scenario: a one-deep queue fed through the
/// non-blocking submit path, so backpressure actually sheds.
#[derive(Debug, Clone)]
pub struct OverloadRow {
    /// Evidence items eventually accepted into the queue.
    pub submitted: usize,
    /// Submissions bounced with `QueueFull` before acceptance
    /// (host-scheduling dependent).
    pub sheds: u64,
    /// Shutdown snapshot of the overloaded service.
    pub stats: ServiceStats,
}

/// The experiment output: legacy baseline rows plus service rows.
#[derive(Debug, Clone)]
pub struct E10Report {
    /// `verify_batch_parallel` at each thread count (cache disabled).
    pub legacy: Vec<ThroughputRow>,
    /// `VerifierService` at each thread × shard combination.
    pub service: Vec<ServiceRow>,
    /// The deliberately overloaded run (queue depth 1, single worker).
    pub overload: OverloadRow,
    /// Concatenated canonical JSONL exports (one block per service
    /// combination) — deterministic across identical runs.
    pub canonical_trace: String,
}

/// Folds the per-job host measurements out of a recording.
fn job_histograms(recorder: &Recorder) -> (LatencyHistogram, LatencyHistogram) {
    let mut wait = LatencyHistogram::new();
    let mut verify = LatencyHistogram::new();
    for rec in recorder.records() {
        if rec.name != names::SVC_JOB {
            continue;
        }
        for (k, v) in &rec.fields {
            if let Value::HostNs(ns) = v {
                match *k {
                    keys::WAIT_HOST => wait.record_ns(*ns),
                    keys::VERIFY_HOST => verify.record_ns(*ns),
                    _ => {}
                }
            }
        }
    }
    (wait, verify)
}

/// Runs the comparison. Nonces are consumed by settlement, so each
/// service row gets a fresh service with the same requests re-registered.
pub fn run(
    jobs_n: usize,
    key_bits: usize,
    thread_counts: &[usize],
    shard_counts: &[usize],
) -> E10Report {
    let world = e4::build_world(jobs_n, key_bits);
    let legacy = thread_counts
        .iter()
        .map(|&threads| {
            let start = Instant::now();
            let results = verify_batch_parallel(&world.ca_key, &world.pals, &world.jobs, threads);
            let elapsed = start.elapsed();
            assert!(results.iter().all(|r| r.is_ok()), "all jobs genuine");
            ThroughputRow {
                threads,
                jobs: world.jobs.len(),
                elapsed,
                ops_per_sec: throughput(world.jobs.len(), elapsed),
            }
        })
        .collect();
    let mut service_rows = Vec::new();
    let mut canonical_trace = String::new();
    for &threads in thread_counts {
        for &shards in shard_counts {
            let recorder = Arc::new(Recorder::new());
            let mut config = ServiceConfig::new(threads, shards);
            config.trusted_pals = world.pals.clone();
            config.recorder = Some(Arc::clone(&recorder));
            let service = VerifierService::start(world.ca_key.clone(), config);
            for request in &world.requests {
                service.register(request, world.now);
            }
            let start = Instant::now();
            let verdicts = {
                let _sink = recorder.install("submit");
                service.verify_evidence_batch(world.evidence.clone(), world.now)
            };
            let elapsed = start.elapsed();
            assert!(verdicts.iter().all(|v| v.is_ok()), "all evidence genuine");
            let stats = service.shutdown();
            assert_eq!(stats.totals().accepted as usize, world.evidence.len());
            let (wait, verify) = job_histograms(&recorder);
            canonical_trace.push_str(&recorder.export_jsonl(Export::Canonical));
            service_rows.push(ServiceRow {
                threads,
                shards,
                jobs: world.evidence.len(),
                elapsed,
                ops_per_sec: throughput(world.evidence.len(), elapsed),
                cache_hit_rate: stats.cert_cache_hit_rate(),
                wait,
                verify,
                stats,
            });
        }
    }
    let overload = run_overload(&world);
    E10Report {
        legacy,
        service: service_rows,
        overload,
        canonical_trace,
    }
}

/// Drives the whole workload through a queue of depth 1 on one worker
/// via the non-blocking submit path, retrying each `QueueFull` bounce
/// until the item lands. Every bounce increments the service's shed
/// counter; the watermark and drain time come from the same snapshot.
fn run_overload(world: &e4::ServerWorld) -> OverloadRow {
    let mut config = ServiceConfig::new(1, 1);
    config.trusted_pals = world.pals.clone();
    config.queue_depth = 1;
    let service = VerifierService::start(world.ca_key.clone(), config);
    for request in &world.requests {
        service.register(request, world.now);
    }
    let mut tickets = Vec::with_capacity(world.evidence.len());
    let mut sheds = 0u64;
    for evidence in &world.evidence {
        loop {
            match service.try_submit_evidence(evidence.clone(), world.now) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(SubmitError::QueueFull | SubmitError::Overloaded { .. }) => {
                    sheds += 1;
                    std::thread::yield_now();
                }
                Err(SubmitError::ShutDown) => unreachable!("service is alive"),
            }
        }
    }
    let submitted = tickets.len();
    assert!(
        tickets.into_iter().all(|t| t.wait().is_ok()),
        "all evidence genuine"
    );
    let stats = service.shutdown();
    assert_eq!(stats.jobs_shed, sheds, "shed counter matches bounces");
    OverloadRow {
        submitted,
        sheds,
        stats,
    }
}

/// Flattens the report into its perf artifact pair. Job and per-shard
/// settlement counts are fixed by the deterministic workload
/// (canonical); elapsed times, throughput, cache hit rate, the
/// wait/verify distributions, per-worker utilization, and the overload
/// counters all depend on host scheduling (host class).
pub fn artifacts(report: &E10Report, config: &str) -> utp_obs::ArtifactPair {
    let mut pair = utp_obs::ArtifactPair::new("E10", config);
    for r in &report.legacy {
        let threads = r.threads.to_string();
        let labels: &[(&str, &str)] = &[("pipeline", "batch"), ("threads", &threads)];
        pair.canonical.push_u64("e10.jobs", labels, r.jobs as u64);
        pair.host
            .push_u64("e10.elapsed_ns", labels, r.elapsed.as_nanos() as u64);
        pair.host.push_f64("e10.ops_per_sec", labels, r.ops_per_sec);
    }
    for r in &report.service {
        let threads = r.threads.to_string();
        let shards = r.shards.to_string();
        let labels: &[(&str, &str)] = &[
            ("pipeline", "service"),
            ("threads", &threads),
            ("shards", &shards),
        ];
        pair.canonical.push_u64("e10.jobs", labels, r.jobs as u64);
        pair.canonical
            .push_u64("e10.accepted", labels, r.stats.totals().accepted);
        for (i, shard) in r.stats.shards.iter().enumerate() {
            let idx = i.to_string();
            pair.canonical.push_u64(
                "e10.shard_accepted",
                &[
                    ("pipeline", "service"),
                    ("threads", &threads),
                    ("shards", &shards),
                    ("shard", &idx),
                ],
                shard.accepted,
            );
        }
        for (i, jobs) in r.stats.worker_jobs.iter().enumerate() {
            let idx = i.to_string();
            pair.host.push_u64(
                "e10.worker_jobs",
                &[
                    ("pipeline", "service"),
                    ("threads", &threads),
                    ("shards", &shards),
                    ("worker", &idx),
                ],
                *jobs,
            );
        }
        pair.host
            .push_u64("e10.elapsed_ns", labels, r.elapsed.as_nanos() as u64);
        pair.host.push_f64("e10.ops_per_sec", labels, r.ops_per_sec);
        pair.host
            .push_f64("e10.cache_hit_rate", labels, r.cache_hit_rate);
        pair.host.push_hist("e10.wait_ns", labels, &r.wait);
        pair.host.push_hist("e10.verify_ns", labels, &r.verify);
    }
    let o = &report.overload;
    pair.canonical
        .push_u64("e10.overload.submitted", &[], o.submitted as u64);
    pair.canonical
        .push_u64("e10.overload.accepted", &[], o.stats.totals().accepted);
    pair.host.push_u64("e10.overload.sheds", &[], o.sheds);
    pair.host
        .push_f64("e10.overload.shed_rate", &[], o.stats.shed_rate());
    pair.host.push_u64(
        "e10.overload.queue_depth_watermark",
        &[],
        o.stats.queue_depth_watermark,
    );
    pair.host.push_u64(
        "e10.overload.drain_ns",
        &[],
        o.stats.drain_time.as_nanos() as u64,
    );
    pair
}

/// Renders the E10 table: legacy rows first (no shards, no cache, no
/// flight recording), then the service grid with trace-derived queue
/// wait and verify-CPU percentiles.
pub fn render(report: &E10Report) -> String {
    let mut rows: Vec<Vec<String>> = report
        .legacy
        .iter()
        .map(|r| {
            vec![
                "batch".to_string(),
                r.threads.to_string(),
                "-".to_string(),
                r.jobs.to_string(),
                table::ms(r.elapsed),
                format!("{:.0}", r.ops_per_sec),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]
        })
        .collect();
    rows.extend(report.service.iter().map(|r| {
        vec![
            "service".to_string(),
            r.threads.to_string(),
            r.shards.to_string(),
            r.jobs.to_string(),
            table::ms(r.elapsed),
            format!("{:.0}", r.ops_per_sec),
            format!("{:.2}", r.cache_hit_rate),
            table::ms(r.wait.p50()),
            table::ms(r.wait.p99()),
            format!("{:.1}", r.verify.p50().as_secs_f64() * 1e6),
        ]
    }));
    let mut out = table::render(
        "E10 - VerifierService vs one-shot batch pipeline (host-measured, from utp-trace)",
        &[
            "pipeline",
            "threads",
            "shards",
            "jobs",
            "elapsed(ms)",
            "verifications/s",
            "cache hit",
            "wait p50(ms)",
            "wait p99(ms)",
            "cpu p50(us)",
        ],
        &rows,
    );
    let o = &report.overload;
    out.push_str(&format!(
        "overload (queue=1, 1 worker): submitted={} sheds={} shed-rate={:.2} \
         queue-watermark={} drain={}\n",
        o.submitted,
        o.sheds,
        o.stats.shed_rate(),
        o.stats.queue_depth_watermark,
        table::ms(o.stats.drain_time),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_at_least_matches_legacy_at_equal_threads() {
        // The service skips one of the two RSA verifies per repeat-client
        // job via the cert cache, so at equal thread count it must not be
        // slower than the cache-less batch pipeline.
        let report = run(64, 512, &[2], &[4]);
        let legacy = report.legacy[0].ops_per_sec;
        let service = report.service[0].ops_per_sec;
        assert!(
            service >= legacy,
            "service {service:.0}/s < legacy {legacy:.0}/s"
        );
    }

    #[test]
    fn single_client_workload_hits_the_cert_cache() {
        let report = run(32, 512, &[1], &[1]);
        // One client: first lookup misses, the remaining 31 hit.
        assert!(
            report.service[0].cache_hit_rate > 0.9,
            "hit rate {}",
            report.service[0].cache_hit_rate
        );
    }

    #[test]
    fn every_combination_settles_the_whole_batch() {
        // `run` itself asserts all verdicts Ok and accepted == jobs for
        // each combination; this pins the row count.
        let report = run(16, 512, &[1, 2], &[1, 2]);
        assert_eq!(report.legacy.len(), 2);
        assert_eq!(report.service.len(), 4);
    }

    #[test]
    fn overload_scenario_settles_everything_and_snapshots_counters() {
        let report = run(12, 512, &[1], &[1]);
        let o = &report.overload;
        assert_eq!(o.submitted, 12, "every item eventually lands");
        assert_eq!(o.stats.totals().accepted, 12);
        assert_eq!(o.stats.jobs_shed, o.sheds);
        assert!(o.stats.queue_depth_watermark >= 1);
        assert!(o.stats.drain_time > Duration::ZERO);
        // The per-combination rows carry their shutdown snapshot too.
        let row = &report.service[0];
        assert_eq!(row.stats.totals().accepted as usize, row.jobs);
        assert_eq!(row.stats.worker_jobs.iter().sum::<u64>() as usize, row.jobs);
    }

    #[test]
    fn trace_histograms_cover_every_job() {
        let report = run(24, 512, &[2], &[2]);
        let row = &report.service[0];
        assert_eq!(row.wait.count() as usize, row.jobs);
        assert_eq!(row.verify.count() as usize, row.jobs);
        assert!(row.verify.sum() > Duration::ZERO, "RSA verifies cost CPU");
        assert!(row.verify.p50() <= row.verify.p99());
    }

    #[test]
    fn two_runs_export_byte_identical_canonical_jsonl() {
        // The canonical export holds only submitter-side events stamped
        // with the deterministic virtual clock; scheduling noise lives in
        // volatile records that the export drops.
        let a = run(16, 512, &[2], &[2]).canonical_trace;
        let b = run(16, 512, &[2], &[2]).canonical_trace;
        assert_eq!(a, b);
        assert!(a.lines().count() > 16, "submit events + trailer per combo");
    }
}
