//! Workspace symbol index and conservative call graph.
//!
//! Calls are resolved *conservatively*: a call site maps to every
//! workspace function it could plausibly name, and the passes treat the
//! union as reachable. Precision comes from three restrictions that are
//! all sound for this workspace's layout:
//!
//! 1. **Crate importability** — a call in file `F` can only target
//!    crates whose alias (`utp_core`, `parking_lot`, ...) appears as an
//!    identifier somewhere in `F` (covering both `use` declarations and
//!    inline qualified paths), plus `F`'s own crate.
//! 2. **Impl qualification** — `Type::method(..)` resolves to impls of
//!    `Type` when the workspace defines any; a qualified type the
//!    workspace has never implemented (e.g. `Vec::new`) is foreign and
//!    produces no workspace edges.
//! 3. **Method shape** — `recv.name(..)` only targets impl/trait
//!    functions, bare `name(..)` only free functions.
//!
//! Everything else is worst-case: a method call like `.to_bytes()`
//! fans out to *every* importable impl of that name. The soundness
//! caveats are documented in DESIGN.md.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::items::FnItem;
use crate::passes::is_tcb_path;
use crate::source::SourceFile;

/// Per-file metadata derived from its path.
#[derive(Debug)]
pub struct FileMeta {
    /// Crate alias as it appears in source (`utp_core`, `rand`, ...).
    pub crate_alias: String,
    /// Is this library/bin source (as opposed to tests/examples/benches)?
    pub is_src_ctx: bool,
    /// Crate aliases this file can reach (own crate + mentioned aliases).
    pub importable: BTreeSet<String>,
}

/// A function node: indexes into `files[file].items.fns[item]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnNode {
    /// Index into [`WorkspaceIndex::files`].
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub item: usize,
}

/// Reachability from the TCB entry points.
#[derive(Debug)]
pub struct Reachability {
    /// Is fn `i` reachable (entry points included)?
    pub reachable: Vec<bool>,
    /// BFS predecessor for diagnostics chains (`None` for entries).
    pub parent: Vec<Option<usize>>,
}

/// The parsed workspace plus its resolved call graph.
pub struct WorkspaceIndex {
    /// All parsed files, in the caller-provided (sorted) order.
    pub files: Vec<SourceFile>,
    /// Path-derived metadata, parallel to `files`.
    pub metas: Vec<FileMeta>,
    /// Flattened function list.
    pub fns: Vec<FnNode>,
    /// Resolved callee indexes per function (deduplicated, sorted).
    pub callees: Vec<Vec<usize>>,
    /// Transitive closure from the TCB entry points.
    pub reach: Reachability,
}

/// Maps a workspace-relative path to the crate alias its code compiles
/// into.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        let dir = rest.split('/').next().unwrap_or(rest);
        return format!("utp_{}", dir.replace('-', "_"));
    }
    if let Some(rest) = path.strip_prefix("shims/") {
        return rest.split('/').next().unwrap_or(rest).to_string();
    }
    // Root src/, tests/, examples/ all belong to the root `utp` package.
    "utp".to_string()
}

/// Is this path library/bin source? Tests, examples and benches cannot
/// be called from shipped code, so they are never resolution targets.
pub fn is_src_context(path: &str) -> bool {
    let in_src = path.split('/').rev().skip(1).any(|seg| seg == "src");
    in_src
        && !path
            .split('/')
            .any(|seg| seg == "tests" || seg == "examples" || seg == "benches")
}

impl WorkspaceIndex {
    /// Builds the index and call graph over parsed files.
    pub fn build(files: Vec<SourceFile>) -> WorkspaceIndex {
        let known_aliases: HashSet<String> = files.iter().map(|f| crate_of(&f.path)).collect();
        let metas: Vec<FileMeta> = files
            .iter()
            .map(|f| {
                let own = crate_of(&f.path);
                let mut importable: BTreeSet<String> = f
                    .tokens
                    .iter()
                    .filter(|t| {
                        t.kind == crate::lexer::TokenKind::Ident && known_aliases.contains(&t.text)
                    })
                    .map(|t| t.text.clone())
                    .collect();
                importable.insert(own.clone());
                FileMeta {
                    crate_alias: own,
                    is_src_ctx: is_src_context(&f.path),
                    importable,
                }
            })
            .collect();

        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for (ii, _) in f.items.fns.iter().enumerate() {
                fns.push(FnNode { file: fi, item: ii });
            }
        }

        // Targets: non-test functions in library source only.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (idx, node) in fns.iter().enumerate() {
            if !metas[node.file].is_src_ctx {
                continue;
            }
            let item = &files[node.file].items.fns[node.item];
            if files[node.file].in_test_code(item.start_line) {
                continue;
            }
            by_name.entry(item.name.as_str()).or_default().push(idx);
        }
        // Types the workspace actually implements (for rule 2).
        let impl_types: HashSet<&str> = files
            .iter()
            .zip(&metas)
            .filter(|(_, m)| m.is_src_ctx)
            .flat_map(|(f, _)| f.items.impls.iter().map(|i| i.type_name.as_str()))
            .collect();

        let mut callees: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
        for node in &fns {
            let item = &files[node.file].items.fns[node.item];
            let meta = &metas[node.file];
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &item.calls {
                resolve_call(
                    call,
                    item,
                    meta,
                    &metas,
                    &files,
                    &fns,
                    &by_name,
                    &impl_types,
                    &known_aliases,
                    &mut out,
                );
            }
            callees.push(out.into_iter().collect());
        }

        let reach = tcb_reachability(&files, &metas, &fns, &callees);
        WorkspaceIndex {
            files,
            metas,
            fns,
            callees,
            reach,
        }
    }

    /// The function item behind node index `idx`.
    pub fn fn_item(&self, idx: usize) -> &FnItem {
        let node = self.fns[idx];
        &self.files[node.file].items.fns[node.item]
    }

    /// Path of the file defining fn `idx`.
    pub fn fn_path(&self, idx: usize) -> &str {
        &self.files[self.fns[idx].file].path
    }

    /// Is fn `idx` non-test library code?
    pub fn is_live_fn(&self, idx: usize) -> bool {
        let node = self.fns[idx];
        self.metas[node.file].is_src_ctx
            && !self.files[node.file].in_test_code(self.fn_item(idx).start_line)
    }

    /// Human-oriented call chain from a TCB entry down to fn `idx`,
    /// e.g. `invoke -> from_bytes -> take_digest` (capped length).
    pub fn chain_to(&self, idx: usize) -> String {
        let mut names = vec![self.fn_item(idx).name.clone()];
        let mut cur = idx;
        while let Some(p) = self.reach.parent[cur] {
            names.push(self.fn_item(p).name.clone());
            cur = p;
            if names.len() >= 6 {
                names.push("...".to_string());
                break;
            }
        }
        names.reverse();
        names.join(" -> ")
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve_call(
    call: &crate::items::CallSite,
    caller: &FnItem,
    caller_meta: &FileMeta,
    metas: &[FileMeta],
    files: &[SourceFile],
    fns: &[FnNode],
    by_name: &HashMap<&str, Vec<usize>>,
    impl_types: &HashSet<&str>,
    known_aliases: &HashSet<String>,
    out: &mut BTreeSet<usize>,
) {
    let Some(cands) = by_name.get(call.name.as_str()) else {
        return;
    };
    let importable = |idx: usize| {
        caller_meta
            .importable
            .contains(&metas[fns[idx].file].crate_alias)
    };
    let item_of = |idx: usize| &files[fns[idx].file].items.fns[fns[idx].item];
    match call.qualifier.as_deref() {
        Some("Self") => {
            // `Self::helper()` — same impl type as the caller.
            out.extend(
                cands
                    .iter()
                    .copied()
                    .filter(|&i| importable(i))
                    .filter(|&i| {
                        item_of(i).impl_type == caller.impl_type && caller.impl_type.is_some()
                    }),
            );
        }
        Some(q) if q == "crate" || known_aliases.contains(q) => {
            let target = if q == "crate" {
                caller_meta.crate_alias.clone()
            } else {
                q.to_string()
            };
            out.extend(
                cands
                    .iter()
                    .copied()
                    .filter(|&i| metas[fns[i].file].crate_alias == target),
            );
        }
        Some(q) if impl_types.contains(q) => {
            out.extend(
                cands
                    .iter()
                    .copied()
                    .filter(|&i| importable(i))
                    .filter(|&i| item_of(i).impl_type.as_deref() == Some(q)),
            );
        }
        Some(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => {
            // A qualified type the workspace never implements: foreign
            // (std) — calls into it cannot land in workspace code.
            let _ = q;
        }
        Some(_) => {
            // Module-qualified free function (`mem::take`, `pcr::reset`).
            out.extend(
                cands
                    .iter()
                    .copied()
                    .filter(|&i| importable(i))
                    .filter(|&i| item_of(i).impl_type.is_none()),
            );
        }
        None if call.is_method => {
            out.extend(
                cands
                    .iter()
                    .copied()
                    .filter(|&i| importable(i))
                    .filter(|&i| item_of(i).impl_type.is_some()),
            );
        }
        None => {
            out.extend(
                cands
                    .iter()
                    .copied()
                    .filter(|&i| importable(i))
                    .filter(|&i| item_of(i).impl_type.is_none()),
            );
        }
    }
}

/// BFS from all non-test functions defined in TCB files.
fn tcb_reachability(
    files: &[SourceFile],
    metas: &[FileMeta],
    fns: &[FnNode],
    callees: &[Vec<usize>],
) -> Reachability {
    let mut reachable = vec![false; fns.len()];
    let mut parent = vec![None; fns.len()];
    let mut queue = std::collections::VecDeque::new();
    for (idx, node) in fns.iter().enumerate() {
        if !metas[node.file].is_src_ctx || !is_tcb_path(&files[node.file].path) {
            continue;
        }
        let item = &files[node.file].items.fns[node.item];
        if files[node.file].in_test_code(item.start_line) {
            continue;
        }
        reachable[idx] = true;
        queue.push_back(idx);
    }
    while let Some(cur) = queue.pop_front() {
        for &next in &callees[cur] {
            if !reachable[next] {
                reachable[next] = true;
                parent[next] = Some(cur);
                queue.push_back(next);
            }
        }
    }
    Reachability { reachable, parent }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> WorkspaceIndex {
        WorkspaceIndex::build(files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect())
    }

    #[test]
    fn crate_mapping_and_contexts() {
        assert_eq!(crate_of("crates/tpm/src/device.rs"), "utp_tpm");
        assert_eq!(crate_of("shims/parking_lot/src/lib.rs"), "parking_lot");
        assert_eq!(crate_of("src/lib.rs"), "utp");
        assert!(is_src_context("crates/server/src/bin/serve.rs"));
        assert!(!is_src_context("crates/tpm/tests/properties.rs"));
        assert!(!is_src_context("tests/static_analysis.rs"));
        assert!(!is_src_context("examples/sharded_service.rs"));
    }

    #[test]
    fn cross_crate_calls_need_an_importable_alias() {
        let w = ws(&[
            ("crates/core/src/pal.rs", "pub fn invoke() { helper(); }\n"),
            ("crates/flicker/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        // `utp_flicker` never mentioned in the caller: no edge.
        assert_eq!(w.callees[0], Vec::<usize>::new());

        let w = ws(&[
            (
                "crates/core/src/pal.rs",
                "use utp_flicker::helper;\npub fn invoke() { helper(); }\n",
            ),
            ("crates/flicker/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        assert_eq!(w.callees[0], vec![1]);
        assert!(w.reach.reachable[1]);
        assert_eq!(w.chain_to(1), "invoke -> helper");
    }

    #[test]
    fn foreign_qualified_types_produce_no_edges() {
        let w = ws(&[(
            "crates/tpm/src/x.rs",
            "pub fn f() { let v = Vec::new(); }\npub struct K;\nimpl K { pub fn new() -> K { K } }\n",
        )]);
        // `Vec::new` must not resolve to the workspace `K::new`.
        assert_eq!(w.callees[0], Vec::<usize>::new());
    }

    #[test]
    fn qualified_impl_calls_resolve_precisely() {
        let w = ws(&[(
            "crates/tpm/src/x.rs",
            "pub struct A;\nimpl A { pub fn go() {} }\npub struct B;\nimpl B { pub fn go() {} }\npub fn f() { A::go(); }\n",
        )]);
        let f_idx = (0..w.fns.len())
            .find(|&i| w.fn_item(i).name == "f")
            .unwrap();
        assert_eq!(w.callees[f_idx].len(), 1);
        assert_eq!(
            w.fn_item(w.callees[f_idx][0]).impl_type.as_deref(),
            Some("A")
        );
    }

    #[test]
    fn method_calls_fan_out_to_all_importable_impls() {
        let w = ws(&[
            (
                "crates/core/src/pal.rs",
                "use utp_tpm::T;\npub fn invoke(t: T) { t.to_bytes(); }\n",
            ),
            (
                "crates/tpm/src/a.rs",
                "pub struct T;\nimpl T { pub fn to_bytes(&self) {} }\n",
            ),
            (
                "crates/server/src/b.rs",
                "pub struct S;\nimpl S { pub fn to_bytes(&self) {} }\n",
            ),
        ]);
        // Reaches the tpm impl (importable) but not the server one.
        assert_eq!(w.callees[0].len(), 1);
        assert_eq!(w.fn_path(w.callees[0][0]), "crates/tpm/src/a.rs");
    }

    #[test]
    fn test_code_is_neither_entry_nor_target() {
        let w = ws(&[(
            "crates/tpm/src/x.rs",
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { live(); }\n}\n",
        )]);
        let helper = (0..w.fns.len())
            .find(|&i| w.fn_item(i).name == "helper")
            .unwrap();
        assert!(!w.reach.reachable[helper]);
        assert!(!w.is_live_fn(helper));
    }
}
