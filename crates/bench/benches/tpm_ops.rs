//! Criterion benchmarks for the software TPM (E1's host-CPU counterpart:
//! the functional cost of our TPM model, as opposed to the modeled chip
//! latencies the E1 harness prints).

use criterion::{criterion_group, criterion_main, Criterion};
use utp_crypto::sha1::Sha1Digest;
use utp_tpm::keys::SRK_HANDLE;
use utp_tpm::locality::Locality;
use utp_tpm::pcr::{PcrIndex, PcrSelection};
use utp_tpm::{Tpm, TpmConfig};

fn fresh_tpm() -> Tpm {
    let mut t = Tpm::new(TpmConfig::fast_for_tests(7));
    t.startup_clear();
    t
}

fn bench_extend(c: &mut Criterion) {
    let mut tpm = fresh_tpm();
    let pcr = PcrIndex::new(0).unwrap();
    c.bench_function("tpm_extend", |b| {
        b.iter(|| tpm.extend(Locality::Zero, pcr, &[0u8; 20]).unwrap())
    });
}

fn bench_quote(c: &mut Criterion) {
    let mut tpm = fresh_tpm();
    let aik = tpm.make_identity();
    let mut group = c.benchmark_group("tpm_quote");
    group.sample_size(20);
    group.bench_function("quote_pcr17", |b| {
        b.iter(|| {
            tpm.quote(aik, PcrSelection::drtm_only(), Sha1Digest::zero())
                .unwrap()
        })
    });
    group.finish();
}

fn bench_seal_unseal(c: &mut Criterion) {
    let mut tpm = fresh_tpm();
    let sel = PcrSelection::of(&[PcrIndex::new(0).unwrap()]);
    let blob = tpm.seal_to_current(SRK_HANDLE, sel, &[0u8; 128]).unwrap();
    c.bench_function("tpm_seal_128B", |b| {
        b.iter(|| tpm.seal_to_current(SRK_HANDLE, sel, &[0u8; 128]).unwrap())
    });
    c.bench_function("tpm_unseal_128B", |b| {
        b.iter(|| tpm.unseal(SRK_HANDLE, &blob).unwrap())
    });
}

fn bench_drtm_sequence(c: &mut Criterion) {
    c.bench_function("tpm_drtm_hash_sequence_4KiB", |b| {
        let mut tpm = fresh_tpm();
        let slb = vec![0xCCu8; 4096];
        b.iter(|| {
            tpm.hash_start(Locality::Four).unwrap();
            tpm.hash_data(Locality::Four, &slb).unwrap();
            tpm.hash_end(Locality::Four).unwrap();
        })
    });
}

criterion_group!(
    benches,
    bench_extend,
    bench_quote,
    bench_seal_unseal,
    bench_drtm_sequence
);
criterion_main!(benches);
