//! Audit log: the provider's append-only record of verification
//! decisions, the artifact a compliance review (or the paper's incident
//! analysis) would consult.

use std::time::Duration;
use utp_core::verifier::VerifyError;

/// One audited decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Virtual time of the decision.
    pub at: Duration,
    /// Order the evidence claimed to settle.
    pub order_id: u64,
    /// Outcome: `Ok(())` for accepted, the typed error otherwise.
    pub outcome: Result<(), VerifyError>,
}

/// Append-only audit log with simple query helpers.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends a decision.
    pub fn record(&mut self, at: Duration, order_id: u64, outcome: Result<(), VerifyError>) {
        self.entries.push(AuditEntry {
            at,
            order_id,
            outcome,
        });
    }

    /// All entries, in append order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accepted decisions.
    pub fn accepted(&self) -> usize {
        self.entries.iter().filter(|e| e.outcome.is_ok()).count()
    }

    /// Entries for one order.
    pub fn for_order(&self, order_id: u64) -> Vec<&AuditEntry> {
        self.entries
            .iter()
            .filter(|e| e.order_id == order_id)
            .collect()
    }

    /// Rejections matching a predicate — e.g. count replay attempts in a
    /// time window, the provider's attack-monitoring signal.
    pub fn rejections_where(&self, mut pred: impl FnMut(&VerifyError) -> bool) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(&e.outcome, Err(err) if pred(err)))
            .count()
    }

    /// Entries within `[from, to)`.
    pub fn in_window(&self, from: Duration, to: Duration) -> Vec<&AuditEntry> {
        self.entries
            .iter()
            .filter(|e| e.at >= from && e.at < to)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> Duration {
        Duration::from_secs(secs)
    }

    #[test]
    fn records_and_counts() {
        let mut log = AuditLog::new();
        log.record(t(1), 1, Ok(()));
        log.record(t(2), 2, Err(VerifyError::Replayed));
        log.record(t(3), 2, Err(VerifyError::Replayed));
        assert_eq!(log.len(), 3);
        assert_eq!(log.accepted(), 1);
        assert_eq!(
            log.rejections_where(|e| matches!(e, VerifyError::Replayed)),
            2
        );
    }

    #[test]
    fn per_order_and_window_queries() {
        let mut log = AuditLog::new();
        log.record(t(1), 7, Err(VerifyError::UntrustedPal));
        log.record(t(5), 7, Ok(()));
        log.record(t(9), 8, Ok(()));
        assert_eq!(log.for_order(7).len(), 2);
        assert_eq!(log.in_window(t(0), t(6)).len(), 2);
        assert_eq!(log.in_window(t(6), t(10)).len(), 1);
    }

    #[test]
    fn empty_log_behaves() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        assert_eq!(log.accepted(), 0);
        assert!(log.for_order(1).is_empty());
    }
}
