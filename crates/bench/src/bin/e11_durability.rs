//! Prints the E11 tables (WAL group commit vs flush-per-record, and
//! recovery time vs log length) and drops the run's perf artifacts
//! under `target/bench/`.
use utp_bench::experiments::e11_durability as e11;

fn main() {
    let report = e11::run(2_048, &[1, 4, 16, 64], &[256, 1_024, 4_096]);
    println!("{}", e11::render(&report));
    for profile in ["nvme", "ssd", "hdd"] {
        println!(
            "{profile}: best batch sustains {:.1}x flush-per-record throughput",
            e11::best_speedup(&report, profile)
        );
    }
    utp_bench::emit_artifacts(&e11::artifacts(
        &report,
        "records=2048 batches=1,4,16,64 logs=256,1024,4096",
    ));
}
