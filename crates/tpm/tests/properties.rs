//! Property-based tests for the TPM model: PCR chain algebra, sealed-blob
//! robustness against arbitrary corruption, quote wire-format totality.

use proptest::prelude::*;
use utp_tpm::keys::SRK_HANDLE;
use utp_tpm::locality::Locality;
use utp_tpm::pcr::{PcrIndex, PcrSelection};
use utp_tpm::quote::Quote;
use utp_tpm::seal::SealedBlob;
use utp_tpm::{Tpm, TpmConfig};

fn tpm(seed: u64) -> Tpm {
    let mut t = Tpm::new(TpmConfig::fast_for_tests(seed));
    t.startup_clear();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pcr_extension_is_deterministic(
        inputs in proptest::collection::vec(any::<[u8; 20]>(), 1..8)
    ) {
        let mut a = tpm(1);
        let mut b = tpm(2); // different TPM identity, same PCR algebra
        let pcr = PcrIndex::new(4).unwrap();
        for input in &inputs {
            a.extend(Locality::Zero, pcr, input).unwrap();
            b.extend(Locality::Zero, pcr, input).unwrap();
        }
        prop_assert_eq!(a.pcr_read(pcr).unwrap(), b.pcr_read(pcr).unwrap());
    }

    #[test]
    fn pcr_chains_with_different_history_differ(
        xs in proptest::collection::vec(any::<[u8; 20]>(), 1..6),
        ys in proptest::collection::vec(any::<[u8; 20]>(), 1..6)
    ) {
        prop_assume!(xs != ys);
        let mut a = tpm(3);
        let mut b = tpm(3);
        let pcr = PcrIndex::new(5).unwrap();
        for x in &xs {
            a.extend(Locality::Zero, pcr, x).unwrap();
        }
        for y in &ys {
            b.extend(Locality::Zero, pcr, y).unwrap();
        }
        prop_assert_ne!(a.pcr_read(pcr).unwrap(), b.pcr_read(pcr).unwrap());
    }

    #[test]
    fn seal_roundtrip_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut t = tpm(4);
        let sel = PcrSelection::of(&[PcrIndex::new(0).unwrap()]);
        let blob = t.seal_to_current(SRK_HANDLE, sel, &payload).unwrap();
        prop_assert_eq!(t.unseal(SRK_HANDLE, &blob).unwrap(), payload);
    }

    #[test]
    fn any_single_byte_corruption_of_blob_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        idx in any::<proptest::sample::Index>(),
        flip in 1u8..=255
    ) {
        let mut t = tpm(5);
        let sel = PcrSelection::of(&[PcrIndex::new(0).unwrap()]);
        let blob = t.seal_to_current(SRK_HANDLE, sel, &payload).unwrap();
        let mut bytes = blob.to_bytes();
        let i = idx.index(bytes.len());
        bytes[i] ^= flip;
        match SealedBlob::from_bytes(&bytes) {
            None => {} // structurally destroyed: fine
            Some(corrupt) => {
                prop_assert!(t.unseal(SRK_HANDLE, &corrupt).is_err(),
                    "corruption at byte {} accepted", i);
            }
        }
    }

    #[test]
    fn quote_parser_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Quote::from_bytes(&bytes); // must never panic
    }

    #[test]
    fn sealed_blob_parser_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = SealedBlob::from_bytes(&bytes); // must never panic
    }

    #[test]
    fn tpm_command_executor_is_total(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        locality in 0u8..5
    ) {
        let mut t = tpm(6);
        let loc = Locality::from_u8(locality).unwrap();
        // Arbitrary bus garbage must produce a well-formed error response,
        // never a panic.
        let resp = utp_tpm::command::execute(&mut t, loc, &bytes);
        prop_assert!(utp_tpm::command::decode_response(&resp).is_ok());
    }

    #[test]
    fn quote_wire_roundtrip(nonce in any::<[u8; 20]>()) {
        let mut t = tpm(7);
        let aik = t.make_identity();
        let q = t.quote(
            aik,
            PcrSelection::drtm_only(),
            utp_crypto::sha1::Sha1Digest(nonce),
        ).unwrap();
        let parsed = Quote::from_bytes(&q.to_bytes()).unwrap();
        prop_assert_eq!(&parsed, &q);
        let pk = t.read_pubkey(aik).unwrap();
        prop_assert!(parsed.verify(&pk, &utp_crypto::sha1::Sha1Digest(nonce)));
    }
}
