//! TPM localities.
//!
//! A TPM 1.2 exposes five "localities" — hardware-asserted indications of
//! *who* is talking to the chip. Locality 4 is asserted only by the CPU
//! microcode during a DRTM event (`SKINIT` / `GETSEC[SENTER]`); locality 2
//! belongs to the dynamically launched measured environment (the PAL);
//! locality 0 is the legacy/OS interface. The uni-directional trusted path
//! depends on this: *software cannot fake locality 4*, so PCR 17 can only be
//! reset by a genuine late launch.

use std::fmt;

/// A TPM locality (0–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locality {
    /// Legacy / untrusted OS interface.
    Zero,
    /// Trusted OS (unused in this stack, present for completeness).
    One,
    /// The measured launch environment — Flicker PALs run here.
    Two,
    /// Auxiliary MLE components.
    Three,
    /// CPU microcode during DRTM; unreachable from software.
    Four,
}

impl Locality {
    /// Numeric value 0–4.
    pub fn as_u8(self) -> u8 {
        match self {
            Locality::Zero => 0,
            Locality::One => 1,
            Locality::Two => 2,
            Locality::Three => 3,
            Locality::Four => 4,
        }
    }

    /// Parses a numeric locality.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Locality::Zero),
            1 => Some(Locality::One),
            2 => Some(Locality::Two),
            3 => Some(Locality::Three),
            4 => Some(Locality::Four),
            _ => None,
        }
    }

    /// All localities, ascending.
    pub fn all() -> [Locality; 5] {
        [
            Locality::Zero,
            Locality::One,
            Locality::Two,
            Locality::Three,
            Locality::Four,
        ]
    }
}

impl fmt::Display for Locality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "locality {}", self.as_u8())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u8() {
        for l in Locality::all() {
            assert_eq!(Locality::from_u8(l.as_u8()), Some(l));
        }
        assert_eq!(Locality::from_u8(5), None);
    }

    #[test]
    fn ordering_matches_privilege() {
        assert!(Locality::Four > Locality::Two);
        assert!(Locality::Two > Locality::Zero);
    }
}
