//! Cross-crate security-property tests: every mutation of genuine
//! evidence must fail verification, and the platform invariants the
//! protocol rests on must hold.

use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::{Evidence, Transaction};
use utp::core::verifier::{Verifier, VerifyError};
use utp::crypto::sha1::Sha1;
use utp::platform::machine::{Machine, MachineConfig};

struct Setup {
    verifier: Verifier,
    machine: Machine,
    evidence: Evidence,
}

fn genuine(seed: u64) -> Setup {
    let ca = PrivacyCa::new(512, seed);
    let mut verifier = Verifier::new(ca.public_key().clone(), seed + 1);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(seed + 2));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let tx = Transaction::new(1, "shop.example", 4_200, "EUR", "order");
    let request = verifier.issue_request(tx.clone(), machine.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), seed + 3);
    let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
    Setup {
        verifier,
        machine,
        evidence,
    }
}

#[test]
fn baseline_genuine_evidence_verifies() {
    let mut s = genuine(400);
    s.verifier.verify(&s.evidence, s.machine.now()).unwrap();
}

#[test]
fn every_single_byte_flip_in_the_signature_is_rejected() {
    let s = genuine(410);
    let mut verifier = s.verifier;
    for i in 0..s.evidence.quote.signature.len() {
        let mut ev = s.evidence.clone();
        ev.quote.signature[i] ^= 0x01;
        assert!(
            verifier.verify(&ev, s.machine.now()).is_err(),
            "flip at byte {} accepted",
            i
        );
    }
    // The pristine evidence still works afterwards — failed attempts must
    // not consume the nonce.
    verifier.verify(&s.evidence, s.machine.now()).unwrap();
}

#[test]
fn token_byte_flips_are_rejected() {
    let s = genuine(420);
    let mut verifier = s.verifier;
    for i in 0..s.evidence.token_bytes.len() {
        let mut ev = s.evidence.clone();
        ev.token_bytes[i] ^= 0x01;
        assert!(
            verifier.verify(&ev, s.machine.now()).is_err(),
            "token flip at byte {} accepted",
            i
        );
    }
}

#[test]
fn quoted_pcr_value_substitution_is_rejected() {
    let s = genuine(430);
    let mut verifier = s.verifier;
    let mut ev = s.evidence.clone();
    ev.quote.pcr_values[0] = Sha1::digest(b"attacker chosen");
    assert!(verifier.verify(&ev, s.machine.now()).is_err());
}

#[test]
fn nonce_substitution_is_rejected() {
    let s = genuine(440);
    let mut verifier = s.verifier;
    let mut ev = s.evidence.clone();
    ev.quote.external_data = Sha1::digest(b"other nonce");
    assert!(verifier.verify(&ev, s.machine.now()).is_err());
}

#[test]
fn evidence_for_one_request_fails_for_another() {
    // Two outstanding requests; evidence answering the first must not
    // settle the second even though both are valid and unexpired.
    let ca = PrivacyCa::new(512, 450);
    let mut verifier = Verifier::new(ca.public_key().clone(), 451);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(452));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let tx1 = Transaction::new(1, "shop.example", 100, "EUR", "a");
    let tx2 = Transaction::new(2, "shop.example", 999_999, "EUR", "b");
    let req1 = verifier.issue_request(tx1.clone(), machine.now());
    let _req2 = verifier.issue_request(tx2.clone(), machine.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx1), 453);
    let ev1 = client.confirm(&mut machine, &req1, &mut human).unwrap();
    // ev1 only verifies once, for tx1; its nonce cannot settle tx2 because
    // the token binds tx1's digest and req1's nonce.
    let verified = verifier.verify(&ev1, machine.now()).unwrap();
    assert_eq!(verified.transaction, tx1);
    assert_eq!(verifier.stats().accepted, 1);
}

#[test]
fn platform_invariant_os_cannot_touch_pcr17() {
    use utp::tpm::command as tpmcmd;
    use utp::tpm::pcr::PcrIndex;
    let mut machine = Machine::new(MachineConfig::fast_for_tests(460));
    // Extend PCR 17 from the OS: refused.
    let req = tpmcmd::req_extend(PcrIndex::drtm(), &Sha1::digest(b"fake"));
    let resp = tpmcmd::decode_response(&machine.os_tpm_execute(&req)).unwrap();
    assert_eq!(resp.return_code, tpmcmd::RC_BAD_LOCALITY);
}

#[test]
fn platform_invariant_injection_blocked_in_session() {
    use utp::platform::keyboard::KeyEvent;
    let mut machine = Machine::new(MachineConfig::fast_for_tests(461));
    machine.os_inject_key(KeyEvent::Enter).unwrap();
    let mut session = machine.skinit(b"pal").unwrap();
    // The pre-injected event was flushed.
    assert!(session.read_key().unwrap().is_none());
    session.end();
}

#[test]
fn verifier_counts_every_rejection_reason_distinctly() {
    let s = genuine(470);
    let mut verifier = s.verifier;
    // Bad signature.
    let mut ev = s.evidence.clone();
    ev.quote.signature[0] ^= 1;
    let _ = verifier.verify(&ev, s.machine.now());
    // Unknown nonce.
    let mut ev = s.evidence.clone();
    let mut token = ev.token().unwrap();
    token.nonce = Sha1::digest(b"unknown");
    ev.token_bytes = token.to_bytes();
    let _ = verifier.verify(&ev, s.machine.now());
    // Genuine accept, then replay.
    verifier.verify(&s.evidence, s.machine.now()).unwrap();
    let _ = verifier.verify(&s.evidence, s.machine.now());
    let stats = verifier.stats();
    assert_eq!(stats.accepted, 1);
    assert!(stats.rejected.len() >= 3, "{:?}", stats.rejected);
}

#[test]
fn expired_request_fails_even_with_genuine_evidence() {
    let mut s = genuine(480);
    s.machine.advance(std::time::Duration::from_secs(3600));
    assert_eq!(
        s.verifier.verify(&s.evidence, s.machine.now()).unwrap_err(),
        VerifyError::Expired
    );
}

#[test]
fn request_is_bound_not_just_transaction() {
    // Same transaction, two requests: evidence from request A presented
    // with request A's token but... the whole io chain keys on request
    // bytes including the nonce, so nothing can be mixed and matched.
    let ca = PrivacyCa::new(512, 490);
    let mut verifier = Verifier::new(ca.public_key().clone(), 491);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(492));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let tx = Transaction::new(1, "shop.example", 100, "EUR", "same");
    let req_a = verifier.issue_request(tx.clone(), machine.now());
    let req_b = verifier.issue_request(tx.clone(), machine.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 493);
    let ev_a = client.confirm(&mut machine, &req_a, &mut human).unwrap();
    // Graft A's quote onto B's token: chain breaks.
    let ev_b_forged = {
        let mut token = ev_a.token().unwrap();
        token.nonce = req_b.nonce;
        Evidence {
            token_bytes: token.to_bytes(),
            quote: ev_a.quote.clone(),
            aik_cert: ev_a.aik_cert.clone(),
        }
    };
    assert!(verifier.verify(&ev_b_forged, machine.now()).is_err());
    // The genuine one still settles.
    verifier.verify(&ev_a, machine.now()).unwrap();
}
