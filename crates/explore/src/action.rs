//! The adversary-action vocabulary shared by the explorer and the
//! attack playbooks.
//!
//! A [`Schedule`] is simply a sequence of [`Action`]s. Actions are
//! *labels*, not closures: the same schedule can be applied to the
//! serial stack, the service-attached stack, or a deliberately buggy
//! shim, and can be rendered/persisted as text — which is what makes
//! counterexamples replayable and shrinkable.
//!
//! Inapplicable actions (an order index the scenario does not have, an
//! evidence kind that was never captured) are **deterministic no-ops**.
//! That convention is load-bearing: the delta-debugging shrinker may
//! remove any subsequence of a schedule and the remainder must still
//! mean the same thing for the steps it kept.

use std::fmt;
use std::time::Duration;

/// Which captured evidence variant to deliver for an order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvidenceKind {
    /// The genuine, human-approved evidence captured off the wire.
    Genuine,
    /// Evidence from a PAL run where the human rejected the quote.
    Rejected,
    /// The genuine token re-encoded with a flipped field: the quote no
    /// longer covers the token bytes, so the chain check must fail.
    TamperedToken,
    /// The genuine evidence with its AIK certificate swapped for one
    /// issued by a CA the provider does not trust.
    RogueCert,
}

impl EvidenceKind {
    /// Stable lowercase label used in rendered schedules and logs.
    pub fn label(&self) -> &'static str {
        match self {
            EvidenceKind::Genuine => "genuine",
            EvidenceKind::Rejected => "rejected",
            EvidenceKind::TamperedToken => "tampered",
            EvidenceKind::RogueCert => "roguecert",
        }
    }
}

/// How the durable substrate fails before recovery runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// Power loss: everything staged in the write caches is gone; the
    /// durable media survive as-is.
    PowerLoss,
    /// Power loss plus media rollback: the durable WAL additionally
    /// loses its last `drop_frames` complete frames (frame-boundary
    /// crash-point injection). The cut is clamped at the durable base
    /// (last checkpoint / prologue image): losing history *below* the
    /// base is the rollback adversary's move, not a crash.
    Truncate {
        /// Complete tail frames removed from the durable log.
        drop_frames: usize,
    },
    /// Power loss mid-write: the durable WAL ends `bytes` into its last
    /// frame — a torn tail the recovery scan must fail-closed on.
    /// Clamped at the durable base like [`CrashKind::Truncate`].
    TornTail {
        /// Bytes cut off the durable log (not frame-aligned).
        bytes: usize,
    },
    /// The adversary substitutes the durable image captured at the last
    /// [`Action::Checkpoint`] (or scenario start) — a storage rollback.
    Rollback,
}

impl CrashKind {
    /// Stable lowercase label used in rendered schedules and logs.
    pub fn label(&self) -> String {
        match self {
            CrashKind::PowerLoss => "power".to_string(),
            CrashKind::Truncate { drop_frames } => format!("truncate frames={drop_frames}"),
            CrashKind::TornTail { bytes } => format!("torn bytes={bytes}"),
            CrashKind::Rollback => "rollback".to_string(),
        }
    }
}

/// One adversary move against the provider stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Deliver a captured evidence variant for order `order` (replay
    /// when delivered more than once).
    Deliver {
        /// Scenario order index.
        order: usize,
        /// Which captured variant to deliver.
        kind: EvidenceKind,
    },
    /// Deliver order `evidence_from`'s genuine evidence against order
    /// `to_order` — the cross-binding (reorder/substitution) move.
    CrossDeliver {
        /// Scenario order index whose evidence is replayed.
        evidence_from: usize,
        /// Scenario order index the evidence is submitted against.
        to_order: usize,
    },
    /// Withhold order `order`'s evidence (message drop). A no-op on
    /// provider state; kept in the vocabulary so playbooks can spell
    /// out full message-level schedules.
    Drop {
        /// Scenario order index whose evidence is dropped.
        order: usize,
    },
    /// Advance the virtual clock (message delay / adversary waiting out
    /// a nonce TTL).
    AdvanceClock {
        /// Virtual milliseconds to skip.
        millis: u64,
    },
    /// Crash the durable substrate per [`CrashKind`] and recover.
    Crash(CrashKind),
    /// Provider takes a snapshot, truncates the WAL, and (in the
    /// explorer's model) refreshes the adversary's rollback image.
    Checkpoint,
}

impl Action {
    /// True for actions that replace the live state with a recovery.
    pub fn is_crash(&self) -> bool {
        matches!(self, Action::Crash(_))
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Deliver { order, kind } => {
                write!(f, "deliver order={order} kind={}", kind.label())
            }
            Action::CrossDeliver {
                evidence_from,
                to_order,
            } => write!(f, "cross evidence={evidence_from} to={to_order}"),
            Action::Drop { order } => write!(f, "drop order={order}"),
            Action::AdvanceClock { millis } => write!(f, "advance ms={millis}"),
            Action::Crash(kind) => write!(f, "crash {}", kind.label()),
            Action::Checkpoint => write!(f, "checkpoint"),
        }
    }
}

/// A sequence of adversary moves.
pub type Schedule = Vec<Action>;

/// Renders a schedule one action per line — the on-disk counterexample
/// format pinned by the golden fixtures.
pub fn render_schedule(schedule: &[Action]) -> String {
    let mut out = String::new();
    for action in schedule {
        out.push_str(&action.to_string());
        out.push('\n');
    }
    out
}

/// The explorer's default action alphabet for a `k`-order scenario:
/// every delivery variant per order, the cross-bindings between the
/// first two orders, a short and a TTL-crossing clock skip, and every
/// crash flavor. Order is part of the exploration contract — logs and
/// counterexamples are only comparable across runs using the same
/// alphabet.
pub fn default_alphabet(k: usize, nonce_ttl: Duration) -> Vec<Action> {
    let mut actions = Vec::new();
    for order in 0..k {
        actions.push(Action::Deliver {
            order,
            kind: EvidenceKind::Genuine,
        });
        actions.push(Action::Deliver {
            order,
            kind: EvidenceKind::TamperedToken,
        });
        actions.push(Action::Deliver {
            order,
            kind: EvidenceKind::RogueCert,
        });
    }
    // Only order 0 captures a human-rejected PAL run (see Scenario).
    actions.push(Action::Deliver {
        order: 0,
        kind: EvidenceKind::Rejected,
    });
    if k >= 2 {
        actions.push(Action::CrossDeliver {
            evidence_from: 0,
            to_order: 1,
        });
        actions.push(Action::CrossDeliver {
            evidence_from: 1,
            to_order: 0,
        });
    }
    actions.push(Action::AdvanceClock { millis: 1_000 });
    actions.push(Action::AdvanceClock {
        millis: nonce_ttl.as_millis() as u64 + 1_000,
    });
    actions.push(Action::Checkpoint);
    actions.push(Action::Crash(CrashKind::PowerLoss));
    actions.push(Action::Crash(CrashKind::Truncate { drop_frames: 1 }));
    actions.push(Action::Crash(CrashKind::TornTail { bytes: 3 }));
    actions.push(Action::Crash(CrashKind::Rollback));
    actions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_stable() {
        let schedule = vec![
            Action::Deliver {
                order: 0,
                kind: EvidenceKind::Genuine,
            },
            Action::CrossDeliver {
                evidence_from: 0,
                to_order: 1,
            },
            Action::AdvanceClock { millis: 301_000 },
            Action::Crash(CrashKind::Truncate { drop_frames: 1 }),
            Action::Checkpoint,
        ];
        assert_eq!(
            render_schedule(&schedule),
            "deliver order=0 kind=genuine\n\
             cross evidence=0 to=1\n\
             advance ms=301000\n\
             crash truncate frames=1\n\
             checkpoint\n"
        );
    }

    #[test]
    fn default_alphabet_is_deterministic_and_complete() {
        let a = default_alphabet(2, Duration::from_secs(300));
        let b = default_alphabet(2, Duration::from_secs(300));
        assert_eq!(a, b);
        assert!(a.iter().any(|x| x.is_crash()));
        assert!(a.contains(&Action::Checkpoint));
        assert!(a.contains(&Action::Crash(CrashKind::Rollback)));
        // One delivery triple per order plus the rejected variant.
        let deliveries = a
            .iter()
            .filter(|x| matches!(x, Action::Deliver { .. }))
            .count();
        assert_eq!(deliveries, 7);
    }
}
