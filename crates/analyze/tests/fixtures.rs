//! Fixture tests: for every pass, a violating snippet must produce the
//! expected diagnostic (lint id, severity, file:line), and the same
//! snippet with an allow-annotation must be suppressed.
//!
//! Fixtures are in-memory strings fed through [`analyze_source`] under
//! TCB-shaped paths, so nothing here can leak into the real workspace
//! walk (which additionally skips `fixtures` directories).

use utp_analyze::analyze_source;
use utp_analyze::diag::{Diagnostic, Severity};

fn assert_finding(diags: &[Diagnostic], lint: &str, line: u32) {
    assert!(
        diags.iter().any(|d| d.lint == lint && d.line == line),
        "expected a `{lint}` finding on line {line}, got:\n{diags:#?}"
    );
}

fn assert_no_finding(diags: &[Diagnostic], lint: &str) {
    assert!(
        !diags.iter().any(|d| d.lint == lint),
        "expected no `{lint}` findings, got:\n{diags:#?}"
    );
}

// ---- pass 1: tcb-boundary --------------------------------------------------

#[test]
fn tcb_boundary_flags_forbidden_crate_import() {
    let src = "use utp_crypto::sha1::Sha1;\nuse utp_server::provider::ServiceProvider;\n";
    let diags = analyze_source("crates/tpm/src/fixture.rs", src);
    assert_finding(&diags, "tcb-boundary", 2);
    assert_eq!(diags.len(), 1, "the utp_crypto import is allowlisted");
}

#[test]
fn tcb_boundary_flags_os_facing_std_subtrees() {
    let src = "use std::fmt;\nuse std::net::TcpStream;\nuse std::fs::File;\n";
    let diags = analyze_source("crates/flicker/src/pal.rs", src);
    assert_finding(&diags, "tcb-boundary", 2);
    assert_finding(&diags, "tcb-boundary", 3);
    assert!(!diags.iter().any(|d| d.line == 1), "std::fmt is fine");
}

#[test]
fn tcb_boundary_ignores_non_tcb_files_and_local_modules() {
    // Server code may import anything; TCB lib.rs may re-export its own
    // modules.
    assert_no_finding(
        &analyze_source("crates/server/src/fixture.rs", "use std::net::TcpStream;\n"),
        "tcb-boundary",
    );
    let src = "pub mod device;\npub use device::{Tpm, TpmConfig};\n";
    assert_no_finding(
        &analyze_source("crates/tpm/src/lib.rs", src),
        "tcb-boundary",
    );
}

#[test]
fn tcb_boundary_severity_is_deny() {
    let diags = analyze_source("crates/tpm/src/fixture.rs", "use utp_netsim::Link;\n");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].severity, Severity::Deny);
    assert_eq!(diags[0].file, "crates/tpm/src/fixture.rs");
}

// ---- pass 2: no-panic-in-tcb -----------------------------------------------

#[test]
fn no_panic_flags_unwrap_expect_and_panic_macros() {
    let src = "\
fn f(v: Option<u8>) -> u8 {
    let a = v.unwrap();
    let b = v.expect(\"msg\");
    if a == 0 { panic!(\"boom\"); }
    todo!()
}
";
    let diags = analyze_source("crates/tpm/src/fixture.rs", src);
    assert_finding(&diags, "no-panic-in-tcb", 2);
    assert_finding(&diags, "no-panic-in-tcb", 3);
    assert_finding(&diags, "no-panic-in-tcb", 4);
    assert_finding(&diags, "no-panic-in-tcb", 5);
}

#[test]
fn no_panic_flags_dynamic_indexing_but_not_literal() {
    let src = "\
fn f(v: &[u8], i: usize) -> u8 {
    let x = v[i];
    let first = v[0];
    x + first
}
";
    let diags = analyze_source("crates/tpm/src/fixture.rs", src);
    assert_finding(&diags, "no-panic-in-tcb", 2);
    assert!(
        !diags.iter().any(|d| d.line == 3),
        "literal index v[0] is structurally bounded, got:\n{diags:#?}"
    );
}

#[test]
fn no_panic_skips_cfg_test_modules() {
    let src = "\
pub fn real() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
";
    assert_no_finding(
        &analyze_source("crates/tpm/src/fixture.rs", src),
        "no-panic-in-tcb",
    );
}

#[test]
fn no_panic_honors_allow_annotation_with_reason() {
    let src = "\
fn f(v: &[u8], i: usize) -> u8 {
    // utp-analyze: allow(no-panic-in-tcb) i < v.len() checked by caller
    v[i]
}
";
    assert_no_finding(
        &analyze_source("crates/tpm/src/fixture.rs", src),
        "no-panic-in-tcb",
    );
}

#[test]
fn no_panic_ignores_non_tcb_files() {
    assert_no_finding(
        &analyze_source(
            "crates/server/src/fixture.rs",
            "fn f() { None::<u8>.unwrap(); }\n",
        ),
        "no-panic-in-tcb",
    );
}

// ---- pass 3: ct-discipline -------------------------------------------------

#[test]
fn ct_discipline_flags_equality_on_secret_names() {
    let src = "\
fn check(key: &[u8], other: &[u8]) -> bool {
    key == other
}
";
    let diags = analyze_source("crates/crypto/src/fixture.rs", src);
    assert_finding(&diags, "ct-discipline", 2);
    assert!(diags.iter().any(|d| d.message.contains("ct_eq")));
}

#[test]
fn ct_discipline_allows_len_comparisons_and_const_parameters() {
    let src = "\
const DIGEST_LEN: usize = 20;
fn check(digest: &[u8]) -> bool {
    digest.len() == DIGEST_LEN
}
";
    assert_no_finding(
        &analyze_source("crates/crypto/src/fixture.rs", src),
        "ct-discipline",
    );
}

#[test]
fn ct_discipline_flags_early_return_in_secret_loop() {
    let src = "\
fn cmp(auth_bytes: &[u8], other: &[u8]) -> bool {
    for (a, b) in auth_bytes.iter().zip(other) {
        if a != b {
            return false;
        }
    }
    true
}
";
    let diags = analyze_source("crates/tpm/src/auth.rs", src);
    assert_finding(&diags, "ct-discipline", 4);
}

#[test]
fn ct_discipline_only_applies_to_crypto_and_tpm_auth_paths() {
    let src = "fn f(key: &[u8], k2: &[u8]) -> bool { key == k2 }\n";
    assert_no_finding(
        &analyze_source("crates/server/src/fixture.rs", src),
        "ct-discipline",
    );
}

// ---- pass 4: forbid-unsafe-everywhere --------------------------------------

#[test]
fn forbid_unsafe_flags_crate_root_without_attribute() {
    let diags = analyze_source("crates/tpm/src/lib.rs", "pub mod device;\n");
    assert_finding(&diags, "forbid-unsafe-everywhere", 1);
}

#[test]
fn forbid_unsafe_accepts_crate_root_with_attribute() {
    let src = "//! Docs.\n#![forbid(unsafe_code)]\npub mod device;\n";
    assert_no_finding(
        &analyze_source("crates/tpm/src/lib.rs", src),
        "forbid-unsafe-everywhere",
    );
}

#[test]
fn forbid_unsafe_only_checks_crate_roots() {
    assert_no_finding(
        &analyze_source("crates/tpm/src/device.rs", "pub struct Tpm;\n"),
        "forbid-unsafe-everywhere",
    );
}

// ---- pass 5: wallclock-in-model --------------------------------------------

#[test]
fn wallclock_flags_instant_and_system_time_in_model_code() {
    let src = "\
use std::time::{Instant, SystemTime};
fn f() {
    let t = Instant::now();
    let s = SystemTime::now();
}
";
    let diags = analyze_source("crates/server/src/fixture.rs", src);
    assert_finding(&diags, "wallclock-in-model", 3);
    // Line 1 and 4 mention SystemTime too; at minimum the call site.
    assert!(
        diags
            .iter()
            .filter(|d| d.lint == "wallclock-in-model")
            .count()
            >= 2
    );
}

#[test]
fn wallclock_exempts_bench_and_metrics() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert_no_finding(
        &analyze_source("crates/bench/src/fixture.rs", src),
        "wallclock-in-model",
    );
    assert_no_finding(
        &analyze_source("crates/server/src/metrics.rs", src),
        "wallclock-in-model",
    );
}

// ---- annotation meta-lints -------------------------------------------------

#[test]
fn allow_without_reason_is_a_deny_finding() {
    let src = "// utp-analyze: allow(no-panic-in-tcb)\nfn f() {}\n";
    let diags = analyze_source("crates/tpm/src/fixture.rs", src);
    assert_finding(&diags, "malformed-allow", 1);
    assert_eq!(diags[0].severity, Severity::Deny);
}

#[test]
fn allow_naming_unknown_lint_is_a_deny_finding() {
    let src = "// utp-analyze: allow(no-such-lint) because reasons\nfn f() {}\n";
    assert_finding(
        &analyze_source("crates/tpm/src/fixture.rs", src),
        "malformed-allow",
        1,
    );
}

#[test]
fn allow_suppressing_nothing_is_a_warning() {
    let src = "// utp-analyze: allow(no-panic-in-tcb) stale waiver\nfn f() {}\n";
    let diags = analyze_source("crates/tpm/src/fixture.rs", src);
    assert_finding(&diags, "unused-allow", 1);
    assert_eq!(diags[0].severity, Severity::Warn);
}

// ---- output formats --------------------------------------------------------

#[test]
fn json_output_is_well_formed_for_findings() {
    let diags = analyze_source("crates/tpm/src/fixture.rs", "use utp_server::x;\n");
    let json = utp_analyze::diag::render_json(&diags);
    assert!(json.contains("\"lint\": \"tcb-boundary\""));
    assert!(json.contains("\"line\": 1"));
    assert!(json.contains("\"severity\": \"deny\""));
}
