//! Structured diagnostics and their text / JSON renderings.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; does not affect the exit code.
    Warn,
    /// Gate failure; `utp-analyze` exits non-zero if any remain.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One finding: file, line, which lint, severity, and an explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable lint identifier, e.g. `no-panic-in-tcb`.
    pub lint: &'static str,
    /// Gate or advisory.
    pub severity: Severity,
    /// Human-oriented explanation, including the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}",
            self.severity, self.file, self.line, self.lint, self.message
        )
    }
}

/// Renders diagnostics as line-oriented text, one finding per line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    let warns = diags.len() - denies;
    out.push_str(&format!("{denies} deny, {warns} warn\n"));
    out
}

/// Renders diagnostics as a JSON document (hand-rolled; the analyzer is
/// dependency-light by design).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}",
            escape_json(&d.file),
            d.line,
            escape_json(d.lint),
            d.severity,
            escape_json(&d.message),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    out.push_str(&format!(
        "],\n  \"deny_count\": {denies},\n  \"warn_count\": {}\n}}\n",
        diags.len() - denies
    ));
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            lint: "no-panic-in-tcb",
            severity: Severity::Deny,
            message: "don't \"panic\"".into(),
        }]
    }

    #[test]
    fn text_rendering_includes_location_and_counts() {
        let text = render_text(&sample());
        assert!(text.contains("crates/x/src/lib.rs:3"));
        assert!(text.contains("[no-panic-in-tcb]"));
        assert!(text.contains("1 deny, 0 warn"));
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let json = render_json(&sample());
        assert!(json.contains("\"deny_count\": 1"));
        assert!(json.contains("don't \\\"panic\\\""));
        assert!(json.contains("\"line\": 3"));
    }
}
