//! Measured boot: the static root of trust and its event log.
//!
//! Before any DRTM session happens, a TCG-style measured boot records the
//! platform's firmware and boot chain into the static PCRs (0–7) and logs
//! each event. The uni-directional trusted path deliberately does *not*
//! rely on these — that is its selling point, the static chain is huge and
//! unverifiable in practice — but a faithful platform has them, and the
//! experiments use the log to show the contrast: a verifier can replay
//! the DRTM chain from two measurements, while the static chain needs a
//! whole log of them.

use utp_crypto::sha1::{Sha1, Sha1Digest};

/// Standard static PCR assignments (TCG PC client spec, simplified).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BootStage {
    /// Core root of trust + BIOS (PCR 0).
    Bios,
    /// Option ROMs / platform config (PCR 1).
    PlatformConfig,
    /// Boot loader (PCR 4).
    BootLoader,
    /// OS kernel + initrd (PCR 8 by grub convention).
    Kernel,
}

impl BootStage {
    /// The PCR this stage extends.
    pub fn pcr(self) -> u32 {
        match self {
            BootStage::Bios => 0,
            BootStage::PlatformConfig => 1,
            BootStage::BootLoader => 4,
            BootStage::Kernel => 8,
        }
    }
}

/// One measured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootEvent {
    /// Which stage produced the measurement.
    pub stage: BootStage,
    /// Human-readable description (e.g. firmware version string).
    pub description: String,
    /// The measurement extended into the stage's PCR.
    pub measurement: Sha1Digest,
}

/// The boot event log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BootLog {
    events: Vec<BootEvent>,
}

impl BootLog {
    /// An empty log.
    pub fn new() -> Self {
        BootLog::default()
    }

    /// Records an event.
    pub fn record(
        &mut self,
        stage: BootStage,
        description: impl Into<String>,
        data: &[u8],
    ) -> Sha1Digest {
        let measurement = Sha1::digest(data);
        self.events.push(BootEvent {
            stage,
            description: description.into(),
            measurement,
        });
        measurement
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[BootEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was measured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the log: the PCR value each static PCR must hold if the
    /// log is truthful. Returns `(pcr_index, expected_value)` pairs in
    /// first-touched order.
    pub fn replay(&self) -> Vec<(u32, Sha1Digest)> {
        let mut out: Vec<(u32, Sha1Digest)> = Vec::new();
        for event in &self.events {
            let pcr = event.stage.pcr();
            let current = out
                .iter()
                .find(|(p, _)| *p == pcr)
                .map(|(_, v)| *v)
                .unwrap_or_else(Sha1Digest::zero);
            let next = Sha1::digest_concat(current.as_bytes(), event.measurement.as_bytes());
            match out.iter_mut().find(|(p, _)| *p == pcr) {
                Some(slot) => slot.1 = next,
                None => out.push((pcr, next)),
            }
        }
        out
    }
}

/// The default boot sequence a stock machine measures, parameterized by an
/// OS build identifier so "different OS" worlds measure differently.
pub fn standard_boot(os_build: &str) -> Vec<(BootStage, String, Vec<u8>)> {
    vec![
        (
            BootStage::Bios,
            "AMIBIOS 8.17 (2010-11-02)".to_string(),
            b"bios image v8.17".to_vec(),
        ),
        (
            BootStage::PlatformConfig,
            "setup defaults".to_string(),
            b"platform config block".to_vec(),
        ),
        (
            BootStage::BootLoader,
            "GRUB 1.98".to_string(),
            b"grub stage2".to_vec(),
        ),
        (
            BootStage::Kernel,
            format!("linux {}", os_build),
            format!("vmlinuz {}", os_build).into_bytes(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_matches_manual_chain() {
        let mut log = BootLog::new();
        let m1 = log.record(BootStage::Bios, "bios", b"bios bytes");
        let m2 = log.record(BootStage::Bios, "bios config", b"config bytes");
        let replayed = log.replay();
        let expected = Sha1::digest_concat(
            Sha1::digest_concat(Sha1Digest::zero().as_bytes(), m1.as_bytes()).as_bytes(),
            m2.as_bytes(),
        );
        assert_eq!(replayed, vec![(0, expected)]);
    }

    #[test]
    fn stages_map_to_distinct_pcrs() {
        let stages = [
            BootStage::Bios,
            BootStage::PlatformConfig,
            BootStage::BootLoader,
            BootStage::Kernel,
        ];
        let mut pcrs: Vec<u32> = stages.iter().map(|s| s.pcr()).collect();
        pcrs.dedup();
        assert_eq!(pcrs.len(), stages.len());
    }

    #[test]
    fn different_os_builds_replay_differently() {
        let mut a = BootLog::new();
        let mut b = BootLog::new();
        for (stage, desc, data) in standard_boot("2.6.32-generic") {
            a.record(stage, desc, &data);
        }
        for (stage, desc, data) in standard_boot("2.6.32-rootkit") {
            b.record(stage, desc, &data);
        }
        let pcr8 = |log: &BootLog| {
            log.replay()
                .into_iter()
                .find(|(p, _)| *p == 8)
                .map(|(_, v)| v)
        };
        assert_ne!(pcr8(&a), pcr8(&b));
        // But the firmware PCRs agree (same hardware).
        let pcr0 = |log: &BootLog| {
            log.replay()
                .into_iter()
                .find(|(p, _)| *p == 0)
                .map(|(_, v)| v)
        };
        assert_eq!(pcr0(&a), pcr0(&b));
    }

    #[test]
    fn empty_log_replays_empty() {
        assert!(BootLog::new().replay().is_empty());
        assert!(BootLog::new().is_empty());
    }
}
