//! `lock-discipline` — a lock-order graph over `Mutex`/`RwLock`
//! acquisitions, denying the two deadlock shapes PR 2's service layer
//! can exhibit:
//!
//! 1. **Inconsistent acquisition order.** Every acquisition made while
//!    another guard is held (directly, or transitively through calls)
//!    contributes an edge `held → acquired` to a global graph keyed by
//!    lock *field name*; any cycle is a deny at each participating
//!    site. Re-acquiring the same name while held is denied outright
//!    (`parking_lot` mutexes are not re-entrant: self-deadlock).
//! 2. **Guard held across a blocking channel op.** `send`/`recv` on
//!    the bounded crossbeam queues (plus `join`/`wait`/`park`/`sleep`)
//!    inside a guard's extent — directly or through a call — is a
//!    deny: a full queue would park the thread while every other shard
//!    client spins on the mutex. `try_send`/`try_recv` are fine.
//!
//! Guard extents: a `let`-bound guard lives to the end of its enclosing
//! block or an explicit `drop(guard)`; a temporary (`x.lock().f()`)
//! lives to the end of its statement. Keying by field name merges
//! same-named locks on different types — conservative, and the honest
//! choice for a lexer-level analyzer (documented in DESIGN.md).
//!
//! `shims/` are excluded as *subjects* (their internals implement the
//! blocking primitives out of locks and condvars — that is the point)
//! but still contribute callee summaries.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Severity;
use crate::graph::WorkspaceIndex;
use crate::lexer::TokenKind;
use crate::passes::{Finding, Pass};
use crate::source::SourceFile;

/// Method names that can block the calling thread.
const BLOCKING: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "send_timeout",
    "join",
    "wait",
    "park",
    "sleep",
];

/// One lock acquisition and its guard extent (token index range).
#[derive(Debug, Clone)]
struct Acquisition {
    name: String,
    line: u32,
    tok: usize,
    extent_end: usize,
}

/// Lock-order edges `(held, acquired)` mapped to their sites
/// `(file, line, fn_name)`.
type EdgeSites = BTreeMap<(String, String), Vec<(usize, u32, String)>>;

/// Per-function summary used transitively.
#[derive(Debug, Default, Clone)]
struct Summary {
    /// Lock names this fn (transitively) acquires.
    locks: BTreeSet<String>,
    /// A blocking op this fn (transitively) performs, if any.
    blocks: Option<String>,
}

/// The pass.
pub struct LockDiscipline;

impl Pass for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "consistent lock order; no guard held across blocking channel ops"
    }

    fn check_workspace(&self, ws: &WorkspaceIndex) -> Vec<(usize, Finding)> {
        let mut out = Vec::new();
        let per_fn: Vec<FnLocks> = (0..ws.fns.len()).map(|i| analyze_fn(ws, i)).collect();
        let summaries = transitive_summaries(ws, &per_fn);

        // Edges of the global lock-order graph, with their sites.
        let mut edges: EdgeSites = BTreeMap::new();

        for (idx, fl) in per_fn.iter().enumerate() {
            let fi = ws.fns[idx].file;
            if !subject(ws, idx) {
                continue;
            }
            let item = ws.fn_item(idx);
            for a in &fl.acquisitions {
                // Direct nested acquisitions.
                for b in &fl.acquisitions {
                    if b.tok <= a.tok || b.tok >= a.extent_end {
                        continue;
                    }
                    if b.name == a.name {
                        out.push((
                            fi,
                            Finding {
                                line: b.line,
                                severity: Severity::Deny,
                                message: format!(
                                    "`{}` re-acquires lock `{}` while its guard is still \
                                     held (parking_lot mutexes are not re-entrant: this \
                                     self-deadlocks); drop the first guard or merge the \
                                     critical sections",
                                    item.name, a.name
                                ),
                            },
                        ));
                    } else {
                        edges
                            .entry((a.name.clone(), b.name.clone()))
                            .or_default()
                            .push((fi, b.line, item.name.clone()));
                    }
                }
                // Direct blocking ops inside the extent.
                for (bi, (line, op)) in fl.blocking.iter().enumerate() {
                    let t = fl.blocking_toks[bi];
                    if t > a.tok && t < a.extent_end {
                        out.push((
                            fi,
                            Finding {
                                line: *line,
                                severity: Severity::Deny,
                                message: format!(
                                    "guard `{}` is held across blocking `.{}()` in `{}`; \
                                     a full/empty bounded channel parks this thread while \
                                     holding the lock — drop the guard before blocking",
                                    a.name, op, item.name
                                ),
                            },
                        ));
                    }
                }
                // Calls inside the extent: fold in callee summaries.
                for c in &item.calls {
                    if c.tok <= a.tok || c.tok >= a.extent_end || is_lock_method(&c.name) {
                        continue;
                    }
                    for &g in &ws.callees[idx] {
                        if ws.fn_item(g).name != c.name {
                            continue;
                        }
                        // A self-edge here is almost always name aliasing
                        // (`ledger.lock().register(..)` resolving to the
                        // caller's own `register`); direct recursion under
                        // a held lock is caught by the nested-acquisition
                        // check when the lock is re-taken inline.
                        if g == idx {
                            continue;
                        }
                        let s = &summaries[g];
                        if let Some(op) = &s.blocks {
                            out.push((
                                fi,
                                Finding {
                                    line: c.line,
                                    severity: Severity::Deny,
                                    message: format!(
                                        "guard `{}` is held across a call to `{}` which \
                                         may block (`{}`); drop the guard before calling",
                                        a.name, c.name, op
                                    ),
                                },
                            ));
                        }
                        for l in &s.locks {
                            if *l == a.name {
                                out.push((
                                    fi,
                                    Finding {
                                        line: c.line,
                                        severity: Severity::Deny,
                                        message: format!(
                                            "`{}` calls `{}` which re-acquires lock `{}` \
                                             already held here (self-deadlock)",
                                            item.name, c.name, a.name
                                        ),
                                    },
                                ));
                            } else {
                                edges.entry((a.name.clone(), l.clone())).or_default().push((
                                    fi,
                                    c.line,
                                    item.name.clone(),
                                ));
                            }
                        }
                    }
                }
            }
        }

        // Cycle detection over the order graph.
        let adj: BTreeMap<&String, BTreeSet<&String>> = {
            let mut m: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
            for (a, b) in edges.keys() {
                m.entry(a).or_default().insert(b);
            }
            m
        };
        for ((a, b), sites) in &edges {
            if reaches(&adj, b, a) {
                for (fi, line, fn_name) in sites {
                    out.push((
                        *fi,
                        Finding {
                            line: *line,
                            severity: Severity::Deny,
                            message: format!(
                                "lock-order cycle: `{a}` -> `{b}` (acquired `{b}` in \
                                 `{fn_name}` while holding `{a}`), but elsewhere `{a}` is \
                                 acquired while `{b}` is held; pick one global order",
                            ),
                        },
                    ));
                }
            }
        }
        out
    }
}

/// Is fn `idx` a subject for findings (vs summary-only)?
fn subject(ws: &WorkspaceIndex, idx: usize) -> bool {
    ws.is_live_fn(idx) && !ws.fn_path(idx).starts_with("shims/")
}

fn is_lock_method(name: &str) -> bool {
    name == "lock" || name == "read" || name == "write"
}

/// Per-fn raw lock facts.
#[derive(Debug, Default)]
struct FnLocks {
    acquisitions: Vec<Acquisition>,
    /// (line, op-name) of direct blocking calls.
    blocking: Vec<(u32, String)>,
    /// Token index of each blocking call, parallel to `blocking`.
    blocking_toks: Vec<usize>,
}

fn analyze_fn(ws: &WorkspaceIndex, idx: usize) -> FnLocks {
    let node = ws.fns[idx];
    let file = &ws.files[node.file];
    let item = &file.items.fns[node.item];
    let mut out = FnLocks::default();
    let Some((body_open, body_close)) = item.body else {
        return out;
    };
    let has_rwlock = file.tokens.iter().any(|t| t.is_ident("RwLock"));
    let depth = brace_depths(file);

    for c in &item.calls {
        if c.is_method && BLOCKING.contains(&c.name.as_str()) && !is_string_join(file, c) {
            out.blocking.push((c.line, c.name.clone()));
            out.blocking_toks.push(c.tok);
        }
        let is_acquire = c.is_method
            && c.args.0 == c.args.1
            && (c.name == "lock" || ((c.name == "read" || c.name == "write") && has_rwlock));
        if !is_acquire {
            continue;
        }
        // Lock name: the ident before the `.` preceding the method.
        let Some(recv) = c.tok.checked_sub(2).map(|r| &file.tokens[r]) else {
            continue;
        };
        if recv.kind != TokenKind::Ident {
            continue;
        }
        let extent_end = guard_extent(file, item, c, &depth, body_open, body_close);
        out.acquisitions.push(Acquisition {
            name: recv.text.clone(),
            line: c.line,
            tok: c.tok,
            extent_end,
        });
    }
    out
}

/// `v.join(", ")` string joins are not thread joins.
fn is_string_join(file: &SourceFile, c: &crate::items::CallSite) -> bool {
    c.name == "join"
        && file.tokens[c.args.0..c.args.1]
            .iter()
            .any(|t| t.kind == TokenKind::Str)
}

/// Brace depth per token.
fn brace_depths(file: &SourceFile) -> Vec<u32> {
    let mut depth = 0u32;
    file.tokens
        .iter()
        .map(|t| {
            if t.is_punct("{") {
                depth += 1;
                depth
            } else if t.is_punct("}") {
                let d = depth;
                depth = depth.saturating_sub(1);
                d
            } else {
                depth
            }
        })
        .collect()
}

/// End (exclusive token index) of the guard produced by acquisition `c`.
fn guard_extent(
    file: &SourceFile,
    item: &crate::items::FnItem,
    c: &crate::items::CallSite,
    depth: &[u32],
    body_open: usize,
    body_close: usize,
) -> usize {
    // Statement start: walk back to the nearest `;`, `{` or `}`.
    let mut s = c.tok;
    while s > body_open {
        let t = &file.tokens[s - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        s -= 1;
    }
    // `foo.lock().method(..)` — the guard is a temporary consumed by the
    // chained call; any surrounding `let` binds the chain's result, not
    // the guard, so the guard still dies at the statement's `;`.
    let chained = file
        .tokens
        .get(c.args.1 + 1)
        .is_some_and(|t| t.is_punct("."));
    let mut k = s;
    let bound_var = if !chained && file.tokens[k].is_ident("let") {
        k += 1;
        if file.tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        file.tokens
            .get(k)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
    } else {
        None
    };
    match bound_var {
        Some(var) => {
            // To the end of the enclosing block, or an explicit drop(var).
            let mut end = enclosing_block_end(file, c.tok, depth, body_close);
            for d in &item.calls {
                if d.name == "drop"
                    && !d.is_method
                    && d.tok > c.tok
                    && d.tok < end
                    && d.args.1 == d.args.0 + 1
                    && file.tokens[d.args.0].is_ident(&var)
                {
                    end = d.tok;
                    break;
                }
            }
            end
        }
        None => {
            // Temporary guard: to the statement's `;` at this depth.
            let d = depth[c.tok];
            let mut j = c.args.1;
            while j <= body_close {
                let t = &file.tokens[j];
                if t.is_punct(";") && depth[j] <= d {
                    return j;
                }
                if t.is_punct("}") && depth[j] <= d {
                    return j;
                }
                j += 1;
            }
            body_close
        }
    }
}

/// Token index of the `}` closing the innermost block containing `tok`.
fn enclosing_block_end(file: &SourceFile, tok: usize, depth: &[u32], body_close: usize) -> usize {
    let d = depth[tok];
    let mut j = tok + 1;
    while j <= body_close {
        if file.tokens[j].is_punct("}") && depth[j] <= d {
            return j;
        }
        j += 1;
    }
    body_close
}

/// Fixpoint of per-fn summaries over the call graph.
fn transitive_summaries(ws: &WorkspaceIndex, per_fn: &[FnLocks]) -> Vec<Summary> {
    let mut sums: Vec<Summary> = per_fn
        .iter()
        .map(|fl| Summary {
            locks: fl.acquisitions.iter().map(|a| a.name.clone()).collect(),
            blocks: fl.blocking.first().map(|(_, op)| op.clone()),
        })
        .collect();
    loop {
        let mut changed = false;
        for idx in 0..ws.fns.len() {
            for &g in &ws.callees[idx] {
                if g == idx {
                    continue;
                }
                let (callee_locks, callee_blocks) = (sums[g].locks.clone(), sums[g].blocks.clone());
                let me = &mut sums[idx];
                for l in callee_locks {
                    if me.locks.insert(l) {
                        changed = true;
                    }
                }
                if me.blocks.is_none() {
                    if let Some(op) = callee_blocks {
                        me.blocks = Some(op);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return sums;
        }
    }
}

/// Is `to` reachable from `from` in the order graph?
fn reaches(adj: &BTreeMap<&String, BTreeSet<&String>>, from: &String, to: &String) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(cur) = stack.pop() {
        if cur == to {
            return true;
        }
        if !seen.insert(cur.clone()) {
            continue;
        }
        if let Some(next) = adj.get(cur) {
            stack.extend(next.iter().copied());
        }
    }
    false
}
