//! Exhaustive state-machine exploration of the verifier's nonce
//! lifecycle — a miniature model check: for every sequence of operations
//! up to a bounded depth, the verifier must uphold its invariants:
//!
//! 1. a nonce verifies successfully **at most once** (no double settle);
//! 2. a nonce never verifies after expiry;
//! 3. an unissued nonce never verifies;
//! 4. accepted count == number of distinct nonces that reached a
//!    successful verify.

use std::time::Duration;
use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::{ConfirmMode, Evidence, Transaction};
use utp::core::verifier::Verifier;
use utp::platform::machine::{Machine, MachineConfig};

/// The operations the model explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Issue a new request and immediately confirm it (producing evidence
    /// held for later submission).
    IssueAndConfirm,
    /// Submit the oldest unsubmitted evidence.
    SubmitNext,
    /// Re-submit the most recently submitted evidence (replay).
    ReplayLast,
    /// Advance time beyond the nonce TTL.
    Expire,
}

const OPS: [Op; 4] = [
    Op::IssueAndConfirm,
    Op::SubmitNext,
    Op::ReplayLast,
    Op::Expire,
];

struct ModelState {
    verifier: Verifier,
    machine: Machine,
    client: Client,
    queue: Vec<Evidence>,
    submitted: Vec<Evidence>,
    tx_counter: u64,
    successes: u64,
}

impl ModelState {
    fn new(seed: u64) -> Self {
        let ca = PrivacyCa::new(512, seed);
        let verifier = Verifier::new(ca.public_key().clone(), seed + 1);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(seed + 2));
        let enrollment = ca.enroll(&mut machine);
        let client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        ModelState {
            verifier,
            machine,
            client,
            queue: Vec::new(),
            submitted: Vec::new(),
            tx_counter: 0,
            successes: 0,
        }
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::IssueAndConfirm => {
                self.tx_counter += 1;
                let tx = Transaction::new(self.tx_counter, "shop.example", 100, "EUR", "");
                let request = self.verifier.issue_request_with_mode(
                    tx.clone(),
                    ConfirmMode::PressEnter,
                    self.machine.now(),
                );
                let mut human = ConfirmingHuman::new(Intent::approving(&tx), self.tx_counter);
                let evidence = self
                    .client
                    .confirm(&mut self.machine, &request, &mut human)
                    .expect("confirmation runs");
                self.queue.push(evidence);
            }
            Op::SubmitNext => {
                if self.queue.is_empty() {
                    return;
                }
                let evidence = self.queue.remove(0);
                if self.verifier.verify(&evidence, self.machine.now()).is_ok() {
                    self.successes += 1;
                }
                self.submitted.push(evidence);
            }
            Op::ReplayLast => {
                if let Some(evidence) = self.submitted.last().cloned() {
                    // Invariant 1: replay must never succeed.
                    assert!(
                        self.verifier.verify(&evidence, self.machine.now()).is_err(),
                        "replay accepted"
                    );
                }
            }
            Op::Expire => {
                self.machine.advance(Duration::from_secs(301));
                // Invariant 2: everything queued is now expired.
                for evidence in std::mem::take(&mut self.queue) {
                    assert!(
                        self.verifier.verify(&evidence, self.machine.now()).is_err(),
                        "expired nonce accepted"
                    );
                    self.submitted.push(evidence);
                }
            }
        }
        // Invariant 4 (continuously): verifier stats agree with the model.
        assert_eq!(self.verifier.stats().accepted, self.successes);
    }
}

/// Enumerates every op sequence of length `depth` (4^depth worlds).
fn explore(depth: usize) {
    let sequences: u64 = (OPS.len() as u64).pow(depth as u32);
    for index in 0..sequences {
        let mut state = ModelState::new(10_000 + index);
        let mut rest = index;
        for _ in 0..depth {
            let op = OPS[(rest % OPS.len() as u64) as usize];
            rest /= OPS.len() as u64;
            state.apply(op);
        }
    }
}

#[test]
fn nonce_lifecycle_depth_3_exhaustive() {
    explore(3); // 64 worlds
}

#[test]
fn nonce_lifecycle_depth_4_exhaustive() {
    explore(4); // 256 worlds
}

#[test]
fn unissued_nonce_never_verifies() {
    // Invariant 3 directly: evidence answering a *different* verifier's
    // request is UnknownNonce here.
    let mut a = ModelState::new(99_000);
    let mut b = ModelState::new(99_100);
    a.apply(Op::IssueAndConfirm);
    let foreign = a.queue.pop().unwrap();
    assert!(b.verifier.verify(&foreign, b.machine.now()).is_err());
}
