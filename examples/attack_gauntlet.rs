//! Attack gauntlet: run the full transaction-generator arsenal against the
//! trusted path and watch each attack fail for a different, printed
//! reason.
//!
//! Run with: `cargo run --example attack_gauntlet`

use utp::attack::harness::run_trials;
use utp::attack::scenarios;

/// One gauntlet entry: name, narration, and the scenario to run.
type Attack = (&'static str, &'static str, fn(u64) -> bool);

fn main() {
    println!("== Transaction-generator gauntlet vs the trusted path ==\n");
    let trials = 5;

    let gauntlet: [Attack; 5] = [
        (
            "forged quote",
            "malware fabricates a Confirmed token and quotes PCR 17 from the OS \
             (locality 0) — it cannot reset PCR 17, so the quote attests garbage",
            scenarios::attack_utp_forged_quote,
        ),
        (
            "evil PAL",
            "malware SKINITs its own auto-confirming PAL — launch succeeds, but \
             PCR 17 now measures the evil PAL and no provider trusts it",
            scenarios::attack_utp_evil_pal,
        ),
        (
            "evidence replay",
            "malware replays a genuine purchase's evidence — the nonce was \
             already consumed",
            scenarios::attack_utp_replay,
        ),
        (
            "keystroke injection",
            "malware pre-loads fake Enter presses and launches the real PAL — \
             the keyboard flushes on handover and rejects software injection, \
             so the PAL times out",
            scenarios::attack_utp_key_injection,
        ),
        (
            "vigilant-human swap",
            "malware swaps the payee before the PAL launches — the PAL \
             faithfully displays the attacker's payee and the human rejects",
            |s| scenarios::attack_utp_mitm_swap(1.0, s),
        ),
    ];

    for (name, how, attack) in gauntlet {
        let r = run_trials(trials, 0xBAD, attack);
        println!("[{name}]");
        println!("   {how}");
        println!(
            "   result: {}/{} attempts settled a transaction  → {}\n",
            r.successes,
            r.attempts,
            if r.successes == 0 {
                "DEFEATED"
            } else {
                "BREACH!"
            }
        );
        assert_eq!(r.successes, 0, "{} must not succeed", name);
    }

    let careless = run_trials(20, 0xCAFE, |s| scenarios::attack_utp_mitm_swap(0.0, s));
    println!("[careless-human swap]");
    println!("   same swap, but the human never reads the screen");
    println!(
        "   result: {}/{} settled — the residual risk the paper documents:\n   \
         the human *is* the display verifier on a uni-directional path.",
        careless.successes, careless.attempts
    );

    let legit = run_trials(10, 0xFEED, scenarios::legitimate_transaction);
    println!(
        "\n[control] legitimate purchases still settle: {}/{}",
        legit.successes, legit.attempts
    );
}
