//! Bounded drop-oldest ring of trace records — the per-thread flight
//! recorder's storage. A full ring never blocks and never reallocates
//! past its capacity: the oldest record is evicted and counted, so a
//! runaway emitter costs memory proportional to the cap, not the run.

use std::collections::VecDeque;

use crate::record::TraceRecord;

/// Default per-thread ring capacity (records, not bytes).
pub const DEFAULT_CAPACITY: usize = 4096;

/// A bounded FIFO of trace records with drop-oldest overflow.
#[derive(Debug)]
pub struct Ring {
    slots: VecDeque<TraceRecord>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    /// A ring holding at most `cap` records (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Ring {
        let cap = cap.max(1);
        Ring {
            slots: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.slots.len() == self.cap {
            self.slots.pop_front();
            self.dropped += 1;
        }
        self.slots.push_back(rec);
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records evicted by overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Moves all buffered records out, oldest first (drop count is kept).
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        self.slots.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::names;
    use std::time::Duration;

    fn rec(n: u64) -> TraceRecord {
        TraceRecord {
            ts: Duration::from_nanos(n),
            dur: None,
            track: "t".to_string(),
            name: names::TPM_CMD,
            fields: Vec::new(),
            volatile: false,
        }
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut ring = Ring::new(3);
        for n in 0..5 {
            ring.push(rec(n));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u128> = ring.drain().iter().map(|r| r.ts.as_nanos()).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest records evicted first");
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2, "drain keeps the drop count");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut ring = Ring::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(rec(1));
        ring.push(rec(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }
}
