//! The discrete-event core: a binary-heap event queue keyed on virtual
//! time with stable tie-breaking.
//!
//! Determinism contract: two events scheduled for the same virtual
//! instant pop in the order they were scheduled (each entry carries a
//! monotonically increasing sequence number that breaks ties). The
//! queue never reads the host clock — `now` only moves when the caller
//! pops, and only forward.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

/// One scheduled entry. Ordered by `(at, seq)` only; the payload does
/// not participate in the ordering.
struct Entry<T> {
    at: Duration,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest
        // `(at, seq)` on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A virtual-time event queue.
///
/// `schedule` accepts any time at or after `now`; a time in the past
/// is clamped to `now` (the event fires immediately, after everything
/// already due) rather than rewinding the clock.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: Duration,
}

impl<T> EventQueue<T> {
    /// An empty queue at virtual time zero.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Duration::ZERO,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> Duration {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at virtual time `at` (clamped to `now`).
    pub fn schedule(&mut self, at: Duration, payload: T) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedules `payload` at `now + delay`.
    pub fn schedule_in(&mut self, delay: Duration, payload: T) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Duration, T)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "virtual time went backwards");
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(ms(30), "c");
        q.schedule(ms(10), "a");
        q.schedule(ms(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(ms(5), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn now_advances_monotonically_and_past_is_clamped() {
        let mut q = EventQueue::new();
        q.schedule(ms(10), 1);
        assert_eq!(q.pop(), Some((ms(10), 1)));
        assert_eq!(q.now(), ms(10));
        q.schedule(ms(3), 2); // in the past: clamps to now
        assert_eq!(q.pop(), Some((ms(10), 2)));
        assert_eq!(q.now(), ms(10));
        q.schedule_in(ms(7), 3);
        assert_eq!(q.pop(), Some((ms(17), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_stable() {
        let mut q = EventQueue::new();
        q.schedule(ms(1), 10);
        q.schedule(ms(2), 20);
        assert_eq!(q.pop(), Some((ms(1), 10)));
        q.schedule(ms(2), 21); // same instant as the pending 20: pops after it
        q.schedule(ms(2), 22);
        assert_eq!(q.pop(), Some((ms(2), 20)));
        assert_eq!(q.pop(), Some((ms(2), 21)));
        assert_eq!(q.pop(), Some((ms(2), 22)));
    }
}
