//! A small forward dataflow framework over [`crate::cfg::Cfg`].
//!
//! Passes define a [`Lattice`] (their per-program-point abstract state)
//! and a transfer function over statements; [`solve`] runs a worklist
//! to a fixpoint and returns each block's *entry* state. Passes then
//! re-walk each reached block from its entry state, checking sinks at
//! the pre-state of every statement and re-applying the transfer.
//!
//! Entry states are `Option<L>` with `None` meaning "not reached yet":
//! this avoids inventing an artificial top element and naturally leaves
//! unreachable blocks (code after `return`, loop-less `break` targets)
//! unanalyzed — dead code cannot execute, so it produces no findings.
//!
//! Termination: the lattices used here are finite-height maps from
//! local names to small enums, and `join` only ever adds information,
//! so every edge is re-processed a bounded number of times.

use crate::cfg::{Cfg, Stmt};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// A join-semilattice. `join_from` merges `other` into `self` and
/// reports whether `self` changed (drives worklist convergence).
pub trait Lattice: Clone + PartialEq {
    fn join_from(&mut self, other: &Self) -> bool;
}

/// Runs a forward worklist fixpoint. `init` seeds the entry block;
/// `transfer` mutates the state across one statement. Returns the
/// entry state of every block (`None` = unreachable).
pub fn solve<L, F>(cfg: &Cfg, init: L, mut transfer: F) -> Vec<Option<L>>
where
    L: Lattice,
    F: FnMut(&Stmt, &mut L),
{
    let mut entries: Vec<Option<L>> = vec![None; cfg.blocks.len()];
    entries[cfg.entry] = Some(init);
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut queued = vec![false; cfg.blocks.len()];
    queue.push_back(cfg.entry);
    queued[cfg.entry] = true;

    while let Some(b) = queue.pop_front() {
        queued[b] = false;
        let Some(entry) = entries[b].clone() else {
            continue;
        };
        let mut state = entry;
        for s in &cfg.blocks[b].stmts {
            transfer(s, &mut state);
        }
        for &succ in &cfg.blocks[b].succs {
            let changed = match &mut entries[succ] {
                Some(existing) => existing.join_from(&state),
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
            };
            if changed && !queued[succ] {
                queue.push_back(succ);
                queued[succ] = true;
            }
        }
    }
    entries
}

/// A map lattice from local names to a value lattice. Keys present in
/// only one operand keep their value (a local bound on one path keeps
/// its state; Rust scoping prevents use of a local that was bound on
/// neither path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinMap<V: Lattice>(pub BTreeMap<String, V>);

impl<V: Lattice> Default for JoinMap<V> {
    fn default() -> Self {
        JoinMap(BTreeMap::new())
    }
}

impl<V: Lattice> Lattice for JoinMap<V> {
    fn join_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in &other.0 {
            match self.0.get_mut(k) {
                Some(mine) => changed |= mine.join_from(v),
                None => {
                    self.0.insert(k.clone(), v.clone());
                    changed = true;
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::lexer::lex;

    /// Reaching-taint toy lattice: a local is tainted once `poison` is
    /// assigned to it, cleared when `scrub(x)` runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum T {
        Clean,
        Tainted,
    }
    impl Lattice for T {
        fn join_from(&mut self, other: &Self) -> bool {
            if *self == T::Clean && *other == T::Tainted {
                *self = T::Tainted;
                true
            } else {
                false
            }
        }
    }

    fn run(
        src: &str,
    ) -> (
        Vec<crate::lexer::Token>,
        crate::cfg::Cfg,
        Vec<Option<JoinMap<T>>>,
    ) {
        let lexed = lex(src);
        let items = crate::items::parse_items(&lexed.tokens);
        let body = items.fns[0].body.expect("fn body");
        let cfg = build_cfg(&lexed.tokens, body);
        let toks = lexed.tokens.clone();
        let entries = solve(&cfg, JoinMap::default(), |s, env| {
            let t: Vec<&str> = toks[s.lo..s.hi].iter().map(|t| t.text.as_str()).collect();
            // `let x = poison ...` / `x = poison ...` taints x; `scrub(x)` clears.
            if t.first() == Some(&"let") && t.len() >= 4 && t[2] == "=" {
                let v = if t.contains(&"poison") {
                    T::Tainted
                } else {
                    T::Clean
                };
                env.0.insert(t[1].to_string(), v);
            } else if t.len() >= 3 && t[1] == "=" {
                let v = if t.contains(&"poison") {
                    T::Tainted
                } else {
                    T::Clean
                };
                env.0.insert(t[0].to_string(), v);
            } else if t.first() == Some(&"scrub") && t.len() >= 4 {
                env.0.insert(t[2].to_string(), T::Clean);
            }
        });
        (lexed.tokens, cfg, entries)
    }

    /// Entry state of the block containing the `sink(...)` call.
    fn state_at_sink(
        toks: &[crate::lexer::Token],
        cfg: &crate::cfg::Cfg,
        entries: &[Option<JoinMap<T>>],
        var: &str,
    ) -> Option<T> {
        for (i, b) in cfg.blocks.iter().enumerate() {
            for s in &b.stmts {
                if toks[s.lo..s.hi].iter().any(|t| t.is_ident("sink")) {
                    return entries[i].as_ref().and_then(|e| e.0.get(var).copied());
                }
            }
        }
        panic!("no sink in fixture");
    }

    #[test]
    fn straight_line_kill_reaches_fixpoint() {
        // The sink sits behind a branch so its block's *entry* state
        // reflects the straight-line gen-then-kill sequence before it.
        let (toks, cfg, entries) =
            run("fn f(c: bool) { let x = poison; scrub(x); if c { sink(x); } }");
        assert_eq!(state_at_sink(&toks, &cfg, &entries, "x"), Some(T::Clean));
    }

    #[test]
    fn branch_join_is_the_union() {
        // Tainted on one path, scrubbed on the other: the join must be
        // Tainted (may-analysis).
        let (toks, cfg, entries) =
            run("fn f(c: bool) { let x = poison; if c { scrub(x); } else { other(); } sink(x); }");
        assert_eq!(state_at_sink(&toks, &cfg, &entries, "x"), Some(T::Tainted));
    }

    #[test]
    fn kill_on_both_branches_clears() {
        let (toks, cfg, entries) =
            run("fn f(c: bool) { let x = poison; if c { scrub(x); } else { scrub(x); } sink(x); }");
        assert_eq!(state_at_sink(&toks, &cfg, &entries, "x"), Some(T::Clean));
    }

    #[test]
    fn loop_back_edge_propagates_taint() {
        // x starts clean, is poisoned inside the loop: the loop head's
        // fixpoint (and thus the sink after a later iteration's body)
        // must see the taint flowing around the back edge.
        let (toks, cfg, entries) =
            run("fn f() { let x = fine; loop { sink(x); x = poison; if done() { break; } } }");
        assert_eq!(state_at_sink(&toks, &cfg, &entries, "x"), Some(T::Tainted));
    }

    #[test]
    fn unreachable_blocks_stay_none() {
        let lexed = lex("fn f() { return; sink(x); }");
        let items = crate::items::parse_items(&lexed.tokens);
        let cfg = build_cfg(&lexed.tokens, items.fns[0].body.unwrap());
        let entries = solve(&cfg, JoinMap::<T>::default(), |_, _| {});
        let toks = &lexed.tokens;
        for (i, b) in cfg.blocks.iter().enumerate() {
            for s in &b.stmts {
                if toks[s.lo..s.hi].iter().any(|t| t.is_ident("sink")) {
                    assert!(entries[i].is_none(), "dead code is not analyzed");
                }
            }
        }
    }
}
