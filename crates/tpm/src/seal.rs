//! PCR-bound sealed storage (`TPM_Seal` / `TPM_Unseal`).
//!
//! A sealed blob can only be opened by *this* TPM and only while the
//! selected PCRs hold the values specified at seal time. Flicker-style PALs
//! use this to keep state across sessions: data sealed to "PCR 17 =
//! measurement of me" can be unsealed only by the same PAL after a genuine
//! DRTM launch.
//!
//! The model encrypts with a keystream derived from an in-TPM secret via
//! HMAC-SHA256 in counter mode and authenticates with HMAC-SHA256 over the
//! whole structure (encrypt-then-MAC). A real TPM 1.2 wraps with the SRK
//! RSA key; the substitution keeps the *policy* semantics identical —
//! unsealing requires the same chip and matching PCRs — which is the
//! property the trusted path uses.

use crate::error::TpmError;
use crate::pcr::PcrSelection;
use utp_crypto::hmac::hmac_sha256;
use utp_crypto::sha1::Sha1Digest;

/// A sealed blob as returned by `TPM_Seal`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// PCRs whose values gate unsealing.
    pub selection: PcrSelection,
    /// Composite digest required at release time.
    pub digest_at_release: Sha1Digest,
    /// Composite digest observed at creation (informational, part of the
    /// real TPM structure; lets auditors see the sealing environment).
    pub digest_at_creation: Sha1Digest,
    /// Random IV for the keystream.
    pub iv: [u8; 16],
    /// Ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC over everything above, keyed by the TPM-internal secret.
    pub mac: [u8; 32],
}

impl SealedBlob {
    /// Serializes for transport / storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.selection.to_wire());
        out.extend_from_slice(self.digest_at_release.as_bytes());
        out.extend_from_slice(self.digest_at_creation.as_bytes());
        out.extend_from_slice(&self.iv);
        out.extend_from_slice(&(self.ciphertext.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.ciphertext);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses the encoding from [`SealedBlob::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let (selection, mut off) = PcrSelection::from_wire(data).ok()?;
        let digest_at_release = Sha1Digest::from_slice(data.get(off..off + 20)?)?;
        off += 20;
        let digest_at_creation = Sha1Digest::from_slice(data.get(off..off + 20)?)?;
        off += 20;
        let iv: [u8; 16] = data.get(off..off + 16)?.try_into().ok()?;
        off += 16;
        let len = u32::from_be_bytes(data.get(off..off + 4)?.try_into().ok()?) as usize;
        off += 4;
        let ciphertext = data.get(off..off + len)?.to_vec();
        off += len;
        let mac: [u8; 32] = data.get(off..off + 32)?.try_into().ok()?;
        off += 32;
        if off != data.len() {
            return None;
        }
        Some(SealedBlob {
            selection,
            digest_at_release,
            digest_at_creation,
            iv,
            ciphertext,
            mac,
        })
    }

    /// The bytes covered by the MAC.
    pub(crate) fn mac_input(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.selection.to_wire());
        buf.extend_from_slice(self.digest_at_release.as_bytes());
        buf.extend_from_slice(self.digest_at_creation.as_bytes());
        buf.extend_from_slice(&self.iv);
        buf.extend_from_slice(&self.ciphertext);
        buf
    }
}

/// XORs `data` with a keystream derived from `secret` and `iv`
/// (HMAC-SHA256 counter mode). Symmetric: applying twice decrypts.
pub(crate) fn keystream_xor(secret: &[u8], iv: &[u8; 16], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (counter, chunk) in data.chunks(32).enumerate() {
        let mut block_input = Vec::with_capacity(24);
        block_input.extend_from_slice(iv);
        block_input.extend_from_slice(&(counter as u64).to_be_bytes());
        let block = hmac_sha256(secret, &block_input);
        out.extend(chunk.iter().zip(block.as_bytes()).map(|(&d, &k)| d ^ k));
    }
    out
}

/// Computes the blob MAC.
pub(crate) fn blob_mac(secret: &[u8], blob: &SealedBlob) -> [u8; 32] {
    *hmac_sha256(secret, &blob.mac_input()).as_bytes()
}

/// Checks a blob's MAC.
pub(crate) fn check_blob(secret: &[u8], blob: &SealedBlob) -> Result<(), TpmError> {
    let expect = blob_mac(secret, blob);
    if !utp_crypto::ct::ct_eq(&expect, &blob.mac) {
        return Err(TpmError::BadBlob);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcr::PcrIndex;

    fn blob() -> SealedBlob {
        SealedBlob {
            selection: PcrSelection::of(&[PcrIndex::drtm()]),
            digest_at_release: Sha1Digest::zero(),
            digest_at_creation: Sha1Digest::ones(),
            iv: [7u8; 16],
            ciphertext: vec![1, 2, 3, 4, 5],
            mac: [0u8; 32],
        }
    }

    #[test]
    fn byte_roundtrip() {
        let b = blob();
        assert_eq!(SealedBlob::from_bytes(&b.to_bytes()).unwrap(), b);
    }

    #[test]
    fn parse_rejects_truncation_and_trailing() {
        let bytes = blob().to_bytes();
        assert!(SealedBlob::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(SealedBlob::from_bytes(&extended).is_none());
    }

    #[test]
    fn keystream_is_symmetric_and_iv_sensitive() {
        let secret = b"tpm-internal-secret";
        let data = b"the PAL's persistent counter state";
        let ct = keystream_xor(secret, &[1u8; 16], data);
        assert_ne!(&ct[..], &data[..]);
        assert_eq!(keystream_xor(secret, &[1u8; 16], &ct), data);
        let ct2 = keystream_xor(secret, &[2u8; 16], data);
        assert_ne!(ct, ct2);
    }

    #[test]
    fn keystream_handles_non_block_lengths() {
        let secret = b"s";
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            let data = vec![0xA5u8; len];
            let ct = keystream_xor(secret, &[9u8; 16], &data);
            assert_eq!(ct.len(), len);
            assert_eq!(keystream_xor(secret, &[9u8; 16], &ct), data);
        }
    }

    #[test]
    fn mac_detects_tampering() {
        let secret = b"k";
        let mut b = blob();
        b.mac = blob_mac(secret, &b);
        check_blob(secret, &b).unwrap();
        b.ciphertext[0] ^= 1;
        assert_eq!(check_blob(secret, &b).unwrap_err(), TpmError::BadBlob);
    }

    #[test]
    fn mac_is_secret_specific() {
        let mut b = blob();
        b.mac = blob_mac(b"tpm-a", &b);
        assert!(check_blob(b"tpm-b", &b).is_err());
    }
}
