//! Flicker-style isolated execution sessions.
//!
//! The paper builds its trusted path on McCune et al.'s *Flicker*: a tiny
//! Piece of Application Logic (**PAL**) runs with the OS suspended, inside
//! the protections of a DRTM late launch, and the TPM's dynamic PCR 17
//! records exactly what ran. This crate provides:
//!
//! * [`pal`] — the [`pal::Pal`] trait, the restricted environment a PAL
//!   executes in ([`pal::PalEnv`]), and the [`pal::Operator`] hook through
//!   which the (simulated) human answers the PAL's prompts;
//! * [`runtime`] — the session executor: SKINIT, run the PAL, bind its
//!   input/output into PCR 17, optionally quote, resume the OS, and report
//!   a per-phase timing breakdown (the paper's session latency table);
//! * [`state`] — rollback-protected sealed storage for PAL state across
//!   sessions (sealed blob + TPM monotonic counter);
//! * [`attestation`] — verifier-side reconstruction of the expected PCR 17
//!   value from a PAL measurement and an I/O digest;
//! * [`marshal`] — length-prefixed encoding helpers shared by PAL
//!   input/output structures.
//!
//! # Example
//!
//! ```
//! use utp_flicker::pal::{Pal, PalEnv, PalError, ScriptedOperator};
//! use utp_flicker::runtime::{run_pal, AttestSpec};
//! use utp_platform::machine::{Machine, MachineConfig};
//! use utp_tpm::pcr::PcrSelection;
//!
//! struct Echo;
//! impl Pal for Echo {
//!     fn image(&self) -> &[u8] { b"echo-pal-v1" }
//!     fn invoke(&mut self, _env: &mut PalEnv<'_, '_>, input: &[u8])
//!         -> Result<Vec<u8>, PalError> { Ok(input.to_vec()) }
//! }
//!
//! let mut machine = Machine::new(MachineConfig::fast_for_tests(1));
//! let aik = machine.tpm_provision().make_identity();
//! let nonce = utp_crypto::sha1::Sha1::digest(b"server nonce");
//! let mut op = ScriptedOperator::silent();
//! let report = run_pal(
//!     &mut machine,
//!     &mut Echo,
//!     b"hello",
//!     &mut op,
//!     Some(AttestSpec { aik_handle: aik, nonce, selection: PcrSelection::drtm_only() }),
//! ).unwrap();
//! assert_eq!(report.output, b"hello");
//! assert!(report.quote.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod error;
pub mod marshal;
pub mod pal;
pub mod runtime;
pub mod state;

pub use error::FlickerError;
