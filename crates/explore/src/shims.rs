//! Deliberately buggy providers — the oracle's self-check.
//!
//! A model checker that never fires is indistinguishable from one that
//! checks nothing. Each shim here wraps the real stack and injects one
//! specific class of provider bug; the explorer MUST find a
//! counterexample against every one of them, and the counterexample
//! must shrink to the pinned minimal schedule. The injected bugs map
//! one-to-one onto oracle invariants:
//!
//! * [`DoubleSettleShim`] — settles twice on one evidence
//!   (`balance-conservation`).
//! * [`ForgottenOrderShim`] — recovery drops the latest settlement
//!   (`recovery-matches-durable`).
//! * [`AuditTruncationShim`] — the audit log silently sheds its oldest
//!   entry (`audit-append-only`).

use std::time::Duration;

use utp_core::protocol::Evidence;
use utp_core::verifier::VerifyError;
use utp_journal::RecoveryReport;
use utp_server::store::OrderStatus;

use crate::action::CrashKind;
use crate::sut::{Fork, RealSystem, StateView, System};

/// A provider that debits an account twice per successful settlement —
/// the classic lost-idempotency bug.
#[derive(Debug)]
pub struct DoubleSettleShim {
    inner: RealSystem,
}

impl DoubleSettleShim {
    /// Wraps the real stack.
    pub fn new(inner: RealSystem) -> Self {
        DoubleSettleShim { inner }
    }
}

impl System for DoubleSettleShim {
    fn submit(
        &mut self,
        order_id: u64,
        evidence: &Evidence,
        now: Duration,
    ) -> Result<(), VerifyError> {
        let result = self.inner.submit(order_id, evidence, now);
        if result.is_ok() {
            // Bug: settle runs a second time. `try_settle` debits
            // unconditionally, so the account pays twice.
            self.inner.provider_mut().store_mut().try_settle(order_id);
        }
        result
    }

    fn crash_recover(&mut self, kind: &CrashKind) -> RecoveryReport {
        self.inner.crash_recover(kind)
    }

    fn checkpoint(&mut self) {
        self.inner.checkpoint();
    }

    fn view(&self) -> StateView {
        self.inner.view()
    }
}

impl Fork for DoubleSettleShim {
    fn fork(&self) -> Self {
        DoubleSettleShim {
            inner: self.inner.fork(),
        }
    }
}

/// A provider whose recovery "forgets" the most recent settlement: the
/// order comes back pending and the debit is refunded, even though the
/// WAL acknowledged it. Balances stay conserved — only the
/// durable-consistency invariant can catch this one.
#[derive(Debug)]
pub struct ForgottenOrderShim {
    inner: RealSystem,
}

impl ForgottenOrderShim {
    /// Wraps the real stack.
    pub fn new(inner: RealSystem) -> Self {
        ForgottenOrderShim { inner }
    }
}

impl System for ForgottenOrderShim {
    fn submit(
        &mut self,
        order_id: u64,
        evidence: &Evidence,
        now: Duration,
    ) -> Result<(), VerifyError> {
        self.inner.submit(order_id, evidence, now)
    }

    fn crash_recover(&mut self, kind: &CrashKind) -> RecoveryReport {
        let report = self.inner.crash_recover(kind);
        // Bug: after replaying the WAL, the highest-id confirmed order
        // is quietly reset to pending and its debit refunded.
        let store = self.inner.provider_mut().store_mut();
        let forgotten = store
            .orders()
            .filter(|(_, o)| o.status == OrderStatus::Confirmed)
            .map(|(id, o)| (*id, o.clone()))
            .max_by_key(|(id, _)| *id);
        if let Some((id, mut order)) = forgotten {
            let refund = order.transaction.amount_cents as i64;
            let balance = store
                .account(&order.account)
                .map(|a| a.balance_cents)
                .unwrap_or(0);
            order.status = OrderStatus::Pending;
            let account = order.account.clone();
            store.restore_order(id, order);
            store.open_account(account, balance + refund);
        }
        report
    }

    fn checkpoint(&mut self) {
        self.inner.checkpoint();
    }

    fn view(&self) -> StateView {
        self.inner.view()
    }
}

impl Fork for ForgottenOrderShim {
    fn fork(&self) -> Self {
        ForgottenOrderShim {
            inner: self.inner.fork(),
        }
    }
}

/// A provider whose audit log caps itself by discarding the *oldest*
/// entry once a second decision lands — history rewritten in place.
#[derive(Debug)]
pub struct AuditTruncationShim {
    inner: RealSystem,
}

impl AuditTruncationShim {
    /// Wraps the real stack.
    pub fn new(inner: RealSystem) -> Self {
        AuditTruncationShim { inner }
    }
}

impl System for AuditTruncationShim {
    fn submit(
        &mut self,
        order_id: u64,
        evidence: &Evidence,
        now: Duration,
    ) -> Result<(), VerifyError> {
        self.inner.submit(order_id, evidence, now)
    }

    fn crash_recover(&mut self, kind: &CrashKind) -> RecoveryReport {
        self.inner.crash_recover(kind)
    }

    fn checkpoint(&mut self) {
        self.inner.checkpoint();
    }

    fn view(&self) -> StateView {
        let mut view = self.inner.view();
        // Bug: the observable audit history drops its oldest entry as
        // soon as there is more than one.
        if view.audit.len() >= 2 {
            view.audit.remove(0);
        }
        view
    }
}

impl Fork for AuditTruncationShim {
    fn fork(&self) -> Self {
        AuditTruncationShim {
            inner: self.inner.fork(),
        }
    }
}
