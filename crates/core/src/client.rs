//! The client-side orchestrator.
//!
//! The untrusted OS half of the client: receives a [`TransactionRequest`],
//! launches the confirmation PAL through the Flicker runtime with an
//! attestation spec, and packages the resulting token + quote + AIK
//! certificate as [`Evidence`]. Nothing here is trusted by the provider —
//! if malware tampers with any of it, verification fails closed.

use crate::ca::Enrollment;
use crate::error::UtpError;
use crate::pal::ConfirmationPal;
use crate::protocol::{Evidence, TransactionRequest};
use utp_flicker::pal::Operator;
use utp_flicker::runtime::{run_pal, AttestSpec, SessionReport};
use utp_platform::machine::Machine;
use utp_tpm::pcr::PcrSelection;

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The PAL build this client ships.
    pub pal: ConfirmationPal,
}

impl ClientConfig {
    /// The canonical v1 PAL.
    pub fn fast_for_tests() -> Self {
        ClientConfig {
            pal: ConfirmationPal::v1(),
        }
    }
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self::fast_for_tests()
    }
}

/// The client orchestrator.
#[derive(Debug, Clone)]
pub struct Client {
    config: ClientConfig,
    enrollment: Enrollment,
}

impl Client {
    /// Creates a client from its PAL build and CA enrollment.
    pub fn new(config: ClientConfig, enrollment: Enrollment) -> Self {
        Client { config, enrollment }
    }

    /// The enrollment in use.
    pub fn enrollment(&self) -> &Enrollment {
        &self.enrollment
    }

    /// Runs the confirmation PAL for `request` and returns the evidence.
    ///
    /// # Errors
    ///
    /// Propagates launch/TPM/PAL failures as [`UtpError`].
    pub fn confirm(
        &mut self,
        machine: &mut Machine,
        request: &TransactionRequest,
        operator: &mut dyn Operator,
    ) -> Result<Evidence, UtpError> {
        Ok(self.confirm_with_report(machine, request, operator)?.0)
    }

    /// Like [`Client::confirm`] but also returns the session report with
    /// the per-phase timing breakdown (used by the latency experiments).
    pub fn confirm_with_report(
        &mut self,
        machine: &mut Machine,
        request: &TransactionRequest,
        operator: &mut dyn Operator,
    ) -> Result<(Evidence, SessionReport), UtpError> {
        let input = request.to_bytes();
        let mut pal = self.config.pal.clone();
        let report = run_pal(
            machine,
            &mut pal,
            &input,
            operator,
            Some(AttestSpec {
                aik_handle: self.enrollment.aik_handle,
                nonce: request.nonce,
                selection: PcrSelection::drtm_only(),
            }),
        )?;
        let quote = report.quote.clone().expect("attestation was requested");
        let evidence = Evidence {
            token_bytes: report.output.clone(),
            quote,
            aik_cert: self.enrollment.certificate.to_bytes(),
        };
        Ok((evidence, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::PrivacyCa;
    use crate::operator::{ConfirmingHuman, Intent};
    use crate::protocol::{ConfirmMode, Transaction, Verdict};
    use utp_platform::machine::{Machine, MachineConfig};

    fn setup() -> (PrivacyCa, Machine, Client) {
        let ca = PrivacyCa::new(512, 81);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(82));
        let enrollment = ca.enroll(&mut machine);
        let client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        (ca, machine, client)
    }

    fn request(tx: &Transaction) -> TransactionRequest {
        TransactionRequest {
            transaction: tx.clone(),
            nonce: utp_crypto::sha1::Sha1::digest(b"n"),
            mode: ConfirmMode::PressEnter,
        }
    }

    #[test]
    fn confirm_produces_well_formed_evidence() {
        let (_ca, mut machine, mut client) = setup();
        let tx = Transaction::new(1, "shop", 100, "EUR", "");
        let req = request(&tx);
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 83);
        let (evidence, report) = client
            .confirm_with_report(&mut machine, &req, &mut human)
            .unwrap();
        let token = evidence.token().unwrap();
        assert_eq!(token.verdict, Verdict::Confirmed);
        assert_eq!(token.tx_digest, tx.digest());
        assert_eq!(evidence.quote.external_data, req.nonce);
        assert_eq!(report.measurement, ConfirmationPal::v1().measurement());
        // Evidence survives its wire encoding.
        let parsed = Evidence::from_bytes(&evidence.to_bytes()).unwrap();
        assert_eq!(parsed, evidence);
    }

    #[test]
    fn report_contains_human_time() {
        let (_ca, mut machine, mut client) = setup();
        let tx = Transaction::new(2, "shop", 100, "EUR", "");
        let req = request(&tx);
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 84);
        let (_evidence, report) = client
            .confirm_with_report(&mut machine, &req, &mut human)
            .unwrap();
        assert!(report.timings.human > std::time::Duration::ZERO);
        assert!(report.timings.total() >= report.timings.human);
    }

    #[test]
    fn machine_is_usable_after_confirmation() {
        let (_ca, mut machine, mut client) = setup();
        let tx = Transaction::new(3, "shop", 100, "EUR", "");
        let req = request(&tx);
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 85);
        client.confirm(&mut machine, &req, &mut human).unwrap();
        assert!(!machine.in_secure_session());
        // A second confirmation on the same machine works.
        client.confirm(&mut machine, &req, &mut human).unwrap();
        assert_eq!(machine.skinit_count(), 2);
    }
}
