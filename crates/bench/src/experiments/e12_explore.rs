//! E12 — adversarial state-space exploration: coverage and cost.
//!
//! **Part A** runs the `utp-explore` bounded explorer against the real
//! journaled provider stack at increasing depth bounds and reports
//! coverage (distinct states, pruned transitions, deepest schedule) and
//! cost (invariant checks and host-measured checks/second — the one
//! wall-clock number here, since the explorer itself runs entirely on
//! the virtual clock and host time only prices the harness).
//!
//! **Part B** is the oracle's self-check: each deliberately buggy
//! provider shim must be caught, and its counterexample must shrink to
//! the pinned minimal schedule.
//!
//! Regenerate: `cargo run -p utp-bench --bin e12_explore`

use std::time::Instant;

use crate::table;
use utp_explore::{
    default_alphabet, explore, render_schedule, shrink, AuditTruncationShim, DoubleSettleShim,
    ExploreConfig, ForgottenOrderShim, Fork, Scenario, Strategy,
};

/// Scenario seed shared with the tier-1 exploration tests.
pub const SEED: u64 = 7;

/// Orders per scenario.
pub const ORDERS: usize = 2;

/// One (depth bound × strategy) exploration measurement.
#[derive(Debug, Clone)]
pub struct ExploreRow {
    /// Frontier discipline label.
    pub strategy: &'static str,
    /// Depth bound.
    pub max_depth: usize,
    /// Distinct states reached.
    pub states: u64,
    /// Transitions pruned by fingerprint dedup.
    pub pruned: u64,
    /// Deepest schedule reached.
    pub deepest: usize,
    /// Individual invariant evaluations.
    pub checks: u64,
    /// Invariant violations found (must be 0 on the real stack).
    pub violations: usize,
    /// Host-measured invariant checks per second.
    pub checks_per_sec: f64,
    /// True when `max_states` cut the search short.
    pub budget_exhausted: bool,
}

/// One seeded-bug detection measurement.
#[derive(Debug, Clone)]
pub struct ShimRow {
    /// Shim name.
    pub shim: &'static str,
    /// Invariant the explorer reported.
    pub invariant: &'static str,
    /// Schedule length as found by BFS.
    pub found_len: usize,
    /// Minimal schedule after ddmin, rendered one action per ` | `.
    pub minimal: String,
}

/// The full E12 report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Part A rows.
    pub coverage: Vec<ExploreRow>,
    /// Part B rows.
    pub detection: Vec<ShimRow>,
}

fn explore_row(strategy: Strategy, max_depth: usize, max_states: usize) -> ExploreRow {
    let (scenario, root) = Scenario::build(SEED, ORDERS);
    let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
    let config = ExploreConfig {
        max_depth,
        max_states,
        strategy,
        stop_at_first_violation: false,
    };
    let start = Instant::now();
    let report = explore(&scenario, &root, &alphabet, &config);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    ExploreRow {
        strategy: match strategy {
            Strategy::Bfs => "bfs",
            Strategy::Dfs => "dfs",
        },
        max_depth,
        states: report.explored,
        pruned: report.pruned,
        deepest: report.deepest,
        checks: report.checks,
        violations: report.violations.len(),
        checks_per_sec: report.checks as f64 / secs,
        budget_exhausted: report.budget_exhausted,
    }
}

fn shim_row<S: Fork>(shim: &'static str, system: S, max_states: usize) -> ShimRow {
    let (scenario, _root) = Scenario::build(SEED, ORDERS);
    let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
    let config = ExploreConfig {
        max_depth: 2,
        max_states,
        strategy: Strategy::Bfs,
        stop_at_first_violation: true,
    };
    let report = explore(&scenario, &system, &alphabet, &config);
    let found = report
        .violations
        .first()
        .expect("explorer catches every seeded bug");
    let minimal = shrink(
        &scenario,
        &system,
        &found.schedule,
        found.violation.invariant,
    );
    ShimRow {
        shim,
        invariant: found.violation.invariant,
        found_len: found.schedule.len(),
        minimal: render_schedule(&minimal).trim_end().replace('\n', " | "),
    }
}

/// Runs E12: real-stack coverage at each depth in `depths` (BFS, plus
/// one DFS row at the deepest bound) and seeded-bug detection.
pub fn run(depths: &[usize], max_states: usize) -> Report {
    let mut coverage: Vec<ExploreRow> = depths
        .iter()
        .map(|d| explore_row(Strategy::Bfs, *d, max_states))
        .collect();
    if let Some(deepest) = depths.iter().max() {
        coverage.push(explore_row(Strategy::Dfs, *deepest, max_states));
    }
    let fresh = || Scenario::build(SEED, ORDERS).1;
    let detection = vec![
        shim_row("double-settle", DoubleSettleShim::new(fresh()), max_states),
        shim_row(
            "forgotten-order",
            ForgottenOrderShim::new(fresh()),
            max_states,
        ),
        shim_row(
            "audit-truncation",
            AuditTruncationShim::new(fresh()),
            max_states,
        ),
    ];
    Report {
        coverage,
        detection,
    }
}

/// Flattens the report into its perf artifact pair. Exploration is
/// deterministic — states, pruning, checks, violation counts, and the
/// shrunk schedule lengths are all canonical; only checks-per-second
/// prices the host CPU.
pub fn artifacts(report: &Report, config: &str) -> utp_obs::ArtifactPair {
    let mut pair = utp_obs::ArtifactPair::new("E12", config);
    for r in &report.coverage {
        let depth = r.max_depth.to_string();
        let labels: &[(&str, &str)] = &[("strategy", r.strategy), ("depth", &depth)];
        pair.canonical.push_u64("e12.states", labels, r.states);
        pair.canonical.push_u64("e12.pruned", labels, r.pruned);
        pair.canonical
            .push_u64("e12.deepest", labels, r.deepest as u64);
        pair.canonical.push_u64("e12.checks", labels, r.checks);
        pair.canonical
            .push_u64("e12.violations", labels, r.violations as u64);
        pair.canonical.push_u64(
            "e12.budget_exhausted",
            labels,
            u64::from(r.budget_exhausted),
        );
        pair.host
            .push_f64("e12.checks_per_sec", labels, r.checks_per_sec);
    }
    for r in &report.detection {
        let labels: &[(&str, &str)] = &[("shim", r.shim)];
        pair.canonical
            .push_u64("e12.found_len", labels, r.found_len as u64);
        pair.canonical.push_u64(
            "e12.minimal_len",
            labels,
            r.minimal.split(" | ").count() as u64,
        );
    }
    pair
}

/// Renders both E12 tables.
pub fn render(report: &Report) -> String {
    let coverage_rows: Vec<Vec<String>> = report
        .coverage
        .iter()
        .map(|r| {
            vec![
                r.strategy.to_string(),
                r.max_depth.to_string(),
                r.states.to_string(),
                r.pruned.to_string(),
                r.deepest.to_string(),
                r.checks.to_string(),
                r.violations.to_string(),
                format!("{:.0}", r.checks_per_sec),
                if r.budget_exhausted { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    let mut out = table::render(
        "E12a — bounded exploration of the real stack (seed 7, 2 orders, 16-action alphabet)",
        &[
            "strategy",
            "depth",
            "states",
            "pruned",
            "deepest",
            "checks",
            "violations",
            "checks/s",
            "budget hit",
        ],
        &coverage_rows,
    );
    out.push('\n');
    let detection_rows: Vec<Vec<String>> = report
        .detection
        .iter()
        .map(|r| {
            vec![
                r.shim.to_string(),
                r.invariant.to_string(),
                r.found_len.to_string(),
                r.minimal.clone(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        "E12b — seeded-bug detection and ddmin-shrunk minimal schedules",
        &["shim", "invariant", "found len", "minimal schedule"],
        &detection_rows,
    ));
    out
}

/// True when every real-stack row is violation-free — the number the
/// smoke gate asserts on.
pub fn clean(report: &Report) -> bool {
    report.coverage.iter().all(|r| r.violations == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_small_run_is_clean_and_detects_all_shims() {
        let report = run(&[1], 500);
        assert!(clean(&report));
        assert_eq!(report.detection.len(), 3);
        assert!(report
            .detection
            .iter()
            .any(|r| r.invariant == "balance-conservation"));
        let rendered = render(&report);
        assert!(rendered.contains("E12a"));
        assert!(rendered.contains("minimal schedule"));
    }
}
