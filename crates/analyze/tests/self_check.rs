//! The analyzer must pass over its own workspace: zero deny-level
//! findings and zero warnings anywhere in the repository. This is the
//! clean-run invariant — any new `unwrap()` in the TCB, stray wall-clock
//! read, or unjustified allow-annotation fails the test suite.

use std::path::Path;

use utp_analyze::{analyze_workspace, deny_count, diag::render_text, workspace};

fn workspace_root() -> std::path::PathBuf {
    workspace::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("crates/analyze lives inside the utp workspace")
}

#[test]
fn workspace_has_no_deny_findings() {
    let diags = analyze_workspace(&workspace_root())
        .expect("workspace walk failed")
        .diagnostics;
    assert_eq!(
        deny_count(&diags),
        0,
        "static analysis found deny-level violations:\n{}",
        render_text(&diags)
    );
}

#[test]
fn workspace_has_no_warnings_either() {
    // Warnings are currently only unused-allow annotations; the waiver
    // list must stay minimal, so we hold the repo to zero of those too.
    let diags = analyze_workspace(&workspace_root())
        .expect("workspace walk failed")
        .diagnostics;
    assert!(
        diags.is_empty(),
        "static analysis produced diagnostics:\n{}",
        render_text(&diags)
    );
}

#[test]
fn analyzer_walks_a_nontrivial_file_set() {
    // Guard against the walker silently finding nothing (wrong root,
    // over-aggressive skip rules) and vacuously passing the gate.
    let files = workspace::collect_rs_files(&workspace_root()).expect("walk");
    assert!(
        files.len() > 50,
        "expected the workspace walk to see the whole repo, got {} files",
        files.len()
    );
    assert!(files
        .iter()
        .any(|(rel, _)| rel == "crates/tpm/src/device.rs"));
    assert!(files.iter().any(|(rel, _)| rel == "crates/core/src/pal.rs"));
}
