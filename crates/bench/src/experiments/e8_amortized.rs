//! E8 (ablation) — per-transaction quote vs amortized MAC confirmation.
//!
//! The design choice DESIGN.md calls out: every confirmation can carry its
//! own `TPM_Quote`, or the client can run one attested setup session and
//! authenticate later confirmations with an HMAC under a key sealed to the
//! PAL. This ablation regenerates the trade-off per TPM vendor: amortized
//! mode swaps the quote for an unseal (cheaper on every 2011 chip, by
//! varying margins) and swaps the provider's RSA verify for one HMAC.
//!
//! Regenerate: `cargo run -p utp-bench --bin e8_amortized`

use crate::table;
use std::time::Duration;
use utp_core::amortized::{AmortizedClient, AmortizedVerifier};
use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_core::protocol::{ConfirmMode, Transaction};
use utp_core::verifier::Verifier;
use utp_platform::machine::{Machine, MachineConfig};
use utp_tpm::VendorProfile;

/// One vendor's quote-mode vs amortized comparison.
#[derive(Debug, Clone)]
pub struct AmortizedRow {
    /// The chip.
    pub vendor: VendorProfile,
    /// Machine-only session time, quote per transaction.
    pub quote_mode: Duration,
    /// Machine-only session time, amortized MAC mode (post-setup).
    pub amortized_mode: Duration,
    /// One-time setup session cost (machine-only).
    pub setup_cost: Duration,
    /// Host CPU per verification, quote mode.
    pub server_cpu_quote: Duration,
    /// Host CPU per verification, amortized mode.
    pub server_cpu_amortized: Duration,
}

impl AmortizedRow {
    /// Transactions after which amortized mode has paid back its setup.
    pub fn break_even_transactions(&self) -> u64 {
        let saved = self
            .quote_mode
            .saturating_sub(self.amortized_mode)
            .as_secs_f64();
        if saved <= 0.0 {
            return u64::MAX;
        }
        (self.setup_cost.as_secs_f64() / saved).ceil() as u64
    }
}

/// Runs the ablation for every vendor.
pub fn run(key_bits: usize) -> Vec<AmortizedRow> {
    VendorProfile::all_real()
        .iter()
        .map(|&vendor| {
            let ca = PrivacyCa::new(key_bits, 81);
            let tx = Transaction::new(1, "shop.example", 4_200, "EUR", "order");

            // Quote mode.
            let mut verifier_q = Verifier::new(ca.public_key().clone(), 82);
            let mut machine_q = Machine::new(MachineConfig::realistic(vendor, 83));
            let enrollment = ca.enroll(&mut machine_q);
            let mut client_q = Client::new(ClientConfig::fast_for_tests(), enrollment);
            let request = verifier_q.issue_request_with_mode(
                tx.clone(),
                ConfirmMode::PressEnter,
                machine_q.now(),
            );
            let mut human = ConfirmingHuman::new(Intent::approving(&tx), 84);
            let (evidence_q, report_q) = client_q
                .confirm_with_report(&mut machine_q, &request, &mut human)
                .expect("quote-mode session runs");
            let wall = std::time::Instant::now();
            verifier_q
                .verify(&evidence_q, machine_q.now())
                .expect("verifies");
            let server_cpu_quote = wall.elapsed();

            // Amortized mode.
            let mut verifier_a = AmortizedVerifier::new(ca.public_key().clone(), key_bits, 85);
            let mut machine_a = Machine::new(MachineConfig::realistic(vendor, 86));
            let enrollment = ca.enroll(&mut machine_a);
            let mut client_a = AmortizedClient::new(enrollment);
            let setup_report = client_a
                .setup(&mut machine_a, &mut verifier_a)
                .expect("setup runs");
            let request =
                verifier_a.issue_request(tx.clone(), ConfirmMode::PressEnter, machine_a.now());
            let mut human = ConfirmingHuman::new(Intent::approving(&tx), 87);
            let (evidence_a, report_a) = client_a
                .confirm_with_report(&mut machine_a, &request, &mut human)
                .expect("amortized session runs");
            let wall = std::time::Instant::now();
            verifier_a.verify(&evidence_a).expect("verifies");
            let server_cpu_amortized = wall.elapsed();

            AmortizedRow {
                vendor,
                quote_mode: report_q.timings.machine_only(),
                amortized_mode: report_a.timings.machine_only(),
                setup_cost: setup_report.timings.machine_only(),
                server_cpu_quote,
                server_cpu_amortized,
            }
        })
        .collect()
}

/// Flattens the rows into their perf artifact pair. Session times ride
/// the virtual clock (canonical, exact); the two server-CPU columns
/// are real host measurements (host class).
pub fn artifacts(rows: &[AmortizedRow], config: &str) -> utp_obs::ArtifactPair {
    let mut pair = utp_obs::ArtifactPair::new("E8", config);
    for r in rows {
        let labels: &[(&str, &str)] = &[("vendor", r.vendor.name())];
        pair.canonical
            .push_u64("e8.quote_mode_ns", labels, r.quote_mode.as_nanos() as u64);
        pair.canonical.push_u64(
            "e8.amortized_mode_ns",
            labels,
            r.amortized_mode.as_nanos() as u64,
        );
        pair.canonical
            .push_u64("e8.setup_ns", labels, r.setup_cost.as_nanos() as u64);
        pair.canonical
            .push_u64("e8.break_even_tx", labels, r.break_even_transactions());
        pair.host.push_u64(
            "e8.server_cpu_quote_ns",
            labels,
            r.server_cpu_quote.as_nanos() as u64,
        );
        pair.host.push_u64(
            "e8.server_cpu_amortized_ns",
            labels,
            r.server_cpu_amortized.as_nanos() as u64,
        );
    }
    pair
}

/// Renders the E8 table.
pub fn render(rows: &[AmortizedRow]) -> String {
    table::render(
        "E8 - ablation: per-transaction quote vs amortized MAC (machine-only ms)",
        &[
            "chip",
            "quote-mode",
            "amortized",
            "setup(once)",
            "break-even(tx)",
            "srv-cpu quote(ms)",
            "srv-cpu mac(ms)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.vendor.name().to_string(),
                    table::ms(r.quote_mode),
                    table::ms(r.amortized_mode),
                    table::ms(r.setup_cost),
                    r.break_even_transactions().to_string(),
                    format!("{:.3}", r.server_cpu_quote.as_secs_f64() * 1e3),
                    format!("{:.3}", r.server_cpu_amortized.as_secs_f64() * 1e3),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortized_beats_quote_mode_on_every_vendor() {
        for r in run(512) {
            assert!(
                r.amortized_mode < r.quote_mode,
                "{:?}: amortized {:?} vs quote {:?}",
                r.vendor,
                r.amortized_mode,
                r.quote_mode
            );
        }
    }

    #[test]
    fn break_even_is_finite_and_small() {
        for r in run(512) {
            let be = r.break_even_transactions();
            assert!((1..100).contains(&be), "{:?}: break-even {}", r.vendor, be);
        }
    }

    #[test]
    fn gain_is_largest_where_quote_unseal_gap_is_largest() {
        // Broadcom: quote 972 vs unseal 647 — the biggest absolute gap, so
        // the biggest saving.
        let rows = run(512);
        let saving = |v: VendorProfile| {
            let r = rows.iter().find(|r| r.vendor == v).unwrap();
            r.quote_mode.saturating_sub(r.amortized_mode)
        };
        assert!(saving(VendorProfile::Broadcom) > saving(VendorProfile::Infineon));
    }
}
