//! CLI for the `utp-analyze` static analyzer.
//!
//! ```text
//! utp-analyze [--root <path>] [--format text|json] [--list-passes]
//! ```
//!
//! Exit status: 0 — clean (no deny-level findings); 1 — at least one
//! deny-level finding; 2 — usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use utp_analyze::{analyze_workspace, deny_count, diag, passes, workspace};

enum Format {
    Text,
    Json,
}

fn usage() -> &'static str {
    "usage: utp-analyze [--root <path>] [--format text|json] [--list-passes]\n\
     \n\
     Runs the UTP workspace's TCB / constant-time / panic-freedom passes\n\
     over every .rs file and reports structured diagnostics. Exits 1 if\n\
     any deny-level finding remains unannotated."
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    let got = other.unwrap_or("nothing");
                    eprintln!("--format expects `text` or `json`, got `{got}`");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--list-passes" => {
                for pass in passes::registry() {
                    println!("{:<28} {}", pass.id(), pass.description());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match workspace::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("could not locate a workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diags = match analyze_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => print!("{}", diag::render_text(&diags)),
        Format::Json => print!("{}", diag::render_json(&diags)),
    }

    if deny_count(&diags) > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
