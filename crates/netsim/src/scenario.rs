//! Fleet scenarios: wire a topology, an arrival curve, and a modeled
//! provider together; run the event loop to drain; report.
//!
//! # Model
//!
//! The provider is modeled as a bounded queue in front of a worker
//! pool whose only cost is `verify_cost` of virtual time per evidence
//! verification — calibrated against the real `VerifierService` (an
//! RSA-2048 verify dominates at ~45 µs/op on the reference host).
//! Order placement and challenge issuance are modeled as free: they
//! are WAL appends and RNG draws, orders of magnitude cheaper than
//! the verify, and modeling them would only shift the knee without
//! changing its shape.
//!
//! A sampled fraction of clients can be wired to a
//! [`FullStackHook`] that drives the *real* provider + journal +
//! `VerifierService` stack per submission; the model still charges the
//! same virtual cost, so hooked clients measure correctness (double
//! spends, replay handling) without distorting the saturation curve.
//!
//! # Determinism
//!
//! Everything derives from the scenario seed and the virtual clock:
//! arrival draws, jitter, loss, reorder, backoff jitter, and the
//! event queue's stable tie-break. Two runs of the same scenario
//! produce byte-identical [`FleetReport::digest`] output.

use crate::admission::{Admission, AdmissionConfig};
use crate::bus::{ClassStats, Frame, MessageBus, Payload};
use crate::event::EventQueue;
use crate::fleet::{ArrivalCurve, FleetClient, Phase, RetryPolicy};
use crate::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Duration;
use utp_obs::MetricsRegistry;
use utp_trace::LatencyHistogram;

/// Modeled provider parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProviderConfig {
    /// Verification worker count.
    pub workers: u32,
    /// Virtual time one evidence verification occupies a worker.
    pub verify_cost: Duration,
    /// Hard queue bound. With admission control off, arrivals beyond
    /// it are dropped silently (the legacy collapse mode).
    pub queue_limit: usize,
    /// Early-shed policy; `None` reproduces the silent-drop behavior.
    pub admission: Option<AdmissionConfig>,
}

impl Default for ProviderConfig {
    fn default() -> Self {
        ProviderConfig {
            workers: 4,
            verify_cost: Duration::from_micros(120),
            queue_limit: 256,
            admission: None,
        }
    }
}

/// Wire sizes per message kind, in bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSizes {
    /// Client → provider order placement.
    pub order: u32,
    /// Provider → client challenge.
    pub challenge: u32,
    /// Client → provider evidence (quote + cert chain dominate).
    pub evidence: u32,
    /// Provider → client receipt.
    pub receipt: u32,
    /// Provider → client retry-after notice.
    pub retry_after: u32,
}

impl Default for WireSizes {
    fn default() -> Self {
        WireSizes {
            order: 256,
            challenge: 128,
            evidence: 2_048,
            receipt: 512,
            retry_after: 64,
        }
    }
}

/// Outcome of one full-stack submission driven through a hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookOutcome {
    /// Evidence accepted; transaction settled.
    Settled,
    /// Caught as a replay of an already-settled transaction.
    Replayed,
    /// Evidence rejected.
    Rejected,
}

/// Drives the real provider stack for sampled clients. Called when the
/// modeled worker finishes a hooked client's verification, in a
/// deterministic order.
pub trait FullStackHook {
    /// Submit (or re-submit, when `replay`) the client's evidence.
    fn submit(&mut self, fleet_index: u32, replay: bool, at: Duration) -> HookOutcome;
}

/// A hook that never runs the real stack (pure-model scenarios).
pub struct NullHook;

impl FullStackHook for NullHook {
    fn submit(&mut self, _fleet_index: u32, _replay: bool, _at: Duration) -> HookOutcome {
        HookOutcome::Settled
    }
}

/// Tallies for the sampled full-stack clients.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullStackTally {
    /// Hook submissions issued.
    pub submitted: u64,
    /// First-time settlements.
    pub settled: u64,
    /// Replays caught by the real stack.
    pub replayed: u64,
    /// Rejections from the real stack.
    pub rejected: u64,
}

/// One fleet experiment: topology + arrivals + provider model.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Master seed; every random draw in the run derives from it.
    pub seed: u64,
    /// The network.
    pub topology: Topology,
    /// When orders arrive.
    pub arrival: ArrivalCurve,
    /// Arrival horizon (the run itself continues until drained).
    pub horizon: Duration,
    /// Client timeout/backoff policy.
    pub retry: RetryPolicy,
    /// Provider model parameters.
    pub provider: ProviderConfig,
    /// Message sizes.
    pub wire: WireSizes,
    /// Every Nth client drives the real stack through the hook
    /// (0 = pure model).
    pub full_stack_every: u32,
    /// Free-form run label, carried into the report.
    pub run_tag: String,
}

impl Scenario {
    /// A scenario over `topology` with default policies.
    pub fn new(
        topology: Topology,
        arrival: ArrivalCurve,
        horizon: Duration,
        seed: u64,
    ) -> Scenario {
        Scenario {
            seed,
            topology,
            arrival,
            horizon,
            retry: RetryPolicy::default(),
            provider: ProviderConfig::default(),
            wire: WireSizes::default(),
            full_stack_every: 0,
            run_tag: String::new(),
        }
    }

    /// Labels the run; the tag is serialized into the report and its
    /// artifacts (treated as a telemetry sink by `utp-analyze`).
    pub fn tag_run(&mut self, label: &str) {
        self.run_tag = label.to_string();
    }

    /// Runs the pure model (no full-stack clients).
    pub fn run(&self) -> FleetReport {
        self.run_with(&mut NullHook)
    }

    /// Runs the scenario to full drain, driving sampled clients
    /// through `hook`.
    pub fn run_with(&self, hook: &mut dyn FullStackHook) -> FleetReport {
        Sim::new(self, hook).run()
    }
}

/// Event vocabulary of the fleet loop.
enum Ev {
    /// The `i`-th arrival (in arrival-time order) fires.
    Arrive(u32),
    /// A frame survived the network and reaches its destination.
    Net(Frame),
    /// A client's wait (challenge or receipt) expires. Stale when the
    /// epoch moved on.
    Timeout { client: u32, epoch: u16 },
    /// A backoff or retry-after wait ends; resend for the current
    /// phase. Stale when the epoch moved on.
    Resend { client: u32, epoch: u16 },
    /// A provider worker finishes verifying `txn`.
    WorkerDone { txn: u32, replay: bool },
}

struct Sim<'a> {
    sc: &'a Scenario,
    hook: &'a mut dyn FullStackHook,
    q: EventQueue<Ev>,
    bus: MessageBus,
    rng: StdRng,
    clients: Vec<FleetClient>,
    epochs: Vec<u16>,
    /// Fleet index -> node id.
    node_of: Vec<NodeId>,
    /// Node id -> fleet index (u32::MAX for non-clients).
    fleet_of: Vec<u32>,
    /// Arrival order: fleet indices sorted by birth time.
    arrival_order: Vec<u32>,
    /// Provider state.
    workers_free: u32,
    queue: VecDeque<(u32, bool)>,
    settled: Vec<bool>,
    /// Virtual time of the last event that did real work. Stale timers
    /// popping after the fleet drained must not stretch the makespan.
    last_progress: Duration,
    report: FleetReport,
}

impl<'a> Sim<'a> {
    fn new(sc: &'a Scenario, hook: &'a mut dyn FullStackHook) -> Sim<'a> {
        let node_of: Vec<NodeId> = sc.topology.clients().collect();
        let n = node_of.len();
        let mut fleet_of = vec![u32::MAX; sc.topology.node_count() as usize];
        for (i, node) in node_of.iter().enumerate() {
            fleet_of[node.0 as usize] = i as u32;
        }
        let plan = sc.arrival.plan(sc.seed, n as u32, sc.horizon);
        let mut clients = Vec::with_capacity(n);
        for i in 0..n {
            let flaky = plan.flaky.get(i).copied().unwrap_or(false);
            clients.push(FleetClient::new(plan.born_at[i], flaky));
        }
        let mut arrival_order: Vec<u32> = (0..n as u32).collect();
        arrival_order.sort_by_key(|i| (clients[*i as usize].born_at, *i));
        let report = FleetReport {
            run_tag: sc.run_tag.clone(),
            fleet: n as u64,
            ..FleetReport::default()
        };
        Sim {
            sc,
            hook,
            q: EventQueue::new(),
            bus: MessageBus::new(sc.topology.clone(), sc.seed),
            rng: StdRng::seed_from_u64(sc.seed ^ 0x464c_4545_u64),
            clients,
            epochs: vec![0; n],
            node_of,
            fleet_of,
            arrival_order,
            workers_free: sc.provider.workers,
            queue: VecDeque::new(),
            settled: vec![false; n],
            last_progress: Duration::ZERO,
            report,
        }
    }

    fn run(mut self) -> FleetReport {
        if !self.arrival_order.is_empty() {
            let first = self.arrival_order[0];
            self.q
                .schedule(self.clients[first as usize].born_at, Ev::Arrive(0));
        }
        while let Some((now, ev)) = self.q.pop() {
            self.report.events_processed += 1;
            match ev {
                Ev::Arrive(order_idx) => {
                    self.last_progress = now;
                    self.on_arrive(order_idx, now);
                }
                Ev::Net(frame) => {
                    self.last_progress = now;
                    self.on_frame(frame, now);
                }
                Ev::Timeout { client, epoch } => self.on_timeout(client, epoch, now),
                Ev::Resend { client, epoch } => self.on_resend(client, epoch, now),
                Ev::WorkerDone { txn, replay } => {
                    self.last_progress = now;
                    self.on_worker_done(txn, replay, now);
                }
            }
        }
        self.report.makespan = self.last_progress;
        self.report.queue_depth_watermark = self
            .report
            .queue_depth_watermark
            .max(self.queue.len() as u64);
        self.report.link_stats = self
            .sc
            .topology
            .classes()
            .iter()
            .map(|(name, _)| name.clone())
            .zip(self.bus.class_stats().iter().copied())
            .collect();
        self.report
    }

    fn provider(&self) -> NodeId {
        self.sc.topology.provider()
    }

    fn bump_epoch(&mut self, client: u32) -> u16 {
        let e = &mut self.epochs[client as usize];
        *e = e.wrapping_add(1);
        *e
    }

    fn send(&mut self, frame: Frame, now: Duration) {
        if let Some(delay) = self.bus.transit(&frame, now) {
            self.q.schedule(now + delay, Ev::Net(frame));
        }
    }

    fn arm_timeout(&mut self, client: u32, now: Duration) {
        let epoch = self.epochs[client as usize];
        self.q
            .schedule(now + self.sc.retry.timeout, Ev::Timeout { client, epoch });
    }

    fn on_arrive(&mut self, order_idx: u32, now: Duration) {
        // Chain to the next arrival so the heap never holds the whole
        // fleet's arrival schedule at once.
        if let Some(next) = self.arrival_order.get(order_idx as usize + 1) {
            let at = self.clients[*next as usize].born_at;
            self.q.schedule(at, Ev::Arrive(order_idx + 1));
        }
        let client = self.arrival_order[order_idx as usize];
        let c = &mut self.clients[client as usize];
        c.phase = Phase::AwaitChallenge;
        c.attempts = 1;
        self.report.placed += 1;
        self.send_current(client, now);
    }

    /// (Re)sends whatever the client's phase calls for and arms the
    /// timeout for it.
    fn send_current(&mut self, client: u32, now: Duration) {
        let src = self.node_of[client as usize];
        let dst = self.provider();
        let (payload, bytes) = match self.clients[client as usize].phase {
            Phase::AwaitChallenge => (Payload::PlaceOrder, self.sc.wire.order),
            Phase::AwaitReceipt => {
                let replay = self.clients[client as usize].evidence_sent;
                self.clients[client as usize].evidence_sent = true;
                if replay {
                    self.report.replays_sent += 1;
                }
                (Payload::Evidence { replay }, self.sc.wire.evidence)
            }
            _ => return,
        };
        self.bump_epoch(client);
        self.send(
            Frame {
                src,
                dst,
                payload,
                bytes,
                txn: u64::from(client),
            },
            now,
        );
        self.arm_timeout(client, now);
    }

    fn on_frame(&mut self, frame: Frame, now: Duration) {
        if frame.dst == self.provider() {
            self.on_provider_frame(frame, now);
        } else {
            self.on_client_frame(frame, now);
        }
    }

    fn on_provider_frame(&mut self, frame: Frame, now: Duration) {
        let client = self.fleet_of[frame.src.0 as usize];
        match frame.payload {
            Payload::PlaceOrder => {
                // Placement and challenge issuance are modeled free
                // (WAL append + RNG draw, no RSA); re-placement just
                // re-issues the challenge.
                self.send(
                    Frame {
                        src: self.provider(),
                        dst: frame.src,
                        payload: Payload::Challenge,
                        bytes: self.sc.wire.challenge,
                        txn: frame.txn,
                    },
                    now,
                );
            }
            Payload::Evidence { replay } => self.on_evidence(client, replay, now),
            _ => {}
        }
    }

    fn on_evidence(&mut self, client: u32, replay: bool, now: Duration) {
        let depth = self.queue.len();
        self.report.queue_depth_watermark = self.report.queue_depth_watermark.max(depth as u64 + 1);
        if let Some(admission) = &self.sc.provider.admission {
            if let Admission::Shed { retry_after } = admission.decide(depth) {
                self.report.shed_admission += 1;
                self.send(
                    Frame {
                        src: self.provider(),
                        dst: self.node_of[client as usize],
                        payload: Payload::RetryAfter { delay: retry_after },
                        bytes: self.sc.wire.retry_after,
                        txn: u64::from(client),
                    },
                    now,
                );
                return;
            }
        } else if depth >= self.sc.provider.queue_limit {
            // Legacy mode: the queue is full and the submitter learns
            // nothing — the silent collapse E13 quantifies.
            self.report.dropped_queue_full += 1;
            return;
        }
        self.queue.push_back((client, replay));
        self.start_workers(now);
    }

    fn start_workers(&mut self, now: Duration) {
        while self.workers_free > 0 {
            let Some((txn, replay)) = self.queue.pop_front() else {
                break;
            };
            self.workers_free -= 1;
            self.q.schedule(
                now + self.sc.provider.verify_cost,
                Ev::WorkerDone { txn, replay },
            );
        }
    }

    fn on_worker_done(&mut self, txn: u32, replay: bool, now: Duration) {
        self.workers_free += 1;
        self.report.verify_jobs += 1;
        self.report.worker_busy += self.sc.provider.verify_cost;
        let hooked = self.sc.full_stack_every > 0 && txn.is_multiple_of(self.sc.full_stack_every);
        let outcome = if hooked {
            let o = self.hook.submit(txn, replay, now);
            self.report.full_stack.submitted += 1;
            match o {
                HookOutcome::Settled => self.report.full_stack.settled += 1,
                HookOutcome::Replayed => self.report.full_stack.replayed += 1,
                HookOutcome::Rejected => self.report.full_stack.rejected += 1,
            }
            o
        } else if self.settled[txn as usize] {
            HookOutcome::Replayed
        } else {
            HookOutcome::Settled
        };
        let settled_now = match outcome {
            HookOutcome::Settled => {
                self.settled[txn as usize] = true;
                true
            }
            HookOutcome::Replayed => {
                self.report.duplicate_settle_attempts += 1;
                // The receipt is idempotent: the client still learns
                // the transaction settled.
                true
            }
            HookOutcome::Rejected => false,
        };
        self.send(
            Frame {
                src: self.provider(),
                dst: self.node_of[txn as usize],
                payload: Payload::Receipt {
                    settled: settled_now,
                },
                bytes: self.sc.wire.receipt,
                txn: u64::from(txn),
            },
            now,
        );
        self.start_workers(now);
    }

    fn on_client_frame(&mut self, frame: Frame, now: Duration) {
        let client = self.fleet_of[frame.dst.0 as usize];
        let phase = self.clients[client as usize].phase;
        if phase.is_terminal() {
            return; // late duplicate receipt/challenge
        }
        match frame.payload {
            Payload::Challenge if phase == Phase::AwaitChallenge => {
                self.clients[client as usize].phase = Phase::AwaitReceipt;
                self.send_current(client, now);
            }
            Payload::Receipt { settled }
                if phase == Phase::AwaitReceipt || phase == Phase::Backoff =>
            {
                let born = self.clients[client as usize].born_at;
                self.bump_epoch(client);
                if settled {
                    self.clients[client as usize].phase = Phase::Settled;
                    self.report.settled += 1;
                    self.report.latency.record(now - born);
                } else {
                    self.clients[client as usize].phase = Phase::Rejected;
                    self.report.rejected += 1;
                }
            }
            Payload::RetryAfter { delay } if phase == Phase::AwaitReceipt => {
                let c = &mut self.clients[client as usize];
                if c.attempts >= self.sc.retry.max_attempts {
                    c.phase = Phase::GaveUp;
                    self.report.gave_up += 1;
                    self.bump_epoch(client);
                    return;
                }
                c.attempts += 1;
                c.phase = Phase::Backoff;
                let epoch = self.bump_epoch(client);
                // A pinch of jitter decorrelates the shed cohort's
                // comeback.
                let wake = delay + delay.mul_f64(0.1 * self.rng.gen::<f64>());
                self.q.schedule(now + wake, Ev::Resend { client, epoch });
                self.report.retries += 1;
            }
            _ => {}
        }
    }

    fn on_timeout(&mut self, client: u32, epoch: u16, now: Duration) {
        if self.epochs[client as usize] != epoch {
            return; // stale timer
        }
        let c = &mut self.clients[client as usize];
        if c.phase.is_terminal() || c.phase == Phase::Backoff {
            return;
        }
        self.last_progress = now;
        self.report.timeouts += 1;
        if c.flaky {
            c.phase = Phase::Abandoned;
            self.report.abandoned += 1;
            self.bump_epoch(client);
            return;
        }
        if c.attempts >= self.sc.retry.max_attempts {
            c.phase = Phase::GaveUp;
            self.report.gave_up += 1;
            self.bump_epoch(client);
            return;
        }
        c.attempts += 1;
        let attempts = c.attempts;
        let epoch = self.bump_epoch(client);
        let jitter: f64 = self.rng.gen();
        let backoff = self.sc.retry.backoff(attempts, jitter);
        self.report.retries += 1;
        self.q.schedule(now + backoff, Ev::Resend { client, epoch });
    }

    fn on_resend(&mut self, client: u32, epoch: u16, now: Duration) {
        if self.epochs[client as usize] != epoch {
            return;
        }
        let c = &mut self.clients[client as usize];
        if c.phase.is_terminal() {
            return;
        }
        self.last_progress = now;
        if c.phase == Phase::Backoff {
            c.phase = Phase::AwaitReceipt;
        }
        self.send_current(client, now);
    }
}

/// The measured outcome of one scenario run.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// The scenario's run tag.
    pub run_tag: String,
    /// Fleet size.
    pub fleet: u64,
    /// Orders placed (every client that arrived).
    pub placed: u64,
    /// Transactions settled (receipt delivered, first or replayed).
    pub settled: u64,
    /// Transactions rejected by the provider.
    pub rejected: u64,
    /// Clients that exhausted their retry budget.
    pub gave_up: u64,
    /// Flaky clients that churned away after a timeout.
    pub abandoned: u64,
    /// Client-side waits that expired.
    pub timeouts: u64,
    /// Resends scheduled (timeout- and shed-driven).
    pub retries: u64,
    /// Evidence frames sent with the replay flag.
    pub replays_sent: u64,
    /// Submissions shed by admission control with a retry-after.
    pub shed_admission: u64,
    /// Submissions silently dropped at the full queue (admission off).
    pub dropped_queue_full: u64,
    /// Verifications that found the transaction already settled.
    pub duplicate_settle_attempts: u64,
    /// Worker verifications completed.
    pub verify_jobs: u64,
    /// Total virtual worker-busy time.
    pub worker_busy: Duration,
    /// Highest provider queue depth observed.
    pub queue_depth_watermark: u64,
    /// Virtual time from first arrival to full drain.
    pub makespan: Duration,
    /// Events the loop processed.
    pub events_processed: u64,
    /// End-to-end settle latency (arrival → receipt).
    pub latency: LatencyHistogram,
    /// Per-link-class traffic accounting.
    pub link_stats: Vec<(String, ClassStats)>,
    /// Sampled full-stack client tallies.
    pub full_stack: FullStackTally,
    /// Free-form annotations (a telemetry sink: `utp-analyze` gates
    /// what may flow in here).
    pub notes: Vec<(String, String)>,
}

impl FleetReport {
    /// Settled transactions per virtual second of makespan.
    pub fn goodput_per_sec(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.settled as f64 / secs
    }

    /// Fraction of evidence submissions turned away (shed or silently
    /// dropped), in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        let turned_away = self.shed_admission + self.dropped_queue_full;
        let total = self.verify_jobs + turned_away;
        if total == 0 {
            return 0.0;
        }
        turned_away as f64 / total as f64
    }

    /// Attaches a free-form note, serialized into the digest and the
    /// artifact config. Treated as a telemetry sink by the
    /// `secret-taint` analyzer pass: secrets must not flow here.
    pub fn annotate(&mut self, key: &str, value: &str) {
        self.notes.push((key.to_string(), value.to_string()));
    }

    /// Exports every counter into `registry` under the `fleet.*`
    /// namespace with the caller's labels attached.
    pub fn export_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        let c = |name: &str, v: u64| registry.counter(name, labels).add(v);
        c("fleet.clients", self.fleet);
        c("fleet.placed", self.placed);
        c("fleet.settled", self.settled);
        c("fleet.rejected", self.rejected);
        c("fleet.gave_up", self.gave_up);
        c("fleet.abandoned", self.abandoned);
        c("fleet.timeouts", self.timeouts);
        c("fleet.retries", self.retries);
        c("fleet.replays_sent", self.replays_sent);
        c("fleet.shed_admission", self.shed_admission);
        c("fleet.dropped_queue_full", self.dropped_queue_full);
        c("fleet.dup_settle_attempts", self.duplicate_settle_attempts);
        c("fleet.verify_jobs", self.verify_jobs);
        c("fleet.worker_busy_ns", self.worker_busy.as_nanos() as u64);
        c("fleet.makespan_ns", self.makespan.as_nanos() as u64);
        c("fleet.events", self.events_processed);
        c("fleet.fullstack_submitted", self.full_stack.submitted);
        c("fleet.fullstack_settled", self.full_stack.settled);
        c("fleet.fullstack_replayed", self.full_stack.replayed);
        c("fleet.fullstack_rejected", self.full_stack.rejected);
        registry
            .gauge("fleet.queue_depth", labels)
            .set(self.queue_depth_watermark);
        registry
            .histogram("fleet.latency", labels)
            .merge(&self.latency);
        for (class, stats) in &self.link_stats {
            let mut with_class: Vec<(&str, &str)> = labels.to_vec();
            with_class.push(("class", class.as_str()));
            registry
                .counter("fleet.link_messages_carried", &with_class)
                .add(stats.messages_carried);
            registry
                .counter("fleet.link_messages_dropped", &with_class)
                .add(stats.messages_dropped);
            registry
                .counter("fleet.link_bytes_carried", &with_class)
                .add(stats.bytes_carried);
            registry
                .counter("fleet.link_bytes_dropped", &with_class)
                .add(stats.bytes_dropped);
        }
    }

    /// A canonical, line-oriented rendering of every deterministic
    /// field — the byte-identity surface the determinism tests and
    /// `fleet_smoke` compare.
    pub fn digest(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "run_tag={}", self.run_tag);
        let _ = writeln!(s, "fleet={}", self.fleet);
        let _ = writeln!(s, "placed={}", self.placed);
        let _ = writeln!(s, "settled={}", self.settled);
        let _ = writeln!(s, "rejected={}", self.rejected);
        let _ = writeln!(s, "gave_up={}", self.gave_up);
        let _ = writeln!(s, "abandoned={}", self.abandoned);
        let _ = writeln!(s, "timeouts={}", self.timeouts);
        let _ = writeln!(s, "retries={}", self.retries);
        let _ = writeln!(s, "replays_sent={}", self.replays_sent);
        let _ = writeln!(s, "shed_admission={}", self.shed_admission);
        let _ = writeln!(s, "dropped_queue_full={}", self.dropped_queue_full);
        let _ = writeln!(s, "dup_settle_attempts={}", self.duplicate_settle_attempts);
        let _ = writeln!(s, "verify_jobs={}", self.verify_jobs);
        let _ = writeln!(s, "worker_busy_ns={}", self.worker_busy.as_nanos());
        let _ = writeln!(s, "queue_watermark={}", self.queue_depth_watermark);
        let _ = writeln!(s, "makespan_ns={}", self.makespan.as_nanos());
        let _ = writeln!(s, "events={}", self.events_processed);
        let _ = writeln!(
            s,
            "latency count={} sum_ns={} p50_ns={} p99_ns={} p999_ns={}",
            self.latency.count(),
            self.latency.sum().as_nanos(),
            self.latency.p50().as_nanos(),
            self.latency.p99().as_nanos(),
            self.latency.p999().as_nanos()
        );
        for (class, st) in &self.link_stats {
            let _ = writeln!(
                s,
                "link class={class} carried={}/{}B dropped={}/{}B",
                st.messages_carried, st.bytes_carried, st.messages_dropped, st.bytes_dropped
            );
        }
        let fs = self.full_stack;
        let _ = writeln!(
            s,
            "fullstack submitted={} settled={} replayed={} rejected={}",
            fs.submitted, fs.settled, fs.replayed, fs.rejected
        );
        for (k, v) in &self.notes {
            let _ = writeln!(s, "note {k}={v}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkProfile;
    use crate::LinkConfig;

    fn small_scenario(seed: u64) -> Scenario {
        let leaf = LinkProfile::clean(LinkConfig::broadband());
        let topo = Topology::star(200, leaf);
        let mut sc = Scenario::new(topo, ArrivalCurve::Steady, Duration::from_secs(2), seed);
        sc.provider.workers = 2;
        sc.provider.verify_cost = Duration::from_micros(200);
        sc
    }

    #[test]
    fn clean_underload_settles_everyone() {
        let report = small_scenario(7).run();
        assert_eq!(report.placed, 200);
        assert_eq!(report.settled, 200);
        assert_eq!(report.gave_up, 0);
        assert_eq!(report.dropped_queue_full, 0);
        assert_eq!(report.latency.count(), 200);
        assert!(report.goodput_per_sec() > 0.0);
        assert!(report.makespan >= Duration::from_millis(100));
    }

    #[test]
    fn same_seed_identical_digest_different_seed_not() {
        let a = small_scenario(7).run().digest();
        let b = small_scenario(7).run().digest();
        assert_eq!(a, b, "same seed must reproduce byte-identically");
        let c = small_scenario(8).run().digest();
        assert_ne!(a, c, "the seed must actually steer the draws");
    }

    #[test]
    fn lossy_link_forces_replays_but_no_double_settles() {
        let leaf = LinkProfile::clean(LinkConfig::broadband()).with_loss_ppm(150_000);
        let topo = Topology::star(300, leaf);
        let mut sc = Scenario::new(topo, ArrivalCurve::Steady, Duration::from_secs(2), 11);
        sc.provider.workers = 2;
        sc.provider.verify_cost = Duration::from_micros(100);
        sc.retry.timeout = Duration::from_millis(200);
        let report = sc.run();
        assert!(report.timeouts > 0, "15% loss must cost timeouts");
        assert!(report.replays_sent > 0, "retries resend evidence");
        // Settles are unique per client even under replay pressure.
        assert!(report.settled <= report.placed);
        assert_eq!(
            report.settled + report.gave_up + report.abandoned + report.rejected,
            report.placed,
            "every client ends in exactly one terminal state"
        );
        let dropped: u64 = report
            .link_stats
            .iter()
            .map(|(_, s)| s.messages_dropped)
            .sum();
        assert!(dropped > 0, "loss must land in the dropped counters");
    }

    #[test]
    fn overload_without_admission_drops_silently() {
        let mut sc = small_scenario(13);
        sc.horizon = Duration::from_secs(1);
        sc.provider.workers = 1;
        sc.provider.verify_cost = Duration::from_millis(50); // capacity 20/s << offered 200/s
        sc.provider.queue_limit = 4;
        sc.retry.timeout = Duration::from_millis(500);
        let report = sc.run();
        assert!(report.dropped_queue_full > 0, "legacy mode sheds silently");
        assert_eq!(report.shed_admission, 0);
        assert!(report.gave_up > 0, "silent drops burn retry budgets");
    }

    #[test]
    fn admission_control_sheds_with_retry_after_instead() {
        let mut sc = small_scenario(13);
        sc.provider.workers = 1;
        sc.provider.verify_cost = Duration::from_millis(20);
        sc.provider.queue_limit = 4;
        sc.provider.admission = Some(AdmissionConfig::for_service_time(
            4,
            Duration::from_millis(20),
        ));
        sc.retry.timeout = Duration::from_millis(500);
        let report = sc.run();
        assert!(report.shed_admission > 0, "admission sheds typed");
        assert_eq!(
            report.dropped_queue_full, 0,
            "no silent drops with admission"
        );
        assert!(
            report.queue_depth_watermark <= 5,
            "queue stays bounded: {}",
            report.queue_depth_watermark
        );
    }

    #[test]
    fn full_stack_hook_sees_sampled_clients_deterministically() {
        struct Recorder {
            calls: Vec<(u32, bool)>,
        }
        impl FullStackHook for Recorder {
            fn submit(&mut self, i: u32, replay: bool, _at: Duration) -> HookOutcome {
                self.calls.push((i, replay));
                if replay {
                    HookOutcome::Replayed
                } else {
                    HookOutcome::Settled
                }
            }
        }
        let mut sc = small_scenario(21);
        sc.full_stack_every = 50;
        let mut h1 = Recorder { calls: Vec::new() };
        let r1 = sc.run_with(&mut h1);
        let mut h2 = Recorder { calls: Vec::new() };
        let _ = sc.run_with(&mut h2);
        assert!(!h1.calls.is_empty(), "sampled clients reach the hook");
        assert_eq!(h1.calls, h2.calls, "hook call order is deterministic");
        assert_eq!(r1.full_stack.submitted, h1.calls.len() as u64);
        assert!(h1.calls.iter().all(|(i, _)| i % 50 == 0));
    }

    #[test]
    fn annotate_and_tag_flow_into_the_digest() {
        let mut sc = small_scenario(3);
        sc.tag_run("unit");
        let mut report = sc.run();
        report.annotate("purpose", "test");
        let digest = report.digest();
        assert!(digest.contains("run_tag=unit"));
        assert!(digest.contains("note purpose=test"));
    }

    #[test]
    fn export_metrics_registers_fleet_families() {
        let report = small_scenario(5).run();
        let registry = MetricsRegistry::new();
        report.export_metrics(&registry, &[("load", "1.0")]);
        let snap = registry.snapshot(Duration::ZERO);
        assert!(snap.samples.iter().any(
            |s| s.id.name == "fleet.settled" && s.id.labels == [("load".into(), "1.0".into())]
        ));
        assert!(snap.samples.iter().any(|s| s.id.name == "fleet.latency"));
        assert!(snap
            .samples
            .iter()
            .any(|s| s.id.name == "fleet.link_messages_carried"));
    }
}
