//! End-to-end orchestration of one transaction.
//!
//! Puts all the pieces on one timeline: order placement, challenge
//! delivery over the network model, the DRTM confirmation session, the
//! evidence upload, and server-side verification. The resulting
//! [`E2eReport`] is the row format of the end-to-end latency experiment
//! (E3).

use crate::provider::{Receipt, ServiceProvider};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_core::protocol::Evidence;
use utp_core::verifier::{VerifierConfig, VerifyError};
use utp_crypto::rsa::RsaPublicKey;
use utp_flicker::pal::Operator;
use utp_flicker::runtime::PhaseTimings;
use utp_journal::{Journal, RecoveryReport};
use utp_netsim::{FullStackHook, HookOutcome, Link};
use utp_platform::machine::Machine;
use utp_trace::{keys, names, Value};

/// Approximate size of the initial order-intent message.
const ORDER_INTENT_LEN: usize = 256;

/// Emits one deterministic network-leg span on the caller's trace sink.
fn trace_leg(leg: &str, ts: Duration, dur: Duration, bytes: usize) {
    utp_trace::span(
        names::NET_DELIVER,
        ts,
        dur,
        &[
            (keys::LEG, Value::Str(leg.to_string())),
            (keys::BYTES, Value::U64(bytes as u64)),
        ],
    );
}

/// Timing and outcome of one end-to-end transaction.
#[derive(Debug, Clone)]
pub struct E2eReport {
    /// Settlement outcome.
    pub outcome: Result<Receipt, VerifyError>,
    /// The trusted-session phase breakdown.
    pub session: PhaseTimings,
    /// Time spent on the wire (all legs).
    pub network: Duration,
    /// Host-measured server verification CPU time.
    pub verify_cpu: Duration,
    /// Total virtual time from order click to settlement.
    pub total: Duration,
    /// Virtual device time the settlement journal consumed (zero when
    /// the provider runs without one).
    pub durability: Duration,
}

impl E2eReport {
    /// Total excluding human interaction — the protocol's intrinsic cost.
    pub fn machine_only(&self) -> Duration {
        self.total - self.session.human
    }
}

/// Journal device time consumed so far, `ZERO` without a journal.
fn journal_time(provider: &ServiceProvider) -> Duration {
    provider
        .journal()
        .map(|j| j.device_time())
        .unwrap_or(Duration::ZERO)
}

/// Folds journal device time spent since `before` into the virtual
/// clock — the disk is one more simulated device on the timeline.
fn fold_journal_time(
    machine: &mut Machine,
    provider: &ServiceProvider,
    before: Duration,
) -> Duration {
    let delta = journal_time(provider).saturating_sub(before);
    machine.advance(delta);
    delta
}

/// Restarts a provider from its journal after a crash, on the machine's
/// timeline: the recovery read cost advances the virtual clock and is
/// traced as a deterministic `journal.recover` span. The recovered
/// provider has the journal re-attached; call
/// [`ServiceProvider::attach_service`] afterwards to resume sharded
/// verification (recovered nonces migrate into the shards).
pub fn recover_provider(
    machine: &mut Machine,
    ca_key: RsaPublicKey,
    config: VerifierConfig,
    seed: u64,
    journal: Arc<Journal>,
) -> (ServiceProvider, RecoveryReport) {
    let t0 = machine.now();
    let device_before = journal.device_time();
    let (provider, report) = ServiceProvider::recover(ca_key, config, seed, journal);
    let cost = journal_time(&provider).saturating_sub(device_before);
    utp_trace::span(
        names::JOURNAL_RECOVER,
        t0,
        cost,
        &[
            (keys::RECORDS, Value::U64(report.records_applied)),
            (keys::BYTES, Value::U64(report.valid_log_bytes as u64)),
        ],
    );
    machine.advance(cost);
    (provider, report)
}

/// Runs one transaction end to end.
///
/// The order intent travels client→provider, the challenge comes back,
/// the client runs the confirmation PAL, the evidence travels up, and the
/// provider verifies (its real CPU time is measured on the host and folded
/// into the virtual timeline). If the provider has a
/// [`crate::service::VerifierService`] attached, verification goes through
/// its sharded pipeline; the measured CPU time then includes the queue
/// round-trip. With a journal attached, WAL device time for the order and
/// settle records is folded into the timeline as well and reported as
/// [`E2eReport::durability`].
#[allow(clippy::too_many_arguments)]
pub fn run_transaction(
    machine: &mut Machine,
    client: &mut Client,
    provider: &mut ServiceProvider,
    link: &mut Link,
    account: &str,
    payee: &str,
    amount_cents: u64,
    memo: &str,
    operator: &mut dyn Operator,
) -> Result<E2eReport, utp_core::UtpError> {
    let t0 = machine.now();
    let mut network = Duration::ZERO;
    let mut durability = Duration::ZERO;

    // Order intent: client → provider.
    let d = link.one_way_delay(ORDER_INTENT_LEN);
    trace_leg("order", machine.now(), d, ORDER_INTENT_LEN);
    machine.advance(d);
    network += d;
    let j0 = journal_time(provider);
    let (order_id, request) =
        provider.place_order(account, payee, amount_cents, "EUR", memo, machine.now());
    durability += fold_journal_time(machine, provider, j0);

    // Challenge: provider → client.
    let request_bytes = request.to_bytes();
    let d = link.one_way_delay(request_bytes.len());
    trace_leg("challenge", machine.now(), d, request_bytes.len());
    machine.advance(d);
    network += d;

    // The trusted session.
    let t_session = machine.now();
    let (evidence, report) = client.confirm_with_report(machine, &request, operator)?;
    for (name, start, dur) in report.timings.spans(t_session) {
        utp_trace::span(name, start, dur, &[]);
    }

    // Evidence: client → provider.
    let evidence_len = evidence.to_bytes().len();
    let d = link.one_way_delay(evidence_len);
    trace_leg("evidence", machine.now(), d, evidence_len);
    machine.advance(d);
    network += d;

    // Server-side verification: real host CPU, measured at the metrics
    // boundary and folded into virtual time.
    let t_verify = machine.now();
    let j0 = journal_time(provider);
    let (outcome, verify_cpu) =
        crate::metrics::host_timed(|| provider.submit_evidence(order_id, &evidence, machine.now()));
    utp_trace::span_volatile(
        names::FLOW_VERIFY,
        t_verify,
        verify_cpu,
        &[(
            keys::VERIFY_HOST,
            Value::HostNs(verify_cpu.as_nanos() as u64),
        )],
    );
    machine.advance(verify_cpu);
    durability += fold_journal_time(machine, provider, j0);

    Ok(E2eReport {
        outcome,
        session: report.timings,
        network,
        verify_cpu,
        total: machine.now() - t0,
        durability,
    })
}

/// The account every sampled fleet client draws on, and the fixed order
/// it places (the fleet model varies load, not basket contents).
const FLEET_ACCOUNT: &str = "fleet";
const FLEET_PAYEE: &str = "fleet-shop";
const FLEET_AMOUNT_CENTS: u64 = 4_200;

/// A [`FullStackHook`] that runs sampled fleet transactions through the
/// real stack: one enrolled machine/client pair produces genuine DRTM
/// evidence, and a real (optionally journaled) [`ServiceProvider`]
/// settles it. `utp-netsim` decides *when* a sampled client submits and
/// whether the submission is a replay; this hook decides *what happens*,
/// so replay storms in the simulator exercise the provider's actual
/// nonce/settle machinery instead of a bookkeeping model.
///
/// Everything inside is seeded and the simulator calls the hook in
/// deterministic event order, so a fleet run with full-stack sampling is
/// still byte-reproducible.
pub struct FleetStackHook {
    machine: Machine,
    client: Client,
    provider: ServiceProvider,
    /// First-submission artifacts per fleet index: replays must resend
    /// the *same* evidence bytes, like a client retrying on timeout.
    orders: HashMap<u32, (u64, Evidence)>,
    seed: u64,
}

impl FleetStackHook {
    /// Builds the enrolled client and provider world from one seed.
    pub fn new(seed: u64) -> FleetStackHook {
        use utp_platform::machine::MachineConfig;
        let ca = PrivacyCa::new(512, seed);
        let mut provider = ServiceProvider::new(ca.public_key().clone(), seed ^ 0x50524f56);
        provider.open_account(FLEET_ACCOUNT, i64::MAX / 2);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(seed ^ 0x4d414348));
        let enrollment = ca.enroll(&mut machine);
        let client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        FleetStackHook {
            machine,
            client,
            provider,
            orders: HashMap::new(),
            seed,
        }
    }

    /// Attaches a settlement journal, so sampled settles are WAL-durable
    /// and a crash/recovery can be checked against the fleet report.
    pub fn attach_journal(&mut self, journal: Arc<Journal>) {
        self.provider.attach_journal(journal);
    }

    /// The provider settling the sampled transactions (for post-run
    /// balance / audit assertions).
    pub fn provider(&self) -> &ServiceProvider {
        &self.provider
    }

    /// Number of distinct sampled orders placed so far.
    pub fn orders_placed(&self) -> usize {
        self.orders.len()
    }

    /// Cents a single settled order moves — callers can assert the
    /// account drained by exactly `settled × spend_per_order`, i.e. that
    /// replays never double-spent.
    pub fn spend_per_order() -> u64 {
        FLEET_AMOUNT_CENTS
    }

    /// Runs the full place-order → confirm → submit path once.
    fn first_submission(&mut self, fleet_index: u32) -> Result<Receipt, VerifyError> {
        let now = self.machine.now();
        let (order_id, request) = self.provider.place_order(
            FLEET_ACCOUNT,
            FLEET_PAYEE,
            FLEET_AMOUNT_CENTS,
            "EUR",
            "fleet",
            now,
        );
        let mut human = ConfirmingHuman::new(
            Intent {
                payee: FLEET_PAYEE.into(),
                amount: "42.00 EUR".into(),
                approve: true,
            },
            self.seed ^ u64::from(fleet_index),
        );
        let evidence = match self.client.confirm(&mut self.machine, &request, &mut human) {
            Ok(e) => e,
            Err(_) => return Err(VerifyError::MalformedEvidence),
        };
        let outcome = self
            .provider
            .submit_evidence(order_id, &evidence, self.machine.now());
        self.orders.insert(fleet_index, (order_id, evidence));
        outcome
    }
}

impl FullStackHook for FleetStackHook {
    fn submit(&mut self, fleet_index: u32, replay: bool, _at: Duration) -> HookOutcome {
        let outcome = if replay {
            match self.orders.get(&fleet_index) {
                // A true replay: identical evidence, same order id.
                Some((order_id, evidence)) => {
                    self.provider
                        .submit_evidence(*order_id, evidence, self.machine.now())
                }
                // The simulator saw a resend whose original was lost on
                // the wire before reaching us: it is a first submission
                // from the provider's point of view.
                None => self.first_submission(fleet_index),
            }
        } else {
            self.first_submission(fleet_index)
        };
        match outcome {
            Ok(_) => HookOutcome::Settled,
            Err(VerifyError::Replayed) => HookOutcome::Replayed,
            Err(_) => HookOutcome::Rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_netsim::LinkConfig;
    use utp_platform::machine::MachineConfig;
    use utp_tpm::VendorProfile;

    fn setup(machine_config: MachineConfig) -> (ServiceProvider, Machine, Client) {
        let ca = PrivacyCa::new(512, 121);
        let mut provider = ServiceProvider::new(ca.public_key().clone(), 122);
        provider.store_mut().open_account("alice", 1_000_000);
        let mut machine = Machine::new(machine_config);
        let enrollment = ca.enroll(&mut machine);
        let client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        (provider, machine, client)
    }

    #[test]
    fn end_to_end_confirms_and_accounts_time() {
        let (mut provider, mut machine, mut client) = setup(MachineConfig::fast_for_tests(123));
        let mut link = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(40)), 1);
        // The human approves whatever they initiated: intent set after the
        // order is placed would be circular, so approve by payee+amount.
        let mut human = ConfirmingHuman::new(
            Intent {
                payee: "bookshop".into(),
                amount: "42.00 EUR".into(),
                approve: true,
            },
            124,
        );
        let report = run_transaction(
            &mut machine,
            &mut client,
            &mut provider,
            &mut link,
            "alice",
            "bookshop",
            4_200,
            "order",
            &mut human,
        )
        .unwrap();
        assert!(report.outcome.is_ok());
        // Three legs at >= 20 ms each.
        assert!(report.network >= Duration::from_millis(60));
        assert!(report.total >= report.network + report.session.total());
        assert!(report.machine_only() <= report.total);
    }

    #[test]
    fn end_to_end_confirms_through_attached_service() {
        let (mut provider, mut machine, mut client) = setup(MachineConfig::fast_for_tests(127));
        provider.attach_service(2, 2);
        let mut link = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(40)), 3);
        let mut human = ConfirmingHuman::new(
            Intent {
                payee: "bookshop".into(),
                amount: "42.00 EUR".into(),
                approve: true,
            },
            128,
        );
        let report = run_transaction(
            &mut machine,
            &mut client,
            &mut provider,
            &mut link,
            "alice",
            "bookshop",
            4_200,
            "order",
            &mut human,
        )
        .unwrap();
        assert!(report.outcome.is_ok());
        let stats = provider.detach_service().unwrap();
        assert_eq!(stats.totals().accepted, 1);
    }

    #[test]
    fn transaction_traces_a_full_waterfall() {
        let recorder = utp_trace::Recorder::new();
        let (mut provider, mut machine, mut client) = setup(MachineConfig::fast_for_tests(129));
        let mut link = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(40)), 5);
        let mut human = ConfirmingHuman::new(
            Intent {
                payee: "bookshop".into(),
                amount: "42.00 EUR".into(),
                approve: true,
            },
            130,
        );
        {
            let _sink = recorder.install("txn/0");
            run_transaction(
                &mut machine,
                &mut client,
                &mut provider,
                &mut link,
                "alice",
                "bookshop",
                4_200,
                "order",
                &mut human,
            )
            .unwrap();
        }
        let recs = recorder.records();
        let count = |n: &str| recs.iter().filter(|r| r.name == n).count();
        assert_eq!(count(names::NET_DELIVER), 3, "three network legs");
        for phase in [
            names::SESSION_SUSPEND,
            names::SESSION_SKINIT,
            names::SESSION_PAL,
            names::SESSION_HUMAN,
            names::SESSION_ATTEST,
            names::SESSION_RESUME,
        ] {
            assert_eq!(count(phase), 1, "missing session phase {phase}");
        }
        assert_eq!(count(names::FLOW_VERIFY), 1);
        assert_eq!(count(names::AUDIT_DECISION), 1);
        // The verification span is host-timed, hence volatile-only.
        let canonical = recorder.export_jsonl(utp_trace::Export::Canonical);
        assert!(!canonical.contains("flow.verify"));
        assert!(canonical.contains("net.deliver"));
        assert!(canonical.contains("session.human"));
        // The waterfall renders every span of the transaction's track.
        let wf = utp_trace::report::waterfall(&recs, "txn/0");
        assert!(wf.contains("session.pal"), "{wf}");
        assert!(wf.contains("net.deliver"), "{wf}");
    }

    #[test]
    fn journaled_flow_recovers_after_crash_on_the_same_timeline() {
        let ca = PrivacyCa::new(512, 221);
        let mut provider = ServiceProvider::new(ca.public_key().clone(), 222);
        let journal = Arc::new(Journal::new(utp_journal::JournalConfig::fast_for_tests()));
        provider.attach_journal(Arc::clone(&journal));
        provider.open_account("alice", 1_000_000);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(223));
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let mut link = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(40)), 7);
        let mut human = ConfirmingHuman::new(
            Intent {
                payee: "bookshop".into(),
                amount: "42.00 EUR".into(),
                approve: true,
            },
            224,
        );
        let report = run_transaction(
            &mut machine,
            &mut client,
            &mut provider,
            &mut link,
            "alice",
            "bookshop",
            4_200,
            "order",
            &mut human,
        )
        .unwrap();
        assert!(report.outcome.is_ok());
        assert!(
            report.durability > Duration::ZERO,
            "journal device time is on the timeline"
        );
        assert!(report.total >= report.network + report.session.total() + report.durability);

        // Power fails; the restart replays the journal on the same clock.
        drop(provider);
        journal.crash();
        let recorder = utp_trace::Recorder::new();
        let t_restart = machine.now();
        let (recovered, rec_report) = {
            let _sink = recorder.install("restart");
            recover_provider(
                &mut machine,
                ca.public_key().clone(),
                VerifierConfig::default(),
                225,
                Arc::clone(&journal),
            )
        };
        // open + order + settle, all durable before the crash.
        assert_eq!(rec_report.records_applied, 3);
        assert!(recovered.is_confirmed(0));
        assert_eq!(
            recovered.store().account("alice").unwrap().balance_cents,
            995_800
        );
        assert!(machine.now() > t_restart, "recovery reads cost device time");
        let recs = recorder.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, names::JOURNAL_RECOVER);
        assert!(!recs[0].volatile, "recovery span is deterministic");
        let canonical = recorder.export_jsonl(utp_trace::Export::Canonical);
        assert!(canonical.contains("journal.recover"), "{canonical}");
    }

    #[test]
    fn fleet_stack_hook_settles_once_and_catches_replays() {
        let mut hook = FleetStackHook::new(900);
        assert!(matches!(
            hook.submit(0, false, Duration::ZERO),
            HookOutcome::Settled
        ));
        // A resend of the same fleet client is a true replay: identical
        // evidence bytes, same order, caught by the settle table.
        assert!(matches!(
            hook.submit(0, true, Duration::from_millis(5)),
            HookOutcome::Replayed
        ));
        // A "replay" whose first copy died on the wire is a first
        // submission from the provider's point of view.
        assert!(matches!(
            hook.submit(1, true, Duration::from_millis(6)),
            HookOutcome::Settled
        ));
        assert_eq!(hook.orders_placed(), 2);
        let spent = (i64::MAX / 2)
            - hook
                .provider()
                .store()
                .account("fleet")
                .unwrap()
                .balance_cents;
        assert_eq!(
            spent,
            2 * FleetStackHook::spend_per_order() as i64,
            "two distinct orders settled exactly once each"
        );
    }

    #[test]
    fn lossy_fleet_with_sampled_full_stack_never_double_spends() {
        use utp_netsim::{ArrivalCurve, LinkProfile, Scenario, Topology};
        let scenario = || {
            let leaf = LinkProfile::clean(LinkConfig::broadband()).with_loss_ppm(150_000);
            let topo = Topology::star(40, leaf);
            let mut sc = Scenario::new(topo, ArrivalCurve::Steady, Duration::from_secs(1), 77);
            sc.provider.workers = 2;
            sc.retry.timeout = Duration::from_millis(250);
            sc.full_stack_every = 5;
            sc
        };
        let mut hook = FleetStackHook::new(78);
        let report = scenario().run_with(&mut hook);
        let fs = &report.full_stack;
        assert!(fs.settled > 0, "sampled clients must settle: {fs:?}");
        assert_eq!(fs.submitted, fs.settled + fs.replayed + fs.rejected);
        // The real provider's ledger moved once per settled order even
        // though the loss storm forced evidence replays.
        let spent = (i64::MAX / 2)
            - hook
                .provider()
                .store()
                .account("fleet")
                .unwrap()
                .balance_cents;
        assert_eq!(
            spent as u64,
            fs.settled * FleetStackHook::spend_per_order(),
            "replays must never double-spend"
        );
        // Same seeds, fresh hook: the full-stack leg is as reproducible
        // as the pure model.
        let mut hook2 = FleetStackHook::new(78);
        let again = scenario().run_with(&mut hook2);
        assert_eq!(report.digest(), again.digest());
    }

    #[test]
    fn end_to_end_with_realistic_hardware_is_seconds_scale() {
        let (mut provider, mut machine, mut client) =
            setup(MachineConfig::realistic(VendorProfile::Infineon, 125));
        let mut link = Link::new(LinkConfig::broadband(), 2);
        let mut human = ConfirmingHuman::new(
            Intent {
                payee: "bookshop".into(),
                amount: "42.00 EUR".into(),
                approve: true,
            },
            126,
        );
        let report = run_transaction(
            &mut machine,
            &mut client,
            &mut provider,
            &mut link,
            "alice",
            "bookshop",
            4_200,
            "order",
            &mut human,
        )
        .unwrap();
        assert!(report.outcome.is_ok());
        // Paper's practicality claim: total is seconds (human-dominated),
        // machine-only overhead is sub-second plus the quote.
        assert!(report.total >= Duration::from_secs(1));
        assert!(report.total <= Duration::from_secs(60));
        assert!(report.machine_only() >= Duration::from_millis(400));
        assert!(report.machine_only() <= Duration::from_secs(5));
    }
}
