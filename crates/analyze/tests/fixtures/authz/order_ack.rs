//! WAL-before-ack fixtures: on `Settle` work items the decision must be
//! journaled (or the no-journal mode guarded) before the ticket is
//! resolved. Only `ack_first` violates the rule.

pub fn ack_first(journal: &Journal, reply: &Sender, item: WorkItem) {
    if let WorkItem::Settle { outcome, .. } = item {
        reply.send(outcome);
        journal.append_record(&JournalRecord::Decision(1));
    }
}

pub fn ack_after_wal(journal: &Journal, reply: &Sender, item: WorkItem) {
    if let WorkItem::Settle { outcome, .. } = item {
        journal.append_record(&JournalRecord::Decision(1));
        reply.send(outcome);
    }
}

pub fn ack_guarded(journal: Option<&Journal>, reply: &Sender, item: WorkItem) {
    if let WorkItem::Settle { outcome, .. } = item {
        if let Some(journal) = journal {
            journal.append_record(&JournalRecord::Decision(1));
        }
        reply.send(outcome);
    }
}

pub fn ack_via_helper(journal: &Journal, reply: &Sender, item: WorkItem) {
    if let WorkItem::Settle { outcome, .. } = item {
        journal_settle(journal);
        reply.send(outcome);
    }
}

fn journal_settle(journal: &Journal) {
    journal.append_record(&JournalRecord::Decision(1));
}
