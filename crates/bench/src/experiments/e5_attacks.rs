//! E5 — the security evaluation: transaction-generator success rates
//! under (a) no protection, (b) CAPTCHA, (c) the uni-directional trusted
//! path, across the attack suite.
//!
//! Regenerate: `cargo run -p utp-bench --bin e5_attacks`

use crate::table;
use utp_attack::harness::{run_trials, AttackResult};
use utp_attack::scenarios;
use utp_captcha::Difficulty;

/// One attack × defense cell.
#[derive(Debug, Clone)]
pub struct AttackRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Defense label.
    pub defense: &'static str,
    /// Measured result.
    pub result: AttackResult,
}

/// Runs the full matrix. `trials` controls statistical resolution for the
/// probabilistic cells; the deterministic UTP cells use fewer trials (each
/// builds a whole world, including RSA key generation).
pub fn run(trials: usize, utp_trials: usize) -> Vec<AttackRow> {
    let mut rows = Vec::new();
    rows.push(AttackRow {
        scenario: "transaction generator",
        defense: "none",
        result: run_trials(trials.min(200), 1, scenarios::attack_unprotected),
    });
    for (label, difficulty) in [
        ("captcha-easy", Difficulty::Easy),
        ("captcha-medium", Difficulty::Medium),
        ("captcha-hard", Difficulty::Hard),
    ] {
        rows.push(AttackRow {
            scenario: "bot solver (OCR)",
            defense: label,
            result: run_trials(trials, 2, |s| {
                scenarios::attack_captcha(difficulty, false, s)
            }),
        });
    }
    rows.push(AttackRow {
        scenario: "solving service",
        defense: "captcha-hard",
        result: run_trials(trials, 3, |s| {
            scenarios::attack_captcha(Difficulty::Hard, true, s)
        }),
    });
    rows.push(AttackRow {
        scenario: "forged quote (locality 0)",
        defense: "utp",
        result: run_trials(utp_trials, 4, scenarios::attack_utp_forged_quote),
    });
    rows.push(AttackRow {
        scenario: "evil PAL (auto-confirm)",
        defense: "utp",
        result: run_trials(utp_trials, 5, scenarios::attack_utp_evil_pal),
    });
    rows.push(AttackRow {
        scenario: "evidence replay",
        defense: "utp",
        result: run_trials(utp_trials, 6, scenarios::attack_utp_replay),
    });
    rows.push(AttackRow {
        scenario: "keystroke injection",
        defense: "utp",
        result: run_trials(utp_trials, 7, scenarios::attack_utp_key_injection),
    });
    rows.push(AttackRow {
        scenario: "tx swap, vigilant human",
        defense: "utp",
        result: run_trials(utp_trials, 8, |s| scenarios::attack_utp_mitm_swap(1.0, s)),
    });
    rows.push(AttackRow {
        scenario: "tx swap, careless human",
        defense: "utp",
        result: run_trials(utp_trials, 9, |s| scenarios::attack_utp_mitm_swap(0.0, s)),
    });
    rows.push(AttackRow {
        scenario: "(control) legitimate user",
        defense: "utp",
        result: run_trials(utp_trials, 10, scenarios::legitimate_transaction),
    });
    rows
}

/// Renders the E5 table.
pub fn render(rows: &[AttackRow]) -> String {
    table::render(
        "E5 - attack success rates by defense",
        &["scenario", "defense", "attempts", "successes", "rate"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.to_string(),
                    r.defense.to_string(),
                    r.result.attempts.to_string(),
                    r.result.successes.to_string(),
                    table::pct(r.result.rate()),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_matches_paper() {
        let rows = run(300, 5);
        let rate = |scenario: &str, defense: &str| {
            rows.iter()
                .find(|r| r.scenario == scenario && r.defense == defense)
                .unwrap_or_else(|| panic!("row {} × {}", scenario, defense))
                .result
                .rate()
        };
        // (a) unprotected: generators always win.
        assert_eq!(rate("transaction generator", "none"), 1.0);
        // (b) CAPTCHA: bots get through, more on easy than hard; solving
        // services defeat even hard.
        assert!(
            rate("bot solver (OCR)", "captcha-easy") > rate("bot solver (OCR)", "captcha-hard")
        );
        assert!(rate("bot solver (OCR)", "captcha-hard") > 0.0);
        assert!(rate("solving service", "captcha-hard") > 0.85);
        // (c) UTP: every automated attack collapses to zero.
        for scenario in [
            "forged quote (locality 0)",
            "evil PAL (auto-confirm)",
            "evidence replay",
            "keystroke injection",
            "tx swap, vigilant human",
        ] {
            assert_eq!(rate(scenario, "utp"), 0.0, "{}", scenario);
        }
        // Residual risk: careless humans approve swapped transactions.
        assert!(rate("tx swap, careless human", "utp") > 0.5);
        // Availability control.
        assert!(rate("(control) legitimate user", "utp") > 0.7);
    }
}
