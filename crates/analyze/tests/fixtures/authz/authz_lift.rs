//! Interprocedural lifting fixtures. `finish` lacks any local
//! authorization, but its only caller establishes every capability
//! before the call (via the `authorize` wrapper, which the granting
//! closure turns into a source) — clean. `finish_unchecked`'s only
//! caller establishes nothing — deny.

pub fn entry(
    store: &mut Store,
    verifier: &Verifier,
    order_id: u64,
    evidence: &Evidence,
    now: Duration,
) {
    authorize(store, verifier, order_id, evidence, now);
    finish(store, order_id);
}

fn authorize(
    store: &Store,
    verifier: &Verifier,
    order_id: u64,
    evidence: &Evidence,
    now: Duration,
) {
    check_order_binding(store, order_id, evidence);
    verifier.verify(evidence, now);
}

fn finish(store: &mut Store, order_id: u64) {
    store.try_settle(order_id);
}

pub fn entry_unchecked(store: &mut Store, order_id: u64) {
    finish_unchecked(store, order_id);
}

fn finish_unchecked(store: &mut Store, order_id: u64) {
    store.try_settle(order_id);
}
