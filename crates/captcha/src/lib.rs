//! CAPTCHA baseline.
//!
//! The paper argues the uni-directional trusted path can *replace*
//! CAPTCHAs: both try to prove a human is behind a request, but CAPTCHAs
//! are increasingly solvable by bots (and by outsourced human farms) while
//! costing legitimate users seconds of annoyance per attempt. This crate
//! models the baseline so experiment E5/E6 can compare the two:
//!
//! * [`Challenge`] generation with a difficulty knob,
//! * a human solver model (solve time and failure rate grow with
//!   difficulty — parameters follow the published usability studies of the
//!   era: ~10 s median solve time, 8–30 % failure depending on scheme),
//! * a bot solver model (automated OCR success falls with difficulty but
//!   never reaches zero; solving services make success ≈ 100 % for a fee).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod service;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Distortion level of a generated CAPTCHA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Difficulty {
    /// Lightly distorted text (pre-2008 style).
    Easy,
    /// Typical 2011 commercial scheme.
    Medium,
    /// Heavily distorted / crowded (reCAPTCHA-hard).
    Hard,
}

impl Difficulty {
    /// All levels, ascending.
    pub fn all() -> [Difficulty; 3] {
        [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard]
    }
}

/// A generated challenge: the answer plus its difficulty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Challenge {
    /// The expected answer string.
    pub answer: String,
    /// Distortion level.
    pub difficulty: Difficulty,
}

/// Deterministic challenge generator.
#[derive(Debug, Clone)]
pub struct CaptchaGenerator {
    rng: StdRng,
}

impl CaptchaGenerator {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        CaptchaGenerator {
            rng: StdRng::seed_from_u64(seed ^ 0x4341_5054u64),
        }
    }

    /// Generates a 6-character alphanumeric challenge.
    pub fn generate(&mut self, difficulty: Difficulty) -> Challenge {
        const ALPHABET: &[u8] = b"abcdefghjkmnpqrstuvwxyz23456789"; // no 0/o/1/l/i
        let answer: String = (0..6)
            .map(|_| ALPHABET[self.rng.gen_range(0..ALPHABET.len())] as char)
            .collect();
        Challenge { answer, difficulty }
    }
}

/// Outcome of one solve attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveOutcome {
    /// Whether the submitted answer was correct.
    pub success: bool,
    /// Time the attempt took.
    pub elapsed: Duration,
}

/// Human solver model: solve time and failure rate per difficulty,
/// calibrated to the usability literature the paper cites in motivation
/// (Bursztein et al. measured ~9.8 s mean and up to 30 % disagreement on
/// hard schemes).
#[derive(Debug, Clone)]
pub struct HumanSolver {
    rng: StdRng,
}

impl HumanSolver {
    /// Creates a solver from a seed.
    pub fn new(seed: u64) -> Self {
        HumanSolver {
            rng: StdRng::seed_from_u64(seed ^ 0x48_554d_u64),
        }
    }

    fn params(difficulty: Difficulty) -> (Duration, f64) {
        // (mean solve time, failure probability)
        match difficulty {
            Difficulty::Easy => (Duration::from_millis(7_000), 0.05),
            Difficulty::Medium => (Duration::from_millis(9_800), 0.12),
            Difficulty::Hard => (Duration::from_millis(14_000), 0.28),
        }
    }

    /// Attempts a challenge.
    pub fn solve(&mut self, challenge: &Challenge) -> SolveOutcome {
        let (mean, failure) = Self::params(challenge.difficulty);
        let jitter = 0.6 + 0.8 * self.rng.gen::<f64>();
        SolveOutcome {
            success: self.rng.gen::<f64>() >= failure,
            elapsed: mean.mul_f64(jitter),
        }
    }
}

/// Bot solver model: OCR-style automation whose success rate falls with
/// difficulty but never reaches zero; attempts are fast and free to retry.
#[derive(Debug, Clone)]
pub struct BotSolver {
    rng: StdRng,
    /// Success probability per difficulty can be overridden to model better
    /// OCR or a paid human-solving service (success ≈ 1.0).
    pub success_rates: [f64; 3],
}

impl BotSolver {
    /// 2011-era OCR attack rates (Bursztein et al. broke 13 of 15 schemes;
    /// per-challenge rates varied widely — these are mid-range).
    pub fn ocr(seed: u64) -> Self {
        BotSolver {
            rng: StdRng::seed_from_u64(seed ^ 0x42_4f54_u64),
            success_rates: [0.65, 0.30, 0.08],
        }
    }

    /// A paid human-solving farm: near-perfect but slow (~20 s turnaround).
    pub fn solving_service(seed: u64) -> Self {
        BotSolver {
            rng: StdRng::seed_from_u64(seed ^ 0x464152u64),
            success_rates: [0.98, 0.98, 0.95],
        }
    }

    fn rate(&self, difficulty: Difficulty) -> f64 {
        match difficulty {
            Difficulty::Easy => self.success_rates[0],
            Difficulty::Medium => self.success_rates[1],
            Difficulty::Hard => self.success_rates[2],
        }
    }

    /// Attempts a challenge automatically.
    pub fn solve(&mut self, challenge: &Challenge) -> SolveOutcome {
        let rate = self.rate(challenge.difficulty);
        let elapsed = if self.success_rates[0] > 0.9 {
            // Solving-service turnaround.
            Duration::from_millis(15_000 + self.rng.gen_range(0..10_000))
        } else {
            Duration::from_millis(150 + self.rng.gen_range(0..200))
        };
        SolveOutcome {
            success: self.rng.gen::<f64>() < rate,
            elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_varied() {
        let mut a = CaptchaGenerator::new(5);
        let mut b = CaptchaGenerator::new(5);
        let c1 = a.generate(Difficulty::Medium);
        assert_eq!(c1, b.generate(Difficulty::Medium));
        assert_eq!(c1.answer.len(), 6);
        let c2 = a.generate(Difficulty::Medium);
        assert_ne!(c1.answer, c2.answer);
    }

    #[test]
    fn answers_avoid_ambiguous_characters() {
        let mut g = CaptchaGenerator::new(6);
        for _ in 0..100 {
            let c = g.generate(Difficulty::Easy);
            for ch in c.answer.chars() {
                assert!(!"0o1liI".contains(ch), "ambiguous char {}", ch);
            }
        }
    }

    fn success_rate(outcomes: &[SolveOutcome]) -> f64 {
        outcomes.iter().filter(|o| o.success).count() as f64 / outcomes.len() as f64
    }

    #[test]
    fn human_failure_grows_with_difficulty() {
        let mut g = CaptchaGenerator::new(7);
        let mut rates = Vec::new();
        for d in Difficulty::all() {
            let mut solver = HumanSolver::new(8);
            let outcomes: Vec<SolveOutcome> =
                (0..2000).map(|_| solver.solve(&g.generate(d))).collect();
            rates.push(success_rate(&outcomes));
        }
        assert!(rates[0] > rates[1] && rates[1] > rates[2], "{:?}", rates);
        assert!(rates[0] > 0.90);
        assert!(rates[2] < 0.80);
    }

    #[test]
    fn human_solve_time_is_seconds_scale() {
        let mut g = CaptchaGenerator::new(9);
        let mut solver = HumanSolver::new(10);
        let c = g.generate(Difficulty::Medium);
        for _ in 0..50 {
            let o = solver.solve(&c);
            assert!(o.elapsed >= Duration::from_secs(5));
            assert!(o.elapsed <= Duration::from_secs(15));
        }
    }

    #[test]
    fn ocr_bot_beats_easy_but_not_hard() {
        let mut g = CaptchaGenerator::new(11);
        let mut easy_bot = BotSolver::ocr(12);
        let easy: Vec<SolveOutcome> = (0..2000)
            .map(|_| easy_bot.solve(&g.generate(Difficulty::Easy)))
            .collect();
        let mut hard_bot = BotSolver::ocr(12);
        let hard: Vec<SolveOutcome> = (0..2000)
            .map(|_| hard_bot.solve(&g.generate(Difficulty::Hard)))
            .collect();
        assert!(success_rate(&easy) > 0.55);
        assert!(success_rate(&hard) < 0.15);
        // Crucially for the paper's argument: never zero.
        assert!(hard.iter().any(|o| o.success));
    }

    #[test]
    fn solving_service_defeats_all_difficulties_slowly() {
        let mut g = CaptchaGenerator::new(13);
        let mut farm = BotSolver::solving_service(14);
        let outcomes: Vec<SolveOutcome> = (0..500)
            .map(|_| farm.solve(&g.generate(Difficulty::Hard)))
            .collect();
        assert!(success_rate(&outcomes) > 0.9);
        assert!(outcomes[0].elapsed >= Duration::from_secs(15));
    }
}
