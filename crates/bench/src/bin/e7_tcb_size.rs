//! Prints the E7 table (TCB size by component).
use utp_bench::experiments::e7_tcb_size as e7;

fn main() {
    let rows = e7::run();
    println!("{}", e7::render(&rows));
}
