//! Deterministic network and fleet-load simulation.
//!
//! Two layers live here:
//!
//! - The original flat [`Link`] model — base propagation delay +
//!   seeded jitter + bandwidth-limited serialization — which is all
//!   the single-client end-to-end experiment (E3) needs.
//! - A discrete-event simulator ([`event`], [`topology`], [`bus`],
//!   [`fleet`], [`scenario`]) that routes typed frames over tree
//!   topologies with loss, reordering, and scripted partitions, and
//!   drives fleets of 100k–1M state-machine clients against a modeled
//!   provider — the E13 saturation harness. The [`admission`] policy
//!   it tunes is the same type the live `VerifierService` enforces.
//!
//! Everything runs on virtual time: no host clock is ever read, and
//! every random draw derives from caller-supplied seeds, so runs are
//! byte-reproducible.
//!
//! # Example
//!
//! ```
//! use utp_netsim::{Link, LinkConfig};
//! use std::time::Duration;
//!
//! let mut link = Link::new(LinkConfig::broadband(), 7);
//! let d = link.one_way_delay(1500);
//! assert!(d >= Duration::from_millis(10)); // half the 20 ms base RTT
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod bus;
pub mod event;
pub mod fleet;
pub mod scenario;
pub mod topology;

pub use admission::{Admission, AdmissionConfig};
pub use bus::{ClassStats, Frame, MessageBus, Payload};
pub use event::EventQueue;
pub use fleet::{ArrivalCurve, ArrivalPlan, FleetClient, Phase, RetryPolicy};
pub use scenario::{
    FleetReport, FullStackHook, FullStackTally, HookOutcome, NullHook, ProviderConfig, Scenario,
    WireSizes,
};
pub use topology::{LinkProfile, NodeId, NodeRole, PartitionWindow, Topology};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Link parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkConfig {
    /// Base round-trip time (propagation both ways, no payload).
    pub base_rtt: Duration,
    /// Maximum extra jitter per one-way trip (uniform in `[0, jitter]`).
    pub jitter: Duration,
    /// Serialization bandwidth in bytes per second.
    pub bandwidth: u64,
}

impl LinkConfig {
    /// 2011-era home broadband: 20 ms RTT, ±5 ms jitter, 1 MB/s up.
    pub fn broadband() -> Self {
        LinkConfig {
            base_rtt: Duration::from_millis(20),
            jitter: Duration::from_millis(5),
            bandwidth: 1_000_000,
        }
    }

    /// Continental path: 80 ms RTT.
    pub fn continental() -> Self {
        LinkConfig {
            base_rtt: Duration::from_millis(80),
            jitter: Duration::from_millis(15),
            bandwidth: 1_000_000,
        }
    }

    /// Intercontinental path: 200 ms RTT.
    pub fn intercontinental() -> Self {
        LinkConfig {
            base_rtt: Duration::from_millis(200),
            jitter: Duration::from_millis(30),
            bandwidth: 500_000,
        }
    }

    /// A custom symmetric link with the given RTT, no jitter, and the
    /// 1 MB/s default bandwidth — used by RTT sweeps.
    pub fn fixed_rtt(rtt: Duration) -> Self {
        LinkConfig::fixed_rtt_bw(rtt, 1_000_000)
    }

    /// A custom symmetric link with the given RTT and bandwidth and no
    /// jitter — lets sweeps vary bandwidth independently of RTT.
    pub fn fixed_rtt_bw(rtt: Duration, bandwidth: u64) -> Self {
        LinkConfig {
            base_rtt: rtt,
            jitter: Duration::ZERO,
            bandwidth,
        }
    }
}

/// The fate of one message offered to a [`Link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmit {
    /// The message survives and arrives after the carried delay.
    Delivered(Duration),
    /// The message was lost in flight.
    Dropped,
}

/// A seeded link instance.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    rng: StdRng,
    loss_ppm: u32,
    bytes_carried: u64,
    messages_carried: u64,
    bytes_dropped: u64,
    messages_dropped: u64,
}

impl Link {
    /// Creates a lossless link with the given config and jitter seed.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Link {
            config,
            rng: StdRng::seed_from_u64(seed ^ 0x4e_4554_u64),
            loss_ppm: 0,
            bytes_carried: 0,
            messages_carried: 0,
            bytes_dropped: 0,
            messages_dropped: 0,
        }
    }

    /// Sets a per-message loss probability (parts-per-million),
    /// applied by [`Link::transmit`].
    pub fn with_loss_ppm(mut self, ppm: u32) -> Self {
        self.loss_ppm = ppm;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// The raw delay model: propagation + jitter + serialization.
    /// Draws one jitter sample; does no accounting.
    fn raw_delay(&mut self, payload_len: usize) -> Duration {
        let propagation = self.config.base_rtt / 2;
        let jitter = self.config.jitter.mul_f64(self.rng.gen::<f64>());
        let serialization =
            Duration::from_secs_f64(payload_len as f64 / self.config.bandwidth as f64);
        propagation + jitter + serialization
    }

    /// Offers one message to the link and rolls its fate. Accounting
    /// happens *after* survival is known: a delivered message counts
    /// toward the carried totals, a lost one toward the dropped
    /// totals — never both.
    pub fn transmit(&mut self, payload_len: usize) -> Transmit {
        let delay = self.raw_delay(payload_len);
        let lost = self.loss_ppm > 0 && self.rng.gen_range(0..1_000_000_u32) < self.loss_ppm;
        if lost {
            self.messages_dropped += 1;
            self.bytes_dropped += payload_len as u64;
            return Transmit::Dropped;
        }
        self.messages_carried += 1;
        self.bytes_carried += payload_len as u64;
        Transmit::Delivered(delay)
    }

    /// Time for one message of `payload_len` bytes to cross the link.
    ///
    /// This models a message that *does* arrive (loss is the business
    /// of [`Link::transmit`] and the bus), so it counts toward the
    /// carried totals — the accounting only happens once survival is
    /// decided, which for this path is by definition.
    pub fn one_way_delay(&mut self, payload_len: usize) -> Duration {
        let delay = self.raw_delay(payload_len);
        self.bytes_carried += payload_len as u64;
        self.messages_carried += 1;
        delay
    }

    /// Time for a request/response exchange with the given payload sizes.
    pub fn round_trip(&mut self, request_len: usize, response_len: usize) -> Duration {
        self.one_way_delay(request_len) + self.one_way_delay(response_len)
    }

    /// Total bytes carried (both directions).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total messages carried.
    pub fn messages_carried(&self) -> u64 {
        self.messages_carried
    }

    /// Total bytes lost in flight.
    pub fn bytes_dropped(&self) -> u64 {
        self.bytes_dropped
    }

    /// Total messages lost in flight.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_has_floor_of_half_rtt() {
        let mut link = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(100)), 1);
        for _ in 0..20 {
            assert!(link.one_way_delay(0) >= Duration::from_millis(50));
        }
    }

    #[test]
    fn larger_payloads_take_longer() {
        let mut a = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(10)), 1);
        let small = a.one_way_delay(100);
        let mut b = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(10)), 1);
        let large = b.one_way_delay(1_000_000);
        assert!(large > small + Duration::from_millis(500)); // 1 MB at 1 MB/s
    }

    #[test]
    fn fixed_rtt_bw_scales_serialization() {
        let mut slow = Link::new(
            LinkConfig::fixed_rtt_bw(Duration::from_millis(10), 100_000),
            1,
        );
        let mut fast = Link::new(
            LinkConfig::fixed_rtt_bw(Duration::from_millis(10), 10_000_000),
            1,
        );
        let d_slow = slow.one_way_delay(1_000_000);
        let d_fast = fast.one_way_delay(1_000_000);
        assert!(d_slow >= Duration::from_secs(10), "1 MB at 100 kB/s");
        assert!(d_fast <= Duration::from_millis(200), "1 MB at 10 MB/s");
        assert_eq!(
            LinkConfig::fixed_rtt(Duration::from_millis(5)),
            LinkConfig::fixed_rtt_bw(Duration::from_millis(5), 1_000_000),
            "fixed_rtt delegates to fixed_rtt_bw at the 1 MB/s default"
        );
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let cfg = LinkConfig {
            base_rtt: Duration::from_millis(20),
            jitter: Duration::from_millis(5),
            bandwidth: 1_000_000,
        };
        let mut a = Link::new(cfg.clone(), 9);
        let mut b = Link::new(cfg.clone(), 9);
        for _ in 0..50 {
            let da = a.one_way_delay(64);
            let db = b.one_way_delay(64);
            assert_eq!(da, db);
            assert!(da >= Duration::from_millis(10));
            assert!(da <= Duration::from_millis(16));
        }
    }

    #[test]
    fn round_trip_is_sum_of_legs() {
        let mut link = Link::new(LinkConfig::fixed_rtt(Duration::from_millis(40)), 3);
        let rt = link.round_trip(100, 100);
        assert!(rt >= Duration::from_millis(40));
        assert_eq!(link.messages_carried(), 2);
        assert_eq!(link.bytes_carried(), 200);
    }

    #[test]
    fn transmit_splits_carried_and_dropped_accounting() {
        let mut link =
            Link::new(LinkConfig::fixed_rtt(Duration::from_millis(10)), 5).with_loss_ppm(500_000);
        let mut delivered = 0_u64;
        let mut dropped = 0_u64;
        for _ in 0..200 {
            match link.transmit(100) {
                Transmit::Delivered(d) => {
                    assert!(d >= Duration::from_millis(5));
                    delivered += 1;
                }
                Transmit::Dropped => dropped += 1,
            }
        }
        assert!(delivered > 0 && dropped > 0, "50% loss splits both ways");
        assert_eq!(link.messages_carried(), delivered);
        assert_eq!(link.messages_dropped(), dropped);
        assert_eq!(link.bytes_carried(), delivered * 100);
        assert_eq!(link.bytes_dropped(), dropped * 100);
    }

    #[test]
    fn lossless_transmit_never_drops_and_matches_one_way_counters() {
        let mut link = Link::new(LinkConfig::broadband(), 2);
        for _ in 0..50 {
            assert!(matches!(link.transmit(64), Transmit::Delivered(_)));
        }
        assert_eq!(link.messages_carried(), 50);
        assert_eq!(link.messages_dropped(), 0);
        assert_eq!(link.bytes_dropped(), 0);
    }

    #[test]
    fn presets_order_sensibly() {
        assert!(LinkConfig::broadband().base_rtt < LinkConfig::continental().base_rtt);
        assert!(LinkConfig::continental().base_rtt < LinkConfig::intercontinental().base_rtt);
    }
}
