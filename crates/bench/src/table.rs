//! Minimal fixed-width table rendering for experiment output.

/// Renders a header + rows as a fixed-width text table.
///
/// Column widths are the max of header and cell widths; all columns are
/// left-aligned except those whose header starts with a digit or whose
/// cells are numeric-looking, which stay as given (callers pre-format
/// numbers).
pub fn render(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity must match headers");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("-+-");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a `Duration` as fixed-point milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Formats a fraction as a percentage.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_table() {
        let t = render(
            "T",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains("name"));
        assert!(lines[2].starts_with('-'));
        // All data lines equal width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_rows_panic() {
        let _ = render("T", &["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.0");
        assert_eq!(pct(0.123), "12.3%");
    }
}
