//! Interactive demo: *you* are the human at the trusted keyboard.
//!
//! Run with: `cargo run --example interactive`
//!
//! The PAL's screen is printed to your terminal; whatever you type on
//! stdin is delivered through the simulated hardware keyboard. Type the
//! shown code and press Enter to approve, type `esc` to reject, or just
//! press Enter on an empty line in press-enter mode. Piping from a
//! non-interactive stdin (EOF) counts as walking away — the session times
//! out and the provider rejects, exactly like the real system.

use std::io::BufRead;
use std::time::Duration;
use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::protocol::{ConfirmMode, Transaction};
use utp::core::verifier::Verifier;
use utp::flicker::pal::{Operator, OperatorResponse};
use utp::platform::keyboard::KeyEvent;
use utp::platform::machine::{Machine, MachineConfig};
use utp::tpm::VendorProfile;

/// Bridges stdin to the PAL's isolated keyboard.
struct StdinHuman {
    stdin: std::io::StdinLock<'static>,
}

impl Operator for StdinHuman {
    fn respond(&mut self, screen: &[String]) -> OperatorResponse {
        println!("\n┌──────────────── TRUSTED SCREEN (OS suspended) ────────────────┐");
        for row in screen.iter().take(12) {
            println!("│ {:<62} │", row);
        }
        println!("└────────────────────────────────────────────────────────────────┘");
        println!("(type the code / 'esc' to reject / empty Enter to approve)");
        let mut line = String::new();
        let events = match self.stdin.read_line(&mut line) {
            Ok(0) | Err(_) => {
                // EOF: the human walked away.
                println!("[stdin closed — treating as walk-away]");
                Vec::new()
            }
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.eq_ignore_ascii_case("esc") {
                    vec![KeyEvent::Escape]
                } else {
                    trimmed
                        .chars()
                        .map(KeyEvent::Char)
                        .chain(std::iter::once(KeyEvent::Enter))
                        .collect()
                }
            }
        };
        OperatorResponse {
            events,
            elapsed: Duration::from_secs(5), // nominal human time
        }
    }
}

fn main() {
    println!("== Interactive uni-directional trusted path ==");
    let ca = PrivacyCa::new(1024, 7);
    let mut verifier = Verifier::new(ca.public_key().clone(), 8);
    let mut machine = Machine::new(MachineConfig::realistic(VendorProfile::Infineon, 9));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::default(), enrollment);

    let tx = Transaction::new(1, "bookshop.example", 4_200, "EUR", "order #77");
    println!(
        "\nYou are about to confirm: pay {} to {}",
        tx.display_amount(),
        tx.payee
    );
    let request = verifier.issue_request_with_mode(tx, ConfirmMode::TypeCode, machine.now());

    let mut me = StdinHuman {
        stdin: std::io::stdin().lock(),
    };
    match client.confirm(&mut machine, &request, &mut me) {
        Ok(evidence) => match verifier.verify(&evidence, machine.now()) {
            Ok(v) => println!(
                "\n[provider] VERIFIED — human-confirmed {} to {} ({} attempt(s))",
                v.transaction.display_amount(),
                v.transaction.payee,
                v.attempts
            ),
            Err(e) => println!("\n[provider] rejected: {}", e),
        },
        Err(e) => println!("\n[client] session failed: {}", e),
    }
}
