//! Crash-point sweep over the settlement journal.
//!
//! One scripted multi-order run against a journaled provider with the
//! sharded verification service attached produces a reference WAL. The
//! sweep then crashes the provider at **every frame boundary** of that
//! log — every prefix a real power loss could leave behind — recovers,
//! and checks the paper's server-side guarantee end to end:
//!
//! - **Zero double-spends**: a nonce consumed before the crash stays
//!   consumed; replaying its evidence after recovery is rejected, and
//!   the account is never debited twice.
//! - **No accepted-then-forgotten orders**: every settle decision whose
//!   WAL record is durable (i.e. was acked — WAL-before-ack) is
//!   reflected in the recovered store.
//! - **Audit prefix**: the recovered audit history is exactly a prefix
//!   of the uncrashed run's history.
//! - **Pending orders stay settleable**: an order whose challenge was
//!   issued but not settled before the crash settles exactly once after
//!   recovery.

use std::sync::Arc;
use std::time::Duration;
use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::Evidence;
use utp::core::verifier::{VerifierConfig, VerifyError};
use utp::journal::{
    frame_boundaries, replay_bytes, scan, Journal, JournalConfig, JournalRecord, LogEnd,
    RecoveredStatus,
};
use utp::platform::machine::{Machine, MachineConfig};
use utp::server::provider::ServiceProvider;

const OPENING_CENTS: i64 = 1_000_000;
const ORDERS: usize = 6;

/// Everything the sweep needs from the uncrashed reference run.
struct ReferenceRun {
    ca: PrivacyCa,
    /// The full durable WAL of the uncrashed run.
    log: Vec<u8>,
    /// `(order_id, amount_cents, evidence)` for every order, in order.
    orders: Vec<(u64, u64, Evidence)>,
    /// Virtual time at the end of the run (re-submissions happen here).
    end: Duration,
}

/// Runs ORDERS confirmed transactions through a journaled provider with
/// a 2-thread / 2-shard verification service attached.
fn reference_run() -> ReferenceRun {
    let ca = PrivacyCa::new(512, 7_001);
    let mut provider = ServiceProvider::new(ca.public_key().clone(), 7_002);
    let journal = Arc::new(Journal::new(JournalConfig::fast_for_tests()));
    provider.attach_journal(Arc::clone(&journal));
    provider.open_account("alice", OPENING_CENTS);
    provider.attach_service(2, 2);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(7_003));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);

    let mut orders = Vec::new();
    for i in 0..ORDERS {
        let amount = 1_000 + 100 * i as u64;
        let (order_id, request) =
            provider.place_order("alice", "shop", amount, "EUR", "sweep", machine.now());
        let mut human =
            ConfirmingHuman::new(Intent::approving(&request.transaction), 7_100 + i as u64);
        let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
        provider
            .submit_evidence(order_id, &evidence, machine.now())
            .unwrap();
        orders.push((order_id, amount, evidence));
    }
    provider.detach_service();
    journal.sync();
    ReferenceRun {
        ca,
        log: journal.durable_log_bytes(),
        orders,
        end: machine.now(),
    }
}

/// Orders with a durable `CreateOrder` / accepted `Settle` record in the
/// given log prefix.
fn durable_ids(prefix: &[u8]) -> (Vec<u64>, Vec<u64>) {
    let mut created = Vec::new();
    let mut settled_ok = Vec::new();
    for f in scan(prefix).frames {
        match f.record {
            JournalRecord::CreateOrder { order_id, .. } => created.push(order_id),
            JournalRecord::Settle {
                order_id,
                outcome: Ok(()),
                ..
            } => settled_ok.push(order_id),
            _ => {}
        }
    }
    (created, settled_ok)
}

/// Pure-replay invariants at every boundary: prefix-consistency, balance
/// conservation, no accepted-then-forgotten settle, audit prefix.
#[test]
fn every_crash_point_recovers_a_consistent_prefix() {
    let run = reference_run();
    let (reference, _) = replay_bytes(&[], &run.log);
    let boundaries = frame_boundaries(&run.log);
    // 1 open + ORDERS creates + ORDERS settles, plus the start boundary.
    assert_eq!(boundaries.len(), 2 + 2 * ORDERS);

    for &b in &boundaries {
        let prefix = &run.log[..b];
        let (state, report) = replay_bytes(&[], prefix);
        assert!(
            matches!(report.log_end, LogEnd::Clean),
            "boundary {b}: a frame-aligned prefix must scan clean"
        );
        let (created, settled_ok) = durable_ids(prefix);

        // No accepted-then-forgotten: every durable accepted settle is
        // Confirmed in the recovered store.
        for id in &settled_ok {
            assert_eq!(
                state.orders.get(id).map(|o| &o.status),
                Some(&RecoveredStatus::Confirmed),
                "boundary {b}: settle record for order {id} is durable but not recovered"
            );
        }
        // ...and nothing else is: confirmations come only from the WAL.
        let confirmed: Vec<u64> = state
            .orders
            .iter()
            .filter(|(_, o)| o.status == RecoveredStatus::Confirmed)
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(confirmed, settled_ok, "boundary {b}");

        // Zero double-spends, balance conservation: the account is
        // debited exactly once per confirmed order.
        let debits: i64 = run
            .orders
            .iter()
            .filter(|(id, _, _)| settled_ok.contains(id))
            .map(|(_, amount, _)| *amount as i64)
            .sum();
        if !created.is_empty() || !settled_ok.is_empty() || b > 0 {
            // The account-opening record is the first frame; any
            // non-empty prefix contains it.
            assert_eq!(
                state.accounts.get("alice").copied(),
                Some(OPENING_CENTS - debits),
                "boundary {b}"
            );
        }
        // Every confirmed order's nonce is consumed.
        assert_eq!(state.used.len(), settled_ok.len(), "boundary {b}");

        // Audit prefix of the uncrashed run.
        assert!(state.audit.len() <= reference.audit.len(), "boundary {b}");
        assert_eq!(
            state.audit.as_slice(),
            &reference.audit[..state.audit.len()],
            "boundary {b}: recovered audit must be a prefix of the uncrashed history"
        );
    }
}

/// Full-provider re-verification at every boundary: rebuild a provider
/// from the prefix and drive real evidence through it.
#[test]
fn recovered_provider_re_verifies_correctly_at_every_boundary() {
    let run = reference_run();
    let boundaries = frame_boundaries(&run.log);
    let now = run.end;

    for &b in &boundaries {
        let prefix = &run.log[..b];
        let (created, settled_ok) = durable_ids(prefix);
        let journal = Journal::with_durable(JournalConfig::fast_for_tests(), &[], prefix);
        let (mut provider, report) = ServiceProvider::recover(
            run.ca.public_key().clone(),
            VerifierConfig::default(),
            7_200,
            Arc::new(journal),
        );
        assert!(matches!(report.log_end, LogEnd::Clean), "boundary {b}");

        for (order_id, _, evidence) in &run.orders {
            let res = provider.submit_evidence(*order_id, evidence, now);
            if settled_ok.contains(order_id) {
                // Settled before the crash: the nonce stays consumed.
                assert_eq!(res.unwrap_err(), VerifyError::Replayed, "boundary {b}");
            } else if created.contains(order_id) {
                // Challenge issued, not settled: settles exactly once...
                assert!(res.is_ok(), "boundary {b}, order {order_id}");
                // ...and the second attempt is a replay.
                assert_eq!(
                    provider
                        .submit_evidence(*order_id, evidence, now)
                        .unwrap_err(),
                    VerifyError::Replayed,
                    "boundary {b}"
                );
            } else {
                // The challenge never became durable: fail closed.
                assert_eq!(res.unwrap_err(), VerifyError::UnknownNonce, "boundary {b}");
            }
        }

        // Exactly one debit per durable challenge, no matter where the
        // crash fell between challenge and settle.
        if b > 0 {
            let expected: i64 = OPENING_CENTS
                - run
                    .orders
                    .iter()
                    .filter(|(id, _, _)| created.contains(id))
                    .map(|(_, amount, _)| *amount as i64)
                    .sum::<i64>();
            assert_eq!(
                provider.store().account("alice").unwrap().balance_cents,
                expected,
                "boundary {b}"
            );
        }
    }
}
