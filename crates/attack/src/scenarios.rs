//! The attack scenarios of the security evaluation (E5).
//!
//! Every scenario returns `true` iff the attacker got the provider to
//! settle a transaction the human never approved.

use utp_captcha::{BotSolver, CaptchaGenerator, Difficulty};
use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_core::protocol::{ConfirmMode, ConfirmationToken, Evidence, Verdict};
use utp_flicker::pal::{Operator, OperatorResponse, Pal, PalEnv, PalError};
use utp_flicker::runtime::{run_pal, AttestSpec};
use utp_platform::keyboard::KeyEvent;
use utp_platform::machine::{Machine, MachineConfig};
use utp_server::provider::ServiceProvider;
use utp_tpm::command as tpmcmd;
use utp_tpm::pcr::PcrSelection;
use utp_tpm::quote::Quote;

/// A fully provisioned world: provider pinning the CA, victim machine with
/// an enrolled AIK, and the stock client software (which malware may abuse
/// but not alter undetectably — the PAL is measured).
pub struct World {
    /// The service provider under attack.
    pub provider: ServiceProvider,
    /// The victim's machine (malware controls its OS).
    pub machine: Machine,
    /// The victim's client stack.
    pub client: Client,
}

impl World {
    /// Builds a world from a seed.
    pub fn new(seed: u64) -> Self {
        let ca = PrivacyCa::new(512, seed ^ 0xCA);
        let mut provider = ServiceProvider::new(ca.public_key().clone(), seed ^ 0x5E);
        provider.store_mut().open_account("victim", 10_000_000);
        let mut machine = Machine::new(MachineConfig::fast_for_tests(seed));
        let enrollment = ca.enroll(&mut machine);
        let client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        World {
            provider,
            machine,
            client,
        }
    }
}

/// Baseline (a): the provider requires no confirmation at all. A
/// transaction generator simply submits the order. Always succeeds — the
/// row that motivates the paper.
pub fn attack_unprotected(seed: u64) -> bool {
    let mut w = World::new(seed);
    let now = w.machine.now();
    let (order_id, _request) =
        w.provider
            .place_order("victim", "attacker.example", 99_900, "EUR", "loot", now);
    // No evidence needed: the provider settles on submission.
    w.provider.store_mut().settle(order_id);
    w.provider.is_confirmed(order_id)
}

/// Baseline (b): the provider gates the transaction behind a CAPTCHA.
/// Malware answers with an automated solver (or a paid solving service).
pub fn attack_captcha(difficulty: Difficulty, use_solving_service: bool, seed: u64) -> bool {
    let mut generator = CaptchaGenerator::new(seed ^ 0x11);
    let challenge = generator.generate(difficulty);
    let mut solver = if use_solving_service {
        BotSolver::solving_service(seed ^ 0x22)
    } else {
        BotSolver::ocr(seed ^ 0x22)
    };
    solver.solve(&challenge).success
}

/// Attack 1 against UTP: malware fabricates a `Confirmed` token and asks
/// the TPM (locality 0, the only interface malware has) to quote PCR 17.
/// The quoted value cannot match `H(H(0‖PAL)‖io)` because malware cannot
/// reset PCR 17 — that needs locality 4, i.e. a real `SKINIT`.
pub fn attack_utp_forged_quote(seed: u64) -> bool {
    let mut w = World::new(seed);
    let now = w.machine.now();
    let (order_id, request) =
        w.provider
            .place_order("victim", "attacker.example", 99_900, "EUR", "loot", now);
    let token = ConfirmationToken {
        tx_digest: request.transaction.digest(),
        nonce: request.nonce,
        mode: ConfirmMode::TypeCode,
        verdict: Verdict::Confirmed,
        attempts: 1,
    };
    let aik = w.client.enrollment().aik_handle;
    let resp = w.machine.os_tpm_execute(&tpmcmd::req_quote(
        aik,
        &request.nonce,
        &PcrSelection::drtm_only(),
    ));
    let resp = tpmcmd::decode_response(&resp).expect("tpm responds");
    let quote = match Quote::from_bytes(&resp.body) {
        Some(q) if resp.ok() => q,
        _ => return false,
    };
    let evidence = Evidence {
        token_bytes: token.to_bytes(),
        quote,
        aik_cert: w.client.enrollment().certificate.to_bytes(),
    };
    let _ = w
        .provider
        .submit_evidence(order_id, &evidence, w.machine.now());
    w.provider.is_confirmed(order_id)
}

/// Malware's own PAL: late-launches fine (anyone can SKINIT), but its
/// measurement lands in PCR 17 and no provider trusts it.
struct EvilPal;

impl Pal for EvilPal {
    fn image(&self) -> &[u8] {
        b"EVIL-AUTOCONFIRM-PAL v1"
    }
    fn invoke(&mut self, _env: &mut PalEnv<'_, '_>, input: &[u8]) -> Result<Vec<u8>, PalError> {
        let request = utp_core::protocol::TransactionRequest::from_bytes(input)
            .map_err(|e| PalError::Failed(e.to_string()))?;
        // "Confirm" with no human in the loop.
        Ok(ConfirmationToken {
            tx_digest: request.transaction.digest(),
            nonce: request.nonce,
            mode: request.mode,
            verdict: Verdict::Confirmed,
            attempts: 1,
        }
        .to_bytes())
    }
}

/// Attack 2 against UTP: malware late-launches its own auto-confirming
/// PAL. The quote chain is internally consistent — but PCR 17 now attests
/// to *EvilPal*, whose measurement the provider does not trust.
pub fn attack_utp_evil_pal(seed: u64) -> bool {
    let mut w = World::new(seed);
    let now = w.machine.now();
    let (order_id, request) =
        w.provider
            .place_order("victim", "attacker.example", 99_900, "EUR", "loot", now);
    let mut evil = EvilPal;
    let mut nobody = utp_flicker::pal::ScriptedOperator::silent();
    let report = run_pal(
        &mut w.machine,
        &mut evil,
        &request.to_bytes(),
        &mut nobody,
        Some(AttestSpec {
            aik_handle: w.client.enrollment().aik_handle,
            nonce: request.nonce,
            selection: PcrSelection::drtm_only(),
        }),
    )
    .expect("launching evil code is allowed; trusting it is not");
    let evidence = Evidence {
        token_bytes: report.output,
        quote: report.quote.expect("attested"),
        aik_cert: w.client.enrollment().certificate.to_bytes(),
    };
    let _ = w
        .provider
        .submit_evidence(order_id, &evidence, w.machine.now());
    w.provider.is_confirmed(order_id)
}

/// Attack 3 against UTP: replay. Malware records the evidence of a genuine
/// purchase and re-submits it for a new attacker order.
pub fn attack_utp_replay(seed: u64) -> bool {
    let mut w = World::new(seed);
    // Step 1: the victim legitimately buys a book; malware records the
    // evidence off the wire.
    let now = w.machine.now();
    let (legit_order, legit_request) =
        w.provider
            .place_order("victim", "bookshop.example", 4_200, "EUR", "order", now);
    let mut human = ConfirmingHuman::new(Intent::approving(&legit_request.transaction), seed ^ 0x7);
    let captured = w
        .client
        .confirm(&mut w.machine, &legit_request, &mut human)
        .expect("legit flow works");
    w.provider
        .submit_evidence(legit_order, &captured, w.machine.now())
        .expect("legit evidence accepted");
    // Step 2: malware replays the captured evidence for its own order.
    let (evil_order, _evil_request) = w.provider.place_order(
        "victim",
        "attacker.example",
        99_900,
        "EUR",
        "loot",
        w.machine.now(),
    );
    let _ = w
        .provider
        .submit_evidence(evil_order, &captured, w.machine.now());
    w.provider.is_confirmed(evil_order)
}

/// Attack 4 against UTP: input injection. Malware triggers the *real*
/// confirmation PAL for its forged order, pre-loads the keyboard with a
/// synthetic Enter before the launch, and hopes the PAL reads it. The
/// platform flushes the queue on ownership transfer and rejects software
/// injection during the session, so the PAL times out.
pub fn attack_utp_key_injection(seed: u64) -> bool {
    let mut w = World::new(seed);
    let now = w.machine.now();
    let (order_id, request) =
        w.provider
            .place_order("victim", "attacker.example", 99_900, "EUR", "loot", now);
    // Pre-load fake confirmations (works while the OS owns the keyboard).
    for _ in 0..4 {
        w.machine
            .os_inject_key(KeyEvent::Enter)
            .expect("injection works pre-session");
    }
    // Nobody is at the physical keyboard: the human didn't initiate this.
    struct AbsentHuman;
    impl Operator for AbsentHuman {
        fn respond(&mut self, _screen: &[String]) -> OperatorResponse {
            OperatorResponse::default()
        }
    }
    let mut absent = AbsentHuman;
    let evidence = match w.client.confirm(&mut w.machine, &request, &mut absent) {
        Ok(e) => e,
        Err(_) => return false,
    };
    let _ = w
        .provider
        .submit_evidence(order_id, &evidence, w.machine.now());
    w.provider.is_confirmed(order_id)
}

/// Attack 5 against UTP: transaction substitution. Malware swaps the
/// order before it reaches the provider; the genuine PAL faithfully shows
/// the *attacker's* payee and amount, and the last line of defense is the
/// human reading the screen. Succeeds only against inattentive humans —
/// this is the residual risk the paper accepts (the display leg of the
/// path is the human's responsibility).
pub fn attack_utp_mitm_swap(vigilance: f64, seed: u64) -> bool {
    let mut w = World::new(seed);
    let now = w.machine.now();
    // The human meant to buy from the bookshop...
    let intended =
        utp_core::protocol::Transaction::new(0, "bookshop.example", 4_200, "EUR", "order");
    // ...but malware placed this instead:
    let (order_id, request) =
        w.provider
            .place_order("victim", "attacker.example", 99_900, "EUR", "order", now);
    let mut human =
        ConfirmingHuman::with_vigilance(Intent::approving(&intended), vigilance, seed ^ 0x99);
    let evidence = match w.client.confirm(&mut w.machine, &request, &mut human) {
        Ok(e) => e,
        Err(_) => return false,
    };
    let _ = w
        .provider
        .submit_evidence(order_id, &evidence, w.machine.now());
    w.provider.is_confirmed(order_id)
}

/// Control: the legitimate flow (no attack). Returns `true` when the
/// provider settles the human-approved transaction — the availability /
/// true-positive side of the E5 table.
pub fn legitimate_transaction(seed: u64) -> bool {
    let mut w = World::new(seed);
    let now = w.machine.now();
    let (order_id, request) =
        w.provider
            .place_order("victim", "bookshop.example", 4_200, "EUR", "order", now);
    let mut human = ConfirmingHuman::new(Intent::approving(&request.transaction), seed ^ 0x1);
    let evidence = match w.client.confirm(&mut w.machine, &request, &mut human) {
        Ok(e) => e,
        Err(_) => return false,
    };
    let _ = w
        .provider
        .submit_evidence(order_id, &evidence, w.machine.now());
    w.provider.is_confirmed(order_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_trials;

    #[test]
    fn unprotected_always_succeeds() {
        let r = run_trials(20, 1, attack_unprotected);
        assert_eq!(r.rate(), 1.0);
    }

    #[test]
    fn captcha_ocr_beats_easy_sometimes_hard_rarely() {
        let easy = run_trials(300, 2, |s| attack_captcha(Difficulty::Easy, false, s));
        let hard = run_trials(300, 3, |s| attack_captcha(Difficulty::Hard, false, s));
        assert!(easy.rate() > 0.4, "easy rate {}", easy.rate());
        assert!(hard.rate() < 0.2, "hard rate {}", hard.rate());
        assert!(hard.successes > 0, "bots are never fully stopped");
    }

    #[test]
    fn captcha_solving_service_defeats_hard() {
        let r = run_trials(200, 4, |s| attack_captcha(Difficulty::Hard, true, s));
        assert!(r.rate() > 0.85, "rate {}", r.rate());
    }

    #[test]
    fn forged_quote_never_succeeds() {
        let r = run_trials(6, 5, attack_utp_forged_quote);
        assert_eq!(r.successes, 0);
    }

    #[test]
    fn evil_pal_never_succeeds() {
        let r = run_trials(6, 6, attack_utp_evil_pal);
        assert_eq!(r.successes, 0);
    }

    #[test]
    fn replay_never_succeeds() {
        let r = run_trials(6, 7, attack_utp_replay);
        assert_eq!(r.successes, 0);
    }

    #[test]
    fn key_injection_never_succeeds() {
        let r = run_trials(6, 8, attack_utp_key_injection);
        assert_eq!(r.successes, 0);
    }

    #[test]
    fn mitm_swap_blocked_by_vigilant_humans() {
        let r = run_trials(12, 9, |s| attack_utp_mitm_swap(1.0, s));
        assert_eq!(r.successes, 0);
    }

    #[test]
    fn mitm_swap_exploits_careless_humans() {
        let r = run_trials(40, 10, |s| attack_utp_mitm_swap(0.0, s));
        // A human who never reads the screen approves everything (modulo
        // typing errors on the code).
        assert!(r.rate() > 0.8, "rate {}", r.rate());
    }

    #[test]
    fn legitimate_flow_still_works() {
        let r = run_trials(10, 11, legitimate_transaction);
        // Human typos can burn all three code attempts occasionally, so
        // availability is high but not necessarily 1.0.
        assert!(r.rate() > 0.9, "rate {}", r.rate());
    }
}
