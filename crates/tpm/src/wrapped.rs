//! Wrapped keys: `TPM_CreateWrapKey` / `TPM_LoadKey2` / `TPM_EvictKey`.
//!
//! A TPM has a handful of key slots but can manage unbounded keys by
//! *wrapping* them: a child key is generated inside the chip, exported as
//! a blob protected by its parent storage key, and reloaded on demand.
//! The wrap blob can also carry a PCR policy, giving "this key is usable
//! only while PCR 17 holds the good PAL's value" — the primitive behind
//! PAL-private signing keys.
//!
//! Like sealed storage, the wrap is modeled with the TPM-internal secret
//! (HMAC keystream + MAC) rather than RSA-OAEP under the parent key; the
//! policy semantics — only this chip can load it, only under matching
//! PCRs — are identical, which is what callers rely on.

use crate::device::Tpm;
use crate::error::TpmError;
use crate::keys::KeyUsage;
use crate::pcr::PcrSelection;
use crate::seal::SealedBlob;
use utp_crypto::rsa::RsaKeyPair;

/// First handle assigned to loaded wrapped keys.
pub const FIRST_LOADED_HANDLE: u32 = 0x0400_0000;

/// A wrapped key blob: the serialized key material protected like a
/// sealed blob, plus the declared usage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrappedKey {
    /// The declared usage of the wrapped key.
    pub usage: KeyUsage,
    /// The protected key material (reuses the sealed-blob envelope,
    /// including the PCR release policy).
    pub blob: SealedBlob,
}

impl WrappedKey {
    /// Wire encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![match self.usage {
            KeyUsage::Storage => 1u8,
            KeyUsage::Identity => 2,
            KeyUsage::Endorsement => 3,
        }];
        out.extend_from_slice(&self.blob.to_bytes());
        out
    }

    /// Parses the wire encoding.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let (&tag, rest) = data.split_first()?;
        let usage = match tag {
            1 => KeyUsage::Storage,
            2 => KeyUsage::Identity,
            3 => KeyUsage::Endorsement,
            _ => return None,
        };
        Some(WrappedKey {
            usage,
            blob: SealedBlob::from_bytes(rest)?,
        })
    }
}

impl Tpm {
    /// `TPM_CreateWrapKey`: generates a fresh key under `parent` (must be
    /// a storage key), bound to the given PCR policy (pass the current
    /// values' selection for "this PAL only", or an empty-selection for an
    /// unrestricted key).
    ///
    /// # Errors
    ///
    /// Propagates TPM errors; the parent must be a loaded storage key.
    pub fn create_wrap_key(
        &mut self,
        parent: u32,
        usage: KeyUsage,
        selection: PcrSelection,
    ) -> Result<WrappedKey, TpmError> {
        self.ensure_started_pub()?;
        self.keys_mut().expect_usage(parent, KeyUsage::Storage)?;
        // Fresh key material from the chip's RNG-derived seed space.
        let seed_bytes = self.get_random(8)?;
        let seed_arr: [u8; 8] = seed_bytes
            .as_slice()
            .try_into()
            .map_err(|_| TpmError::Crypto("rng returned wrong length".into()))?;
        let seed = u64::from_be_bytes(seed_arr);
        let keypair = RsaKeyPair::generate(self.key_bits(), seed);
        let serialized = serialize_keypair_seed(seed, self.key_bits());
        // Protect it exactly like sealed data (same chip + PCR policy).
        let current = self.pcr_values(&selection);
        let blob = self.seal(parent, selection, &current, &serialized)?;
        let _ = keypair; // identical regeneration happens at load time
        Ok(WrappedKey { usage, blob })
    }

    /// `TPM_LoadKey2`: loads a wrapped key; returns a fresh handle.
    ///
    /// # Errors
    ///
    /// [`TpmError::WrongPcrValue`] when the key's PCR policy does not
    /// match, [`TpmError::BadBlob`] for tampered or foreign blobs.
    pub fn load_key2(&mut self, parent: u32, wrapped: &WrappedKey) -> Result<u32, TpmError> {
        self.ensure_started_pub()?;
        let payload = self.unseal(parent, &wrapped.blob)?;
        let (seed, bits) = deserialize_keypair_seed(&payload)?;
        let keypair = RsaKeyPair::generate(bits, seed);
        Ok(self.keys_mut().load_external(wrapped.usage, keypair))
    }

    /// `TPM_EvictKey`: unloads a previously loaded key.
    ///
    /// # Errors
    ///
    /// [`TpmError::BadKeyHandle`] for unknown or permanent (EK/SRK)
    /// handles.
    pub fn evict_key(&mut self, handle: u32) -> Result<(), TpmError> {
        self.keys_mut().evict(handle)
    }
}

/// The wrap payload is the generation seed + size: the chip regenerates
/// the identical deterministic key at load time. (A real TPM stores the
/// raw key; storing the seed is equivalent here because generation is
/// deterministic, and keeps blobs small.)
fn serialize_keypair_seed(seed: u64, bits: usize) -> Vec<u8> {
    let mut out = seed.to_be_bytes().to_vec();
    out.extend_from_slice(&(bits as u32).to_be_bytes());
    out
}

fn deserialize_keypair_seed(data: &[u8]) -> Result<(u64, usize), TpmError> {
    if data.len() != 12 {
        return Err(TpmError::BadBlob);
    }
    let (seed_bytes, bits_bytes) = data.split_at(8);
    let seed = u64::from_be_bytes(seed_bytes.try_into().map_err(|_| TpmError::BadBlob)?);
    let bits = u32::from_be_bytes(bits_bytes.try_into().map_err(|_| TpmError::BadBlob)?) as usize;
    if !(64..=4096).contains(&bits) || !bits.is_multiple_of(2) {
        return Err(TpmError::BadBlob);
    }
    Ok((seed, bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TpmConfig;
    use crate::keys::SRK_HANDLE;
    use crate::locality::Locality;
    use crate::pcr::PcrIndex;
    use utp_crypto::sha1::Sha1Digest;

    fn tpm() -> Tpm {
        let mut t = Tpm::new(TpmConfig::fast_for_tests(70));
        t.startup_clear();
        t
    }

    #[test]
    fn create_load_evict_roundtrip() {
        let mut t = tpm();
        let wrapped = t
            .create_wrap_key(SRK_HANDLE, KeyUsage::Identity, PcrSelection::empty())
            .unwrap();
        let handle = t.load_key2(SRK_HANDLE, &wrapped).unwrap();
        // The loaded key signs quotes like any AIK.
        let q = t
            .quote(handle, PcrSelection::drtm_only(), Sha1Digest::zero())
            .unwrap();
        assert!(q.verify(&t.read_pubkey(handle).unwrap(), &Sha1Digest::zero()));
        t.evict_key(handle).unwrap();
        assert!(t.read_pubkey(handle).is_err());
    }

    #[test]
    fn loading_twice_yields_same_public_key() {
        let mut t = tpm();
        let wrapped = t
            .create_wrap_key(SRK_HANDLE, KeyUsage::Identity, PcrSelection::empty())
            .unwrap();
        let h1 = t.load_key2(SRK_HANDLE, &wrapped).unwrap();
        let h2 = t.load_key2(SRK_HANDLE, &wrapped).unwrap();
        assert_ne!(h1, h2);
        assert_eq!(t.read_pubkey(h1).unwrap(), t.read_pubkey(h2).unwrap());
    }

    #[test]
    fn distinct_creations_yield_distinct_keys() {
        let mut t = tpm();
        let w1 = t
            .create_wrap_key(SRK_HANDLE, KeyUsage::Identity, PcrSelection::empty())
            .unwrap();
        let w2 = t
            .create_wrap_key(SRK_HANDLE, KeyUsage::Identity, PcrSelection::empty())
            .unwrap();
        let h1 = t.load_key2(SRK_HANDLE, &w1).unwrap();
        let h2 = t.load_key2(SRK_HANDLE, &w2).unwrap();
        assert_ne!(t.read_pubkey(h1).unwrap(), t.read_pubkey(h2).unwrap());
    }

    #[test]
    fn pcr_policy_gates_loading() {
        let mut t = tpm();
        let sel = PcrSelection::of(&[PcrIndex::new(0).unwrap()]);
        let wrapped = t
            .create_wrap_key(SRK_HANDLE, KeyUsage::Identity, sel)
            .unwrap();
        // Loads fine now...
        let h = t.load_key2(SRK_HANDLE, &wrapped).unwrap();
        t.evict_key(h).unwrap();
        // ...but not after PCR 0 changes.
        t.extend(Locality::Zero, PcrIndex::new(0).unwrap(), &[1u8; 20])
            .unwrap();
        assert_eq!(
            t.load_key2(SRK_HANDLE, &wrapped).unwrap_err(),
            TpmError::WrongPcrValue
        );
    }

    #[test]
    fn foreign_and_tampered_blobs_rejected() {
        let mut t1 = tpm();
        let mut t2 = Tpm::new(TpmConfig::fast_for_tests(71));
        t2.startup_clear();
        let wrapped = t1
            .create_wrap_key(SRK_HANDLE, KeyUsage::Identity, PcrSelection::empty())
            .unwrap();
        assert_eq!(
            t2.load_key2(SRK_HANDLE, &wrapped).unwrap_err(),
            TpmError::BadBlob
        );
        let mut tampered = wrapped.clone();
        tampered.blob.ciphertext[0] ^= 1;
        assert_eq!(
            t1.load_key2(SRK_HANDLE, &tampered).unwrap_err(),
            TpmError::BadBlob
        );
    }

    #[test]
    fn ek_and_srk_cannot_be_evicted() {
        let mut t = tpm();
        assert!(t.evict_key(SRK_HANDLE).is_err());
        assert!(t.evict_key(crate::keys::EK_HANDLE).is_err());
    }

    #[test]
    fn wrapped_key_wire_roundtrip() {
        let mut t = tpm();
        let wrapped = t
            .create_wrap_key(SRK_HANDLE, KeyUsage::Storage, PcrSelection::empty())
            .unwrap();
        let parsed = WrappedKey::from_bytes(&wrapped.to_bytes()).unwrap();
        assert_eq!(parsed, wrapped);
        assert!(WrappedKey::from_bytes(&[]).is_none());
        assert!(WrappedKey::from_bytes(&[9, 1, 2]).is_none());
    }

    #[test]
    fn parent_must_be_storage_key() {
        let mut t = tpm();
        let aik = t.make_identity();
        assert!(t
            .create_wrap_key(aik, KeyUsage::Identity, PcrSelection::empty())
            .is_err());
    }
}
