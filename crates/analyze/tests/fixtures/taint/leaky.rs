// Fed as `crates/tpm/src/leaky.rs`. Two secret-taint violations:
// a derive(Debug) over a secret-named field with no redacting type,
// and key material reaching a println! sink.
#[derive(Debug)]
pub struct LeakySlot {
    pub session_key: Vec<u8>,
}

pub fn audit_log(session_key: &[u8]) {
    println!("session key: {:?}", session_key);
}
