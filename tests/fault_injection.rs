//! Failure-injection tests: with a flaky TPM (transient command faults),
//! sessions may fail but the system must fail *closed* — the OS always
//! resumes, no partial evidence ever verifies, and a retry on a healthy
//! run still succeeds.

use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::{ConfirmMode, Transaction};
use utp::core::verifier::Verifier;
use utp::platform::machine::{Machine, MachineConfig};
use utp::tpm::{TpmConfig, VendorProfile};

fn flaky_machine(seed: u64, fault_rate: f64) -> Machine {
    let mut config = MachineConfig::fast_for_tests(seed);
    config.tpm = TpmConfig {
        vendor: VendorProfile::Instant,
        key_bits: 512,
        seed,
        fault_rate: 0.0,
    }
    .with_fault_rate(fault_rate);
    Machine::new(config)
}

#[test]
fn flaky_tpm_never_leaves_machine_stuck_in_session() {
    for seed in 0..20u64 {
        let ca = PrivacyCa::new(512, 900 + seed);
        let mut verifier = Verifier::new(ca.public_key().clone(), 901 + seed);
        let mut machine = flaky_machine(902 + seed, 0.3);
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let tx = Transaction::new(seed, "shop.example", 100, "EUR", "");
        let request =
            verifier.issue_request_with_mode(tx.clone(), ConfirmMode::PressEnter, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 903 + seed);
        let result = client.confirm(&mut machine, &request, &mut human);
        // Whatever happened, the OS is running again.
        assert!(
            !machine.in_secure_session(),
            "seed {}: machine stuck in session",
            seed
        );
        // And any evidence that *was* produced is genuine.
        if let Ok(evidence) = result {
            verifier
                .verify(&evidence, machine.now())
                .unwrap_or_else(|e| panic!("seed {}: produced evidence failed: {}", seed, e));
        }
    }
}

#[test]
fn some_sessions_fail_under_heavy_faults_and_some_succeed_under_light() {
    // Sanity-check the fault model actually bites, and is not fatal.
    let mut failures_heavy = 0;
    for seed in 0..10u64 {
        let ca = PrivacyCa::new(512, 950 + seed);
        let mut verifier = Verifier::new(ca.public_key().clone(), 951);
        let mut machine = flaky_machine(952 + seed, 0.5);
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let tx = Transaction::new(seed, "shop.example", 100, "EUR", "");
        let request =
            verifier.issue_request_with_mode(tx.clone(), ConfirmMode::PressEnter, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 953 + seed);
        if client.confirm(&mut machine, &request, &mut human).is_err() {
            failures_heavy += 1;
        }
    }
    assert!(failures_heavy > 0, "50% fault rate should break something");

    let mut successes_light = 0;
    for seed in 0..10u64 {
        let ca = PrivacyCa::new(512, 970 + seed);
        let mut verifier = Verifier::new(ca.public_key().clone(), 971);
        let mut machine = flaky_machine(972 + seed, 0.02);
        let enrollment = ca.enroll(&mut machine);
        let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
        let tx = Transaction::new(seed, "shop.example", 100, "EUR", "");
        let request =
            verifier.issue_request_with_mode(tx.clone(), ConfirmMode::PressEnter, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 973 + seed);
        if client.confirm(&mut machine, &request, &mut human).is_ok() {
            successes_light += 1;
        }
    }
    assert!(successes_light > 0, "2% fault rate should mostly work");
}

#[test]
fn retry_after_transient_fault_succeeds_with_fresh_nonce() {
    let ca = PrivacyCa::new(512, 990);
    let mut verifier = Verifier::new(ca.public_key().clone(), 991);
    let mut machine = flaky_machine(992, 0.35);
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let tx = Transaction::new(1, "shop.example", 100, "EUR", "");
    // Keep retrying with fresh nonces until one session survives the
    // fault rate; each attempt must leave the machine reusable.
    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(attempts < 100, "no session ever succeeded");
        let request =
            verifier.issue_request_with_mode(tx.clone(), ConfirmMode::PressEnter, machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&tx), 993 + attempts);
        match client.confirm(&mut machine, &request, &mut human) {
            Ok(evidence) => {
                verifier.verify(&evidence, machine.now()).unwrap();
                break;
            }
            Err(_) => {
                assert!(!machine.in_secure_session());
                continue;
            }
        }
    }
}

#[test]
fn faulty_skinit_surfaces_as_launch_error() {
    // With a 100% fault rate the DRTM hash sequence itself fails; skinit
    // must return an error, not panic or half-launch.
    let mut machine = flaky_machine(995, 1.0);
    let err = machine.skinit(b"pal").map(|_| ()).unwrap_err();
    assert!(err.to_string().contains("fault"), "{}", err);
    assert!(!machine.in_secure_session());
}
