//! Prints the E8 ablation table (quote vs amortized MAC confirmation).
use utp_bench::experiments::e8_amortized as e8;

fn main() {
    let rows = e8::run(1024);
    println!("{}", e8::render(&rows));
}
