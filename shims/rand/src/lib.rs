//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand`'s API it actually uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`] built on splitmix64-seeded xoshiro256++. Streams are
//! stable across runs and platforms, which is exactly what the simulator
//! wants; nothing here is cryptographically strong and nothing in the
//! trusted path relies on it for secrecy (the TPM model mixes this into
//! its own state).

#![forbid(unsafe_code)]

/// Low-level uniform bit generation, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (dst, src) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from their full value range by
/// [`Rng::gen`] (the shim's analogue of the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Scalars that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draws a value in `[low, high)`. `high` must be greater than `low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Widening multiply keeps modulo bias negligible for the
                // simulator's purposes.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                low.wrapping_add(draw as $ty)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = self.into_inner();
                if high == <$ty>::MAX {
                    if low == 0 {
                        return <$ty>::sample_standard(rng) as $ty;
                    }
                    // Shift down one so the exclusive upper bound fits.
                    return <$ty>::sample_range(rng, low - 1, high) + 1;
                }
                <$ty>::sample_range(rng, low, high + 1)
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize);

/// Convenience draws on top of [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    ///
    /// Same trait surface, different stream: code that asserts on exact
    /// draws from upstream `StdRng` will see different values.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = rng.gen_range(1..=255u8);
            assert!(x >= 1);
            let y = rng.gen_range(0..10usize);
            assert!(y < 10);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
