//! The flight recorder: per-thread bounded rings feeding one shared
//! collector, plus the merged, virtual-time-sorted JSONL export.
//!
//! The hot path is lock-free: an installed sink lives in a thread-local
//! and pushes into its own [`Ring`] with no synchronization. The shared
//! mutex is taken only when a sink flushes (guard drop, or an explicit
//! [`Recorder::flush_current_thread`]), so tracing adds no contention to
//! the code being measured.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::record::{names, TraceRecord, Value};
use crate::ring::{Ring, DEFAULT_CAPACITY};

/// Which records an export includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Export {
    /// Deterministic records only — byte-identical across identical
    /// runs; what the determinism smoke diffs.
    Canonical,
    /// Everything, including volatile (host-timed / scheduling-
    /// dependent) records.
    Full,
}

struct Shared {
    collected: Mutex<Vec<TraceRecord>>,
    dropped: AtomicU64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveSink>> = const { RefCell::new(None) };
}

struct ActiveSink {
    track: String,
    ring: Ring,
    shared: Arc<Shared>,
}

impl ActiveSink {
    fn flush(&mut self) {
        let drained = self.ring.drain();
        let dropped = self.ring.dropped();
        if dropped > 0 {
            self.shared.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        if !drained.is_empty() {
            self.shared.collected.lock().extend(drained);
        }
    }
}

/// Collects trace records from any number of per-thread sinks and
/// renders them as merged JSONL sorted on virtual timestamps.
pub struct Recorder {
    shared: Arc<Shared>,
    ring_capacity: usize,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("ring_capacity", &self.ring_capacity)
            .field("collected", &self.shared.collected.lock().len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Recorder {
    /// A recorder whose sinks buffer [`DEFAULT_CAPACITY`] records each.
    pub fn new() -> Recorder {
        Recorder::with_ring_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder with a custom per-thread ring capacity.
    pub fn with_ring_capacity(cap: usize) -> Recorder {
        Recorder {
            shared: Arc::new(Shared {
                collected: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            }),
            ring_capacity: cap,
        }
    }

    /// Installs a sink for the calling thread under the given track
    /// label. Records emitted on this thread flow into the returned
    /// guard's ring until it is dropped (which flushes them here). An
    /// already-installed sink is flushed and replaced.
    #[must_use = "dropping the guard immediately uninstalls the sink"]
    pub fn install(&self, track: &str) -> SinkGuard {
        let sink = ActiveSink {
            track: track.to_string(),
            ring: Ring::new(self.ring_capacity),
            shared: Arc::clone(&self.shared),
        };
        ACTIVE.with(|cell| {
            if let Some(mut prev) = cell.borrow_mut().replace(sink) {
                prev.flush();
            }
        });
        SinkGuard { _priv: () }
    }

    /// Flushes the calling thread's sink (if any) without uninstalling
    /// it — useful mid-run before an export.
    pub fn flush_current_thread(&self) {
        ACTIVE.with(|cell| {
            if let Some(sink) = cell.borrow_mut().as_mut() {
                sink.flush();
            }
        });
    }

    /// Total records evicted by ring overflow across all flushed sinks.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// A sorted snapshot of all flushed records. Sort key is (virtual
    /// timestamp, rendered line), which totally orders any multiset of
    /// records, so identical runs snapshot identically.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut recs = self.shared.collected.lock().clone();
        sort_records(&mut recs);
        recs
    }

    /// Merged JSONL export. `Export::Canonical` filters volatile
    /// records and appends a final `trace.dropped` bookkeeping line so
    /// silent ring overflow cannot masquerade as a complete trace.
    pub fn export_jsonl(&self, mode: Export) -> String {
        let recs = self.records();
        let mut out = String::new();
        let mut max_ts = Duration::ZERO;
        for rec in &recs {
            if mode == Export::Canonical && rec.volatile {
                continue;
            }
            max_ts = max_ts.max(rec.ts);
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        let trailer = TraceRecord {
            ts: max_ts,
            dur: None,
            track: "recorder".to_string(),
            name: names::TRACE_DROPPED,
            fields: vec![(crate::record::keys::DROPPED, Value::U64(self.dropped()))],
            volatile: false,
        };
        out.push_str(&trailer.to_json());
        out.push('\n');
        out
    }
}

/// Sorts records by (virtual ts, rendered JSON line): a total order
/// that depends only on record *content*, never on arrival order.
pub fn sort_records(recs: &mut [TraceRecord]) {
    recs.sort_by_cached_key(|r| (r.ts, r.to_json()));
}

/// Uninstalls (and flushes) the calling thread's sink when dropped.
pub struct SinkGuard {
    _priv: (),
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        ACTIVE.with(|cell| {
            if let Some(mut sink) = cell.borrow_mut().take() {
                sink.flush();
            }
        });
    }
}

/// True when the calling thread has a sink installed (emission is
/// otherwise a no-op, so instrumented code costs nothing untraced).
pub fn thread_is_traced() -> bool {
    ACTIVE.with(|cell| cell.borrow().is_some())
}

pub(crate) fn emit(
    name: &'static str,
    ts: Duration,
    dur: Option<Duration>,
    fields: &[(&'static str, Value)],
    volatile: bool,
) {
    debug_assert!(
        names::is_registered(name),
        "trace name {name:?} is not in the static registry (record::names)"
    );
    ACTIVE.with(|cell| {
        if let Some(sink) = cell.borrow_mut().as_mut() {
            for (k, v) in fields {
                debug_assert!(
                    crate::record::keys::is_registered(k),
                    "trace field key {k:?} is not in the static registry (record::keys)"
                );
                debug_assert!(
                    volatile || !v.is_host_measured(),
                    "host-measured field {k:?} on a non-volatile record"
                );
            }
            sink.ring.push(TraceRecord {
                ts,
                dur,
                track: sink.track.clone(),
                name,
                fields: fields.to_vec(),
                volatile,
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::keys;

    fn ev(recorder: &Recorder, ns: u64) {
        let _ = recorder; // emitted via the thread-local, not the handle
        emit(
            names::TPM_CMD,
            Duration::from_nanos(ns),
            None,
            &[(keys::SEQ, Value::U64(ns))],
            false,
        );
    }

    #[test]
    fn install_collects_and_guard_flushes() {
        let recorder = Recorder::new();
        assert!(!thread_is_traced());
        {
            let _guard = recorder.install("main");
            assert!(thread_is_traced());
            ev(&recorder, 2);
            ev(&recorder, 1);
            assert!(recorder.records().is_empty(), "flush happens at drop");
        }
        assert!(!thread_is_traced());
        let recs = recorder.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, Duration::from_nanos(1), "sorted by virtual ts");
        assert_eq!(recs[0].track, "main");
    }

    #[test]
    fn emission_without_sink_is_a_noop() {
        let recorder = Recorder::new();
        ev(&recorder, 7);
        assert!(recorder.records().is_empty());
        assert_eq!(recorder.dropped(), 0);
    }

    #[test]
    fn overflow_counts_surface_in_export() {
        let recorder = Recorder::with_ring_capacity(2);
        {
            let _guard = recorder.install("t");
            for n in 0..5 {
                ev(&recorder, n);
            }
        }
        assert_eq!(recorder.records().len(), 2);
        assert_eq!(recorder.dropped(), 3);
        let jsonl = recorder.export_jsonl(Export::Canonical);
        let last = jsonl.lines().last().unwrap();
        assert!(last.contains("\"name\":\"trace.dropped\""));
        assert!(last.contains("\"dropped\":3"));
    }

    #[test]
    fn canonical_export_excludes_volatile_records() {
        let recorder = Recorder::new();
        {
            let _guard = recorder.install("w");
            emit(
                names::SVC_JOB,
                Duration::ZERO,
                None,
                &[(keys::WAIT_HOST, Value::HostNs(9))],
                true,
            );
            emit(names::SVC_SUBMIT, Duration::ZERO, None, &[], false);
        }
        let canonical = recorder.export_jsonl(Export::Canonical);
        let full = recorder.export_jsonl(Export::Full);
        assert!(!canonical.contains("svc.job"));
        assert!(canonical.contains("svc.submit"));
        assert!(full.contains("svc.job"));
    }

    #[test]
    fn threads_merge_deterministically() {
        let recorder = Recorder::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let recorder = &recorder;
                scope.spawn(move || {
                    let _guard = recorder.install(&format!("thread/{t}"));
                    for n in 0..8u64 {
                        emit(
                            names::SVC_SUBMIT,
                            Duration::from_nanos(n),
                            None,
                            &[(keys::SEQ, Value::U64(t * 8 + n))],
                            false,
                        );
                    }
                });
            }
        });
        let a = recorder.export_jsonl(Export::Canonical);
        let b = recorder.export_jsonl(Export::Canonical);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 33, "32 records + dropped trailer");
    }
}
