//! # utp — Uni-directional trusted path
//!
//! Umbrella crate for the DSN 2011 reproduction *"Uni-directional trusted
//! path: Transaction confirmation on just one device"*. Re-exports every
//! workspace crate under one roof so applications can depend on `utp`
//! alone:
//!
//! * [`core`] — the paper's contribution: confirmation PAL, protocol,
//!   client, verifier, privacy CA;
//! * [`flicker`] — DRTM isolated-execution sessions;
//! * [`platform`] — the simulated SKINIT-capable machine and human model;
//! * [`tpm`] — the software TPM 1.2 with vendor latency profiles;
//! * [`crypto`] — from-scratch SHA-1/SHA-256/HMAC/RSA;
//! * [`server`] — service-provider stack;
//! * [`journal`] — crash-safe WAL + snapshots for the settlement path;
//! * [`netsim`] — client↔provider network model;
//! * [`captcha`] — the CAPTCHA baseline the paper proposes to replace;
//! * [`attack`] — the transaction-generator adversary suite;
//! * [`explore`] — bounded adversarial state-space explorer with
//!   replayable, shrinkable counterexamples.
//!
//! See `examples/quickstart.rs` for the five-step end-to-end flow, and
//! DESIGN.md / EXPERIMENTS.md for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use utp_attack as attack;
pub use utp_captcha as captcha;
pub use utp_core as core;
pub use utp_crypto as crypto;
pub use utp_explore as explore;
pub use utp_flicker as flicker;
pub use utp_journal as journal;
pub use utp_netsim as netsim;
pub use utp_platform as platform;
pub use utp_server as server;
pub use utp_tpm as tpm;
