//! The privacy CA.
//!
//! TPM 1.2 attestation keys are certified by a "privacy CA": the TPM proves
//! it holds a genuine endorsement key (EK), and the CA signs the AIK's
//! public half. Service providers then trust any quote signed by a
//! CA-certified AIK without learning which physical TPM produced it.
//!
//! The EK-challenge dance (`TPM_MakeIdentity` / `ActivateIdentity`) is
//! collapsed to its effect: [`PrivacyCa::enroll`] checks the machine's EK
//! exists and issues a certificate binding the fresh AIK. The verification
//! logic downstream is complete and real (RSA signatures over canonical
//! bytes).

use utp_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use utp_flicker::marshal::{put_bytes, put_u64, Reader};
use utp_platform::machine::Machine;

/// A certificate binding an AIK public key, signed by the privacy CA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AikCertificate {
    /// The certified AIK public key (encoded).
    pub aik_pub: Vec<u8>,
    /// Issuance ordinal (monotonic per CA; stands in for validity dates).
    pub serial: u64,
    /// PKCS#1 v1.5 SHA-256 signature by the CA over `(serial, aik_pub)`.
    pub signature: Vec<u8>,
}

impl AikCertificate {
    /// Wire encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.serial);
        put_bytes(&mut buf, &self.aik_pub);
        put_bytes(&mut buf, &self.signature);
        buf
    }

    /// Parses the wire encoding.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut r = Reader::new(data);
        let serial = r.u64().ok()?;
        let aik_pub = r.bytes().ok()?.to_vec();
        let signature = r.bytes().ok()?.to_vec();
        r.finish().ok()?;
        Some(AikCertificate {
            aik_pub,
            serial,
            signature,
        })
    }

    fn signed_body(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.serial);
        put_bytes(&mut buf, &self.aik_pub);
        buf
    }

    /// Validates the certificate under the CA key and returns the AIK
    /// public key if genuine.
    #[must_use]
    pub fn validate(&self, ca_key: &RsaPublicKey) -> Option<RsaPublicKey> {
        if !ca_key.verify_pkcs1_sha256(&self.signed_body(), &self.signature) {
            return None;
        }
        RsaPublicKey::from_bytes(&self.aik_pub)
    }
}

/// A client's enrollment result: the AIK handle inside its TPM plus the
/// CA-issued certificate for it.
#[derive(Debug, Clone)]
pub struct Enrollment {
    /// TPM key handle of the AIK.
    pub aik_handle: u32,
    /// Certificate to ship alongside quotes.
    pub certificate: AikCertificate,
}

/// The privacy CA.
#[derive(Debug)]
pub struct PrivacyCa {
    keypair: RsaKeyPair,
    issued: std::cell::Cell<u64>,
}

impl PrivacyCa {
    /// Creates a CA with a fresh key of `key_bits`.
    pub fn new(key_bits: usize, seed: u64) -> Self {
        PrivacyCa {
            keypair: RsaKeyPair::generate(key_bits, seed ^ 0x0050_5249_4341_u64),
            issued: std::cell::Cell::new(0),
        }
    }

    /// The CA's verification key (what providers pin).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// Number of certificates issued.
    pub fn issued(&self) -> u64 {
        self.issued.get()
    }

    /// Enrolls a machine: creates an AIK in its TPM, verifies the machine
    /// has a genuine EK (abbreviated — see module docs), and certifies the
    /// AIK.
    pub fn enroll(&self, machine: &mut Machine) -> Enrollment {
        // The abbreviated EK check: a real CA validates the EK certificate
        // chain; our TPMs are genuine by construction, so reading the EK
        // stands in for that check.
        let _ek = machine
            .tpm()
            .read_pubkey(utp_tpm::keys::EK_HANDLE)
            .expect("every TPM has an EK");
        let aik_handle = machine.tpm_provision().make_identity();
        let aik_pub = machine
            .tpm()
            .read_pubkey(aik_handle)
            .expect("identity just created");
        let certificate = self.certify(&aik_pub);
        Enrollment {
            aik_handle,
            certificate,
        }
    }

    /// Signs a certificate for an AIK public key.
    pub fn certify(&self, aik_pub: &RsaPublicKey) -> AikCertificate {
        let serial = self.issued.get() + 1;
        self.issued.set(serial);
        let mut cert = AikCertificate {
            aik_pub: aik_pub.to_bytes(),
            serial,
            signature: Vec::new(),
        };
        cert.signature = self
            .keypair
            .sign_pkcs1_sha256(&cert.signed_body())
            .expect("CA modulus is always large enough for SHA-256");
        cert
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_platform::machine::MachineConfig;

    fn ca() -> PrivacyCa {
        PrivacyCa::new(512, 77)
    }

    #[test]
    fn enrollment_produces_valid_certificate() {
        let ca = ca();
        let mut m = Machine::new(MachineConfig::fast_for_tests(5));
        let e = ca.enroll(&mut m);
        let aik = e.certificate.validate(ca.public_key()).unwrap();
        assert_eq!(&aik, &m.tpm().read_pubkey(e.aik_handle).unwrap());
        assert_eq!(ca.issued(), 1);
    }

    #[test]
    fn certificate_roundtrips_through_bytes() {
        let ca = ca();
        let mut m = Machine::new(MachineConfig::fast_for_tests(6));
        let e = ca.enroll(&mut m);
        let parsed = AikCertificate::from_bytes(&e.certificate.to_bytes()).unwrap();
        assert_eq!(parsed, e.certificate);
        assert!(parsed.validate(ca.public_key()).is_some());
    }

    #[test]
    fn forged_certificate_rejected() {
        let real_ca = ca();
        let rogue_ca = PrivacyCa::new(512, 78);
        let mut m = Machine::new(MachineConfig::fast_for_tests(7));
        let aik_handle = m.tpm_provision().make_identity();
        let aik_pub = m.tpm().read_pubkey(aik_handle).unwrap();
        // Rogue CA certifies the AIK, provider pins the real CA.
        let forged = rogue_ca.certify(&aik_pub);
        assert!(forged.validate(real_ca.public_key()).is_none());
    }

    #[test]
    fn tampered_certificate_rejected() {
        let ca = ca();
        let mut m = Machine::new(MachineConfig::fast_for_tests(8));
        let mut cert = ca.enroll(&mut m).certificate;
        // Swap in a different key (the classic substitution attack).
        let other = RsaKeyPair::generate(512, 123);
        cert.aik_pub = other.public().to_bytes();
        assert!(cert.validate(ca.public_key()).is_none());
        // Or tweak the serial.
        let mut cert2 = ca.enroll(&mut m).certificate;
        cert2.serial += 1;
        assert!(cert2.validate(ca.public_key()).is_none());
    }

    #[test]
    fn serials_are_monotonic() {
        let ca = ca();
        let mut m = Machine::new(MachineConfig::fast_for_tests(9));
        let a = ca.enroll(&mut m).certificate.serial;
        let b = ca.enroll(&mut m).certificate.serial;
        assert!(b > a);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(AikCertificate::from_bytes(&[]).is_none());
        assert!(AikCertificate::from_bytes(&[0u8; 7]).is_none());
    }
}
