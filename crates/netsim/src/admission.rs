//! Admission control policy, shared by the live `VerifierService` and
//! the fleet simulator's modeled provider.
//!
//! The policy is deliberately tiny and pure: given the current queue
//! depth it either admits or sheds with a typed retry-after hint that
//! grows linearly with the backlog. Keeping it here (the lowest crate
//! in the dependency chain that both the server and the simulator can
//! see) means the E13 saturation sweep tunes exactly the code the
//! production service runs.

use std::time::Duration;

/// Bounded-queue early-shed policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Depth at which submissions start being shed. Must be at least 1.
    pub max_queue: usize,
    /// Minimum retry-after handed to a shed client.
    pub retry_floor: Duration,
    /// Extra retry-after per queued job at shed time — an estimate of
    /// per-job service time, so the hint tracks the actual backlog
    /// drain horizon.
    pub retry_per_job: Duration,
}

impl AdmissionConfig {
    /// A policy sized for a queue bound and an estimated per-job
    /// service time: the retry hint starts at one service time and
    /// grows with the backlog.
    pub fn for_service_time(max_queue: usize, service_time: Duration) -> AdmissionConfig {
        AdmissionConfig {
            max_queue,
            retry_floor: service_time,
            retry_per_job: service_time,
        }
    }

    /// Decides the fate of a submission arriving at `queue_depth`.
    pub fn decide(&self, queue_depth: usize) -> Admission {
        if queue_depth < self.max_queue.max(1) {
            return Admission::Admit;
        }
        let retry_after = self.retry_floor + self.retry_per_job * queue_depth as u32;
        Admission::Shed { retry_after }
    }
}

/// The outcome of an admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueue the job.
    Admit,
    /// Shed it now; the client should retry no sooner than
    /// `retry_after`.
    Shed {
        /// Back-off hint proportional to the backlog at shed time.
        retry_after: Duration,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_below_bound_sheds_at_bound() {
        let policy = AdmissionConfig::for_service_time(4, Duration::from_micros(100));
        assert_eq!(policy.decide(0), Admission::Admit);
        assert_eq!(policy.decide(3), Admission::Admit);
        match policy.decide(4) {
            Admission::Shed { retry_after } => {
                assert_eq!(retry_after, Duration::from_micros(500));
            }
            Admission::Admit => panic!("depth at bound must shed"),
        }
    }

    #[test]
    fn retry_hint_grows_with_backlog() {
        let policy = AdmissionConfig::for_service_time(2, Duration::from_millis(1));
        let at = |depth: usize| match policy.decide(depth) {
            Admission::Shed { retry_after } => retry_after,
            Admission::Admit => panic!("expected shed at depth {depth}"),
        };
        assert!(at(10) > at(2), "deeper backlog, longer hint");
    }

    #[test]
    fn zero_bound_still_admits_nothing_past_one() {
        let policy = AdmissionConfig::for_service_time(0, Duration::from_micros(50));
        assert_eq!(policy.decide(0), Admission::Admit, "max_queue clamps to 1");
        assert!(matches!(policy.decide(1), Admission::Shed { .. }));
    }
}
