//! # Uni-directional trusted path (UTP)
//!
//! Reproduction of *"Uni-directional trusted path: Transaction confirmation
//! on just one device"* (Filyanov, McCune, Sadeghi, Winandy — DSN 2011).
//!
//! Malware that owns a user's OS can submit transactions the user never
//! intended ("transaction generators") or tamper with what the user typed.
//! This crate establishes a **one-way trusted path** from the human at the
//! keyboard to a remote service provider, using only the machine itself —
//! no second device, no secure display requirement:
//!
//! 1. The provider sends a [`protocol::TransactionRequest`] with a fresh
//!    nonce.
//! 2. The client late-launches the tiny [`pal::ConfirmationPal`] via DRTM
//!    ([`utp_flicker`]); the OS — and any malware in it — is suspended, the
//!    keyboard is hardware-isolated, and the TPM's PCR 17 records exactly
//!    which PAL ran.
//! 3. The PAL displays the transaction, collects the human's verdict
//!    (press Enter / type a random confirmation code), and emits a
//!    [`protocol::ConfirmationToken`].
//! 4. The session binds the token into PCR 17 and quotes it with an AIK
//!    certified by a privacy CA ([`ca`]).
//! 5. The provider's [`verifier::Verifier`] checks the certificate chain,
//!    quote signature, PCR-17 chain, nonce freshness and verdict — gaining
//!    assurance a *human* confirmed *this* transaction, even though the
//!    provider trusts nothing else on the machine.
//!
//! The path is uni-directional: only the user→provider direction is
//! authenticated. The provider never claims the user saw authentic output;
//! the human implicitly checks the displayed transaction against their own
//! intention, and rejects surprises (modeled in [`operator`]).
//!
//! # Example
//!
//! ```
//! use utp_core::ca::PrivacyCa;
//! use utp_core::client::{Client, ClientConfig};
//! use utp_core::operator::{ConfirmingHuman, Intent};
//! use utp_core::protocol::Transaction;
//! use utp_core::verifier::Verifier;
//! use utp_platform::machine::{Machine, MachineConfig};
//!
//! // Provider side.
//! let ca = PrivacyCa::new(512, 1);
//! let mut verifier = Verifier::new(ca.public_key().clone(), 99);
//!
//! // Client side: enroll the TPM's AIK with the privacy CA.
//! let mut machine = Machine::new(MachineConfig::fast_for_tests(2));
//! let enrollment = ca.enroll(&mut machine);
//! let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
//!
//! // A human intends to pay the bookshop.
//! let tx = Transaction::new(1, "bookshop.example", 4_200, "EUR", "order #77");
//! let mut human = ConfirmingHuman::new(Intent::approving(&tx), 3);
//!
//! let request = verifier.issue_request(tx, machine.now());
//! let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
//! let verified = verifier.verify(&evidence, machine.now()).unwrap();
//! assert_eq!(verified.transaction.payee, "bookshop.example");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amortized;
pub mod batch;
pub mod ca;
pub mod client;
pub mod error;
pub mod operator;
pub mod pal;
pub mod protocol;
pub mod verifier;

pub use error::UtpError;
