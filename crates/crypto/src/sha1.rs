//! SHA-1 (FIPS 180-4). TPM 1.2 uses SHA-1 for PCRs, quotes and seals, so a
//! faithful TPM model needs a real SHA-1 even though it is cryptographically
//! broken for collision resistance today.

use std::fmt;

/// Length of a SHA-1 digest in bytes.
pub const DIGEST_LEN: usize = 20;

/// A 160-bit SHA-1 digest, the PCR word size of a TPM 1.2.
///
/// # Example
///
/// ```
/// use utp_crypto::sha1::Sha1;
/// let d = Sha1::digest(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Sha1Digest(pub [u8; DIGEST_LEN]);

impl Sha1Digest {
    /// The all-zero digest (a freshly reset PCR).
    pub fn zero() -> Self {
        Sha1Digest([0u8; DIGEST_LEN])
    }

    /// The all-ones digest (the reset value of unresettable dynamic PCRs,
    /// and the "cap" value semantics used by DRTM).
    pub fn ones() -> Self {
        Sha1Digest([0xFFu8; DIGEST_LEN])
    }

    /// View as bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{:02x}", b)).collect()
    }

    /// Parses a digest from raw bytes.
    ///
    /// Returns `None` unless exactly 20 bytes are supplied.
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != DIGEST_LEN {
            return None;
        }
        let mut d = [0u8; DIGEST_LEN];
        d.copy_from_slice(bytes);
        Some(Sha1Digest(d))
    }
}

impl fmt::Debug for Sha1Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sha1({})", self.to_hex())
    }
}

impl fmt::Display for Sha1Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Sha1Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Streaming SHA-1 context.
#[derive(Clone, Debug)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh context.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> Sha1Digest {
        let mut ctx = Sha1::new();
        ctx.update(data);
        ctx.finalize()
    }

    /// Digest of the concatenation of two byte strings — the TPM's
    /// `PCR ← H(old || input)` extend operation uses this shape constantly.
    pub fn digest_concat(a: &[u8], b: &[u8]) -> Sha1Digest {
        let mut ctx = Sha1::new();
        ctx.update(a);
        ctx.update(b);
        ctx.finalize()
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Produces the digest, consuming the context.
    pub fn finalize(mut self) -> Sha1Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // The length bytes must not be counted in total_len, but update()
        // counts them; that is harmless because we read bit_len beforehand.
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Sha1Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / RFC 3174 test vectors.
    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            Sha1::digest(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            Sha1::digest(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            Sha1::digest(&data).to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for chunk in [1usize, 3, 63, 64, 65, 127, 999] {
            let mut ctx = Sha1::new();
            for piece in data.chunks(chunk) {
                ctx.update(piece);
            }
            assert_eq!(ctx.finalize(), Sha1::digest(&data), "chunk {}", chunk);
        }
    }

    #[test]
    fn digest_concat_equals_concat_digest() {
        let a = b"hello ";
        let b = b"world";
        assert_eq!(Sha1::digest_concat(a, b), Sha1::digest(b"hello world"));
    }

    #[test]
    fn from_slice_checks_length() {
        assert!(Sha1Digest::from_slice(&[0u8; 20]).is_some());
        assert!(Sha1Digest::from_slice(&[0u8; 19]).is_none());
        assert!(Sha1Digest::from_slice(&[0u8; 21]).is_none());
    }

    #[test]
    fn sentinel_values() {
        assert_eq!(Sha1Digest::zero().as_bytes(), &[0u8; 20]);
        assert_eq!(Sha1Digest::ones().as_bytes(), &[0xFFu8; 20]);
    }
}
