//! Pass 3: `ct-discipline` — secret comparisons must be constant-time.
//!
//! Short-circuiting `==`/`!=` on key/digest/MAC material and early
//! `return`s inside loops over secrets leak timing information to the
//! untrusted OS sharing the machine. In `utp-crypto` and the TPM auth
//! path, comparisons whose operands have secret-carrying names (`key`,
//! `secret`, `auth`, `hmac`, `digest`, `nonce`, `mac`, `tag`) must go
//! through `utp_crypto::ct::ct_eq` / `ct_select`, and loops over such
//! bindings must not exit early. Length inspections (`key.len() == 32`)
//! are public and exempt.

use super::{Finding, Pass};
use crate::diag::Severity;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Methods whose results are public even on secret receivers.
const PUBLIC_PROJECTIONS: &[&str] = &["len", "is_empty", "count", "capacity"];

/// The `ct-discipline` pass.
pub struct CtDiscipline;

/// Is this file in scope: the crypto crate, or the TPM authorization path?
fn in_scope(path: &str) -> bool {
    path.starts_with("crates/crypto/src/")
        || path == "crates/tpm/src/auth.rs"
        || path == "crates/tpm/src/seal.rs"
}

impl Pass for CtDiscipline {
    fn id(&self) -> &'static str {
        "ct-discipline"
    }

    fn description(&self) -> &'static str {
        "secret-named values must be compared with ct_eq, and loops over them must not return early"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if !in_scope(&file.path) {
            return Vec::new();
        }
        let mut findings = Vec::new();
        self.check_comparisons(file, &mut findings);
        self.check_loop_returns(file, &mut findings);
        findings
    }
}

impl CtDiscipline {
    fn check_comparisons(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if !(t.is_punct("==") || t.is_punct("!=")) || file.in_test_code(t.line) {
                continue;
            }
            let left = operand_idents(tokens, i, Direction::Left);
            let right = operand_idents(tokens, i, Direction::Right);
            let secret_side = |idents: &[String]| {
                idents.iter().any(|s| super::is_secret_ident(s))
                    && !idents
                        .iter()
                        .any(|s| PUBLIC_PROJECTIONS.contains(&s.as_str()))
            };
            if secret_side(&left) || secret_side(&right) {
                findings.push(Finding {
                    line: t.line,
                    severity: Severity::Deny,
                    message: format!(
                        "`{}` on secret-named data short-circuits on the first differing \
                         byte, leaking a timing oracle; compare with \
                         `utp_crypto::ct::ct_eq` (or select with `ct_select`)",
                        t.text
                    ),
                });
            }
        }
    }

    fn check_loop_returns(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident
                || !matches!(t.text.as_str(), "for" | "while" | "loop")
                || file.in_test_code(t.line)
            {
                continue;
            }
            // Header = tokens between the keyword and the body's `{`.
            let Some(body_open) = tokens[i..].iter().position(|t| t.is_punct("{")) else {
                continue;
            };
            let body_open = i + body_open;
            let header_secret = tokens[i + 1..body_open]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && super::is_secret_ident(&t.text));
            if !header_secret {
                continue;
            }
            // Body extent via brace matching.
            let mut depth = 0usize;
            let mut close = body_open;
            while close < tokens.len() {
                if tokens[close].is_punct("{") {
                    depth += 1;
                } else if tokens[close].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                close += 1;
            }
            for rt in &tokens[body_open..close.min(tokens.len())] {
                if rt.is_ident("return") {
                    findings.push(Finding {
                        line: rt.line,
                        severity: Severity::Deny,
                        message: "early `return` inside a loop over secret-named data makes \
                                  the iteration count observable; accumulate a flag and \
                                  decide after the loop (see `utp_crypto::ct`)"
                            .to_string(),
                    });
                }
            }
        }
    }
}

enum Direction {
    Left,
    Right,
}

/// Collects the identifiers of the operand expression adjacent to the
/// comparison at `idx`, walking over member access / calls / indexing.
fn operand_idents(tokens: &[crate::lexer::Token], idx: usize, dir: Direction) -> Vec<String> {
    let mut idents = Vec::new();
    let mut steps = 0;
    let mut j = idx;
    loop {
        let next = match dir {
            Direction::Left => j.checked_sub(1),
            Direction::Right => Some(j + 1),
        };
        let Some(next) = next else { break };
        let Some(t) = tokens.get(next) else { break };
        steps += 1;
        if steps > 10 {
            break;
        }
        let continues = match t.kind {
            TokenKind::Ident => {
                idents.push(t.text.clone());
                true
            }
            TokenKind::Number | TokenKind::Char | TokenKind::Str => true,
            TokenKind::Punct => matches!(
                t.text.as_str(),
                "." | "::" | "(" | ")" | "[" | "]" | "&" | "*"
            ),
            _ => false,
        };
        if !continues {
            break;
        }
        j = next;
    }
    idents
}
