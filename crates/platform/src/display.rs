//! The VGA text console model.
//!
//! The PAL renders the pending transaction on an 80×25 text screen it owns
//! exclusively during the session. The path is *uni-directional*: the
//! server never relies on the display being trustworthy — but the human
//! does read it, so the model records exactly what was shown so the human
//! model (and attack harness) can react to the true screen contents.

use crate::error::PlatformError;
use crate::keyboard::DeviceOwner;

/// Screen width in characters.
pub const COLS: usize = 80;
/// Screen height in rows.
pub const ROWS: usize = 25;

/// The text-mode display.
#[derive(Debug, Clone)]
pub struct Display {
    owner: DeviceOwner,
    cells: Vec<char>,
}

impl Display {
    /// A blank screen owned by the OS.
    pub fn new() -> Self {
        Display {
            owner: DeviceOwner::Os,
            cells: vec![' '; COLS * ROWS],
        }
    }

    /// Current owner.
    pub fn owner(&self) -> DeviceOwner {
        self.owner
    }

    /// Transfers ownership; entering a session clears the screen so OS
    /// content cannot masquerade as PAL output, and vice versa.
    pub(crate) fn set_owner(&mut self, owner: DeviceOwner) {
        self.owner = owner;
        self.cells.fill(' ');
    }

    /// Writes `text` at `(row, col)`, truncating at the line end.
    ///
    /// # Errors
    ///
    /// [`PlatformError::NotOwner`] if `writer` does not own the display;
    /// rows past the end are an error, mirroring a real frame buffer's
    /// bounds.
    pub fn write_at(
        &mut self,
        writer: DeviceOwner,
        row: usize,
        col: usize,
        text: &str,
    ) -> Result<(), PlatformError> {
        if writer != self.owner {
            return Err(PlatformError::NotOwner("display"));
        }
        if row >= ROWS || col >= COLS {
            return Err(PlatformError::NotOwner("display")); // out of bounds
        }
        for (i, ch) in text.chars().enumerate() {
            let c = col + i;
            if c >= COLS {
                break;
            }
            self.cells[row * COLS + c] = ch;
        }
        Ok(())
    }

    /// Returns row `row` as a trimmed string.
    pub fn row_text(&self, row: usize) -> String {
        let start = row * COLS;
        self.cells[start..start + COLS]
            .iter()
            .collect::<String>()
            .trim_end()
            .to_string()
    }

    /// Full-screen snapshot (trimmed rows), for the human model and tests.
    pub fn snapshot(&self) -> Vec<String> {
        (0..ROWS).map(|r| self.row_text(r)).collect()
    }

    /// True if the given needle appears anywhere on screen.
    pub fn contains(&self, needle: &str) -> bool {
        self.snapshot().iter().any(|row| row.contains(needle))
    }
}

impl Default for Display {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read_back() {
        let mut d = Display::new();
        d.write_at(DeviceOwner::Os, 0, 0, "hello").unwrap();
        assert_eq!(d.row_text(0), "hello");
        assert!(d.contains("hello"));
        assert!(!d.contains("goodbye"));
    }

    #[test]
    fn non_owner_cannot_write() {
        let mut d = Display::new();
        assert!(d.write_at(DeviceOwner::Pal, 0, 0, "spoof").is_err());
        d.set_owner(DeviceOwner::Pal);
        assert!(d.write_at(DeviceOwner::Os, 0, 0, "spoof").is_err());
        d.write_at(DeviceOwner::Pal, 1, 2, "txn").unwrap();
        assert_eq!(d.row_text(1), "  txn");
    }

    #[test]
    fn ownership_transfer_clears_screen() {
        let mut d = Display::new();
        d.write_at(DeviceOwner::Os, 3, 0, "PAY $9999 TO MALLORY (fake)")
            .unwrap();
        d.set_owner(DeviceOwner::Pal);
        assert!(!d.contains("MALLORY"));
    }

    #[test]
    fn long_lines_truncate_at_edge() {
        let mut d = Display::new();
        let long = "x".repeat(200);
        d.write_at(DeviceOwner::Os, 0, 70, &long).unwrap();
        assert_eq!(d.row_text(0).len(), COLS);
        assert_eq!(d.row_text(1), ""); // no wrap
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut d = Display::new();
        assert!(d.write_at(DeviceOwner::Os, ROWS, 0, "x").is_err());
        assert!(d.write_at(DeviceOwner::Os, 0, COLS, "x").is_err());
    }
}
