//! Virtual time.
//!
//! Every latency in the reproduction is *modeled*, not measured from the
//! host: TPM command costs, SKINIT microcode time, human think time and
//! network RTTs all advance a [`SimClock`]. This keeps experiment output
//! bit-reproducible and lets a laptop regenerate numbers that originally
//! required a specific 2011 machine.

use std::time::Duration;

/// A monotonically advancing virtual clock.
///
/// # Example
///
/// ```
/// use utp_platform::clock::SimClock;
/// use std::time::Duration;
/// let mut clock = SimClock::new();
/// clock.advance(Duration::from_millis(5));
/// assert_eq!(clock.now(), Duration::from_millis(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimClock {
    now: Duration,
}

impl SimClock {
    /// A clock at time zero (machine power-on).
    pub fn new() -> Self {
        SimClock {
            now: Duration::ZERO,
        }
    }

    /// Current virtual time since power-on.
    pub fn now(&self) -> Duration {
        self.now
    }

    /// Advances time by `d`.
    pub fn advance(&mut self, d: Duration) {
        self.now += d;
    }

    /// Elapsed time since an earlier reading.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is in the future (virtual time is monotonic, so
    /// this is always a caller bug).
    pub fn since(&self, earlier: Duration) -> Duration {
        self.now
            .checked_sub(earlier)
            .expect("virtual clock cannot run backwards")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_micros(10));
        c.advance(Duration::from_micros(5));
        assert_eq!(c.now(), Duration::from_micros(15));
    }

    #[test]
    fn since_measures_intervals() {
        let mut c = SimClock::new();
        c.advance(Duration::from_millis(3));
        let mark = c.now();
        c.advance(Duration::from_millis(9));
        assert_eq!(c.since(mark), Duration::from_millis(9));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn since_future_panics() {
        let c = SimClock::new();
        let _ = c.since(Duration::from_secs(1));
    }
}
