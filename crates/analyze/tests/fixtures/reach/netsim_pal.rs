// Fed as `crates/tpm/src/sim_hook.rs` (a TCB file). It imports the
// fleet simulator — untrusted, clock-driving, allocation-heavy code
// that a measured PAL can never contain. `utp_netsim` is on the
// forbidden-crates list, so the tcb-boundary pass must deny the
// import outright.
use utp_netsim::Scenario;
pub fn simulate_inside_pal() -> Scenario {
    Scenario::default()
}
