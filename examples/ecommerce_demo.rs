//! E-commerce demo: a shop processing a day of orders over the network
//! model — honest purchases, a malware-forged order, and a tampered
//! transaction a vigilant customer catches.
//!
//! Run with: `cargo run --example ecommerce_demo`

use std::time::Duration;
use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::Transaction;
use utp::netsim::{Link, LinkConfig};
use utp::platform::machine::{Machine, MachineConfig};
use utp::server::flow::run_transaction;
use utp::server::provider::ServiceProvider;
use utp::tpm::VendorProfile;

fn main() {
    println!("== E-commerce with the uni-directional trusted path ==\n");
    let ca = PrivacyCa::new(1024, 11);
    let mut shop = ServiceProvider::new(ca.public_key().clone(), 12);
    shop.store_mut().open_account("alice", 100_000);

    let mut machine = Machine::new(MachineConfig::realistic(VendorProfile::Broadcom, 13));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::default(), enrollment);
    let mut link = Link::new(LinkConfig::broadband(), 14);

    // --- Three honest purchases --------------------------------------------
    let orders = [
        ("books.example", 2_350u64, "three paperbacks"),
        ("coffee.example", 1_499, "1kg espresso beans"),
        ("hosting.example", 9_900, "12 months web hosting"),
    ];
    for (payee, cents, memo) in orders {
        let intended = Transaction::new(0, payee, cents, "EUR", memo);
        let mut human = ConfirmingHuman::new(Intent::approving(&intended), cents);
        let report = run_transaction(
            &mut machine,
            &mut client,
            &mut shop,
            &mut link,
            "alice",
            payee,
            cents,
            memo,
            &mut human,
        )
        .expect("flow runs");
        match &report.outcome {
            Ok(receipt) => println!(
                "[shop] settled order {} — {} to {} in {:.1}s ({:.0} ms machine time)",
                receipt.order_id,
                receipt.transaction.display_amount(),
                receipt.transaction.payee,
                report.total.as_secs_f64(),
                report.machine_only().as_secs_f64() * 1e3,
            ),
            Err(e) => println!("[shop] order rejected: {}", e),
        }
    }

    // --- Malware forges an order while Alice is away ----------------------------
    println!("\n-- malware places an order; nobody is at the keyboard --");
    struct Nobody;
    impl utp::flicker::pal::Operator for Nobody {
        fn respond(&mut self, _screen: &[String]) -> utp::flicker::pal::OperatorResponse {
            utp::flicker::pal::OperatorResponse::default()
        }
    }
    let report = run_transaction(
        &mut machine,
        &mut client,
        &mut shop,
        &mut link,
        "alice",
        "fence.example",
        89_900,
        "totally legitimate",
        &mut Nobody,
    )
    .expect("flow runs");
    println!(
        "[shop] forged order outcome: {}",
        match report.outcome {
            Ok(_) => "SETTLED (bad!)".to_string(),
            Err(e) => format!("rejected — {}", e),
        }
    );

    // --- Malware swaps the payee; Alice reads the PAL screen -------------------
    println!("\n-- malware swaps the payee on a real purchase; Alice reads the screen --");
    let intended = Transaction::new(0, "books.example", 1_200, "EUR", "a novel");
    let mut alice = ConfirmingHuman::new(Intent::approving(&intended), 15);
    let report = run_transaction(
        &mut machine,
        &mut client,
        &mut shop,
        &mut link,
        "alice",
        "fence.example", // what malware actually submitted
        99_900,
        "a novel",
        &mut alice,
    )
    .expect("flow runs");
    println!(
        "[shop] swapped order outcome: {}",
        match report.outcome {
            Ok(_) => "SETTLED (bad!)".to_string(),
            Err(e) => format!("rejected — {}", e),
        }
    );

    let (pending, confirmed, rejected) = shop.store().status_counts();
    println!(
        "\n[shop] day summary: {} confirmed, {} rejected, {} pending",
        confirmed, rejected, pending
    );
    println!(
        "[shop] alice's balance: {:.2} EUR",
        shop.store().account("alice").unwrap().balance_cents as f64 / 100.0
    );
    assert_eq!(confirmed, 3, "only the honest purchases settle");
    let _ = Duration::ZERO;
}
