//! utp-explore: bounded adversarial state-space exploration for the
//! uni-directional trusted path settlement stack.
//!
//! The paper's server-side claim is an *invariant over adversary
//! schedules*: however messages are replayed, reordered, dropped or
//! delayed, and however the provider crashes and recovers, no
//! transaction settles without a fresh human-confirmed quote and none
//! settles twice. This crate checks that claim the way a model checker
//! would:
//!
//! * [`scenario`] provisions a bounded protocol run once (CA, AIK
//!   enrollment, PAL confirmations) and captures per-order *evidence
//!   kits* — the adversary's ammunition.
//! * [`action`] is the adversary vocabulary — deliver / cross-deliver /
//!   drop / delay / crash / checkpoint — shared with the attack
//!   playbooks in `utp-attack`.
//! * [`sut`] wraps the real `ServiceProvider` + journal stack behind a
//!   forkable [`sut::System`] interface with a canonical observable
//!   [`sut::StateView`].
//! * [`oracle`] holds the four invariants, checked after every action.
//! * [`explorer`] enumerates interleavings breadth- or depth-first
//!   with fingerprint deduplication under explicit bounds.
//! * [`shrink`] replays counterexample schedules deterministically and
//!   ddmin-shrinks them to minimal form.
//! * [`shims`] are deliberately buggy providers the explorer must
//!   catch — the oracle's self-check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod explorer;
pub mod oracle;
pub mod scenario;
pub mod shims;
pub mod shrink;
pub mod sut;

pub use action::{default_alphabet, render_schedule, Action, CrashKind, EvidenceKind, Schedule};
pub use explorer::{explore, Counterexample, ExploreConfig, ExploreReport, Strategy};
pub use oracle::{Oracle, Violation, INVARIANT_COUNT};
pub use scenario::{Scenario, ScenarioOrder, ACCOUNT, OPENING_CENTS};
pub use shims::{AuditTruncationShim, DoubleSettleShim, ForgottenOrderShim};
pub use shrink::{render_counterexample, replay_schedule, shrink, ReplayOutcome};
pub use sut::{apply_action, fingerprint, Fork, RealSystem, ServiceSystem, StateView, System};
