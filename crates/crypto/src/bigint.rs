//! Arbitrary-precision unsigned integer arithmetic.
//!
//! [`BigUint`] stores little-endian `u64` limbs and provides exactly the
//! operations RSA needs: add/sub/mul, division with remainder, modular
//! exponentiation, modular inverse, gcd, shifts, byte conversion and random
//! sampling. The representation invariant is *no trailing zero limbs* (zero
//! is the empty limb vector).

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use utp_crypto::bigint::BigUint;
/// let a = BigUint::from_u64(12_345);
/// let b = BigUint::from_u64(67_890);
/// assert_eq!((&a * &b).to_u64(), Some(12_345u64 * 67_890));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from big-endian bytes (leading zeros allowed).
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to big-endian bytes with no leading zeros (empty for 0).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        assert!(
            raw.len() <= len,
            "value needs {} bytes > {}",
            raw.len(),
            len
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True if the lowest bit is clear (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to one.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << (i % 64);
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned underflow).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self * other` (schoolbook; RSA-2048 operand sizes are small enough
    /// that asymptotically faster algorithms don't pay off here).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry = 0u64;
            for l in out.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (64 - bit_shift);
                *l = new;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// Single-limb divisors use schoolbook short division; multi-limb
    /// divisors use Knuth's Algorithm D (TAOCP vol. 2, 4.3.1) on 64-bit
    /// limbs, which keeps RSA's modular reductions allocation-free per
    /// quotient digit.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut rem = 0u128;
            let mut q = vec![0u64; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | self.limbs[i] as u128;
                q[i] = (cur / d as u128) as u64;
                rem = cur % d as u128;
            }
            let mut quo = BigUint { limbs: q };
            quo.normalize();
            return (quo, BigUint::from_u64(rem as u64));
        }
        // Knuth Algorithm D.
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        debug_assert_eq!(v.len(), n);
        let mut u = self.shl(shift).limbs;
        u.resize(self.limbs.len() + 1, 0); // u has m+n+1 limbs
        let mut q = vec![0u64; m + 1];
        let v_top = v[n - 1];
        let v_next = v[n - 2];
        // D2..D7: compute one quotient limb per iteration.
        for j in (0..=m).rev() {
            // D3: estimate qhat from the top two (three) limbs.
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = top / v_top as u128;
            let mut rhat = top % v_top as u128;
            while qhat >> 64 != 0 || qhat * v_next as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // D4: multiply and subtract u[j..j+n+1] -= qhat * v.
            let qhat64 = qhat as u64;
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat64 as u128 * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = u[j + i] as i128 - (p as u64) as i128 + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = sub as u64;
            let went_negative = sub < 0;
            // D5/D6: if we overshot, add the divisor back once.
            if went_negative {
                q[j] = qhat64.wrapping_sub(1);
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            } else {
                q[j] = qhat64;
            }
        }
        // D8: denormalize the remainder.
        let mut quo = BigUint { limbs: q };
        quo.normalize();
        let mut rem = BigUint {
            limbs: u[..n].to_vec(),
        };
        rem.normalize();
        let rem = rem.shr(shift);
        (quo, rem)
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular addition `(self + other) mod m`; operands must be `< m`.
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add(other);
        if &s >= m {
            s.sub(m)
        } else {
            s
        }
    }

    /// Modular multiplication `(self * other) mod m`.
    pub fn mod_mul(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self^exp mod m` via 4-bit fixed windows.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if m.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        let base = self.rem(m);
        // Precompute base^0..base^15.
        let mut table = Vec::with_capacity(16);
        table.push(BigUint::one());
        table.push(base.clone());
        for i in 2..16 {
            let next = table[i - 1].mod_mul(&base, m);
            table.push(next);
        }
        let nbits = exp.bit_len();
        let nwindows = nbits.div_ceil(4);
        let mut acc = BigUint::one();
        for w in (0..nwindows).rev() {
            if w != nwindows - 1 {
                for _ in 0..4 {
                    acc = acc.mod_mul(&acc, m);
                }
            }
            let mut idx = 0usize;
            for b in 0..4 {
                let bit = w * 4 + (3 - b);
                idx <<= 1;
                if exp.bit(bit) {
                    idx |= 1;
                }
            }
            if idx != 0 {
                acc = acc.mod_mul(&table[idx], m);
            }
        }
        acc
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl(shift)
    }

    /// Modular multiplicative inverse of `self` modulo `m`, if it exists.
    ///
    /// Uses the extended Euclidean algorithm with signed bookkeeping.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Extended Euclid on (a, m), tracking x where a*x ≡ gcd (mod m).
        let mut r0 = self.rem(m);
        let mut r1 = m.clone();
        // Coefficients as (value, is_negative).
        let mut s0 = (BigUint::one(), false);
        let mut s1 = (BigUint::zero(), false);
        while !r0.is_zero() {
            let (q, r) = r1.div_rem(&r0);
            // s1 - q*s0
            let qs0 = q.mul(&s0.0);
            let new_s = signed_sub(&s1, &(qs0, s0.1));
            r1 = r0;
            r0 = r;
            s1 = s0;
            s0 = new_s;
        }
        if !r1.is_one() {
            return None; // not coprime
        }
        // s1 is the coefficient for the original `self`.
        let (mag, neg) = s1;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() {
            m.sub(&mag)
        } else {
            mag
        })
    }

    /// Uniformly random value in `[0, bound)` using the given RNG.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: rand::Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bit_len();
        let nlimbs = bits.div_ceil(64);
        loop {
            let mut limbs: Vec<u64> = (0..nlimbs).map(|_| rng.gen()).collect();
            // Mask the top limb so the candidate has at most `bits` bits.
            let extra = nlimbs * 64 - bits;
            if extra > 0 {
                if let Some(top) = limbs.last_mut() {
                    *top &= u64::MAX >> extra;
                }
            }
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Random integer with exactly `bits` bits (top bit set) and odd.
    pub fn random_odd_with_bits<R: rand::Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits >= 2, "need at least 2 bits");
        let nlimbs = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..nlimbs).map(|_| rng.gen()).collect();
        let extra = nlimbs * 64 - bits;
        if let Some(top) = limbs.last_mut() {
            *top &= u64::MAX >> extra;
            *top |= 1u64 << (63 - extra);
        }
        limbs[0] |= 1;
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }
}

/// Signed subtraction on (magnitude, is_negative) pairs: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        (false, true) => (a.0.add(&b.0), false), // a - (-b) = a + b
        (true, false) => (a.0.add(&b.0), true),  // -a - b = -(a+b)
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        (true, true) => {
            // -a - (-b) = b - a
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x")?;
        if self.is_zero() {
            write!(f, "0")?;
        } else {
            for (i, limb) in self.limbs.iter().enumerate().rev() {
                if i == self.limbs.len() - 1 {
                    write!(f, "{:x}", limb)?;
                } else {
                    write!(f, "{:016x}", limb)?;
                }
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hex display; decimal conversion is never needed in this stack.
        fmt::Debug::fmt(self, f)
    }
}

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::add(self, rhs)
    }
}

impl std::ops::Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        BigUint::sub(self, rhs)
    }
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::mul(self, rhs)
    }
}

impl std::ops::Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        BigUint::rem(self, rhs)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::one();
        let s = a.add(&b);
        assert_eq!(s.to_be_bytes(), vec![1, 0, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn sub_with_borrow_across_limbs() {
        let a = BigUint::from_be_bytes(&[1, 0, 0, 0, 0, 0, 0, 0, 0]);
        let b = BigUint::one();
        assert_eq!(a.sub(&b), BigUint::from_u64(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xDEAD_BEEF_u64;
        let b = 0xFEED_FACE_CAFE_u64;
        let prod = big(a).mul(&big(b));
        let expect = a as u128 * b as u128;
        let got = BigUint::from_be_bytes(&expect.to_be_bytes());
        assert_eq!(prod, got);
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = BigUint::from_be_bytes(&[0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0, 0x11]);
        let (q, r) = a.div_rem(&big(1_000_003));
        let back = q.mul(&big(1_000_003)).add(&r);
        assert_eq!(back, a);
        assert!(r < big(1_000_003));
    }

    #[test]
    fn div_rem_multi_limb_divisor() {
        let a = BigUint::from_be_bytes(&[0xFF; 40]);
        let d =
            BigUint::from_be_bytes(&[0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF, 0x55, 0x77]);
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts_roundtrip() {
        let a = BigUint::from_be_bytes(b"some arbitrary byte string!");
        for bits in [0usize, 1, 7, 63, 64, 65, 130] {
            assert_eq!(a.shl(bits).shr(bits), a, "shift by {}", bits);
        }
    }

    #[test]
    fn byte_roundtrip_strips_leading_zeros() {
        let a = BigUint::from_be_bytes(&[0, 0, 0x12, 0x34]);
        assert_eq!(a.to_be_bytes(), vec![0x12, 0x34]);
        assert_eq!(a.to_be_bytes_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic]
    fn padded_too_small_panics() {
        let _ = big(0x1234).to_be_bytes_padded(1);
    }

    #[test]
    fn mod_pow_small_cases() {
        // 3^7 mod 10 = 2187 mod 10 = 7
        assert_eq!(big(3).mod_pow(&big(7), &big(10)), big(7));
        // x^0 = 1
        assert_eq!(big(99).mod_pow(&BigUint::zero(), &big(1000)), big(1));
        // mod 1 → 0
        assert_eq!(big(5).mod_pow(&big(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn mod_pow_fermat_little_theorem() {
        // p prime, a^(p-1) ≡ 1 (mod p)
        let p = big(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(big(a).mod_pow(&p.sub(&BigUint::one()), &p), BigUint::one());
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big(48).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(13)), big(1));
        assert_eq!(big(0).gcd(&big(7)), big(7));
        assert_eq!(big(7).gcd(&big(0)), big(7));
    }

    #[test]
    fn mod_inverse_basics() {
        let inv = big(3).mod_inverse(&big(7)).unwrap();
        assert_eq!(inv, big(5)); // 3*5 = 15 ≡ 1 mod 7
        assert!(big(6).mod_inverse(&big(9)).is_none()); // gcd 3
        assert!(big(4).mod_inverse(&BigUint::one()).is_none());
    }

    #[test]
    fn mod_inverse_random_is_inverse() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = BigUint::from_u64(0xFFFF_FFFF_FFFF_FFC5); // large prime
        for _ in 0..50 {
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() {
                continue;
            }
            let inv = a.mod_inverse(&m).expect("prime modulus → inverse exists");
            assert_eq!(a.mod_mul(&inv, &m), BigUint::one());
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(99);
        let bound = BigUint::from_be_bytes(&[0x03, 0xFF, 0xFF]);
        for _ in 0..200 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_odd_with_bits_has_exact_bitlen() {
        let mut rng = StdRng::seed_from_u64(3);
        for bits in [2usize, 17, 64, 65, 512] {
            let v = BigUint::random_odd_with_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits);
            assert!(!v.is_even());
        }
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big(5) < big(6));
        assert!(BigUint::from_be_bytes(&[1, 0]) > BigUint::from_be_bytes(&[0xFF]));
        assert_eq!(big(42).cmp(&big(42)), Ordering::Equal);
    }

    #[test]
    fn debug_is_nonempty_hex() {
        assert_eq!(format!("{:?}", BigUint::zero()), "BigUint(0x0)");
        assert_eq!(format!("{:?}", big(0xABC)), "BigUint(0xabc)");
    }
}
