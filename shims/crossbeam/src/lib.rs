//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::unbounded` and `crossbeam::channel::
//! bounded` — the APIs the workspace uses — as multi-producer
//! multi-consumer queues over a `Mutex` + `Condvar` pair. Throughput is
//! lower than real crossbeam but semantics (cloneable receivers,
//! disconnect on last-sender/last-receiver drop, blocking backpressure on
//! full bounded queues) match.

#![forbid(unsafe_code)]

/// MPMC channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signaled when an item is enqueued or the last sender drops.
        ready: Condvar,
        /// Signaled when an item is dequeued or the last receiver drops
        /// (wakes senders blocked on a full bounded queue).
        space: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// `usize::MAX` for unbounded channels.
        capacity: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> core::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> core::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    /// Creates a bounded MPMC channel: [`Sender::send`] blocks while the
    /// queue holds `capacity` items, which is the backpressure the
    /// verification service relies on. A capacity of zero is rounded up
    /// to one (the shim has no rendezvous mode).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(capacity.max(1))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, blocking while a bounded queue is full.
        ///
        /// # Errors
        ///
        /// Returns the value if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.items.len() < state.capacity {
                    state.items.push_back(value);
                    drop(state);
                    self.shared.ready.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .space
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Enqueues `value` without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded queue is at capacity,
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.items.len() >= state.capacity {
                return Err(TrySendError::Full(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Returns an item if one is queued, without blocking on producers.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let item = state.items.pop_front().ok_or(RecvError)?;
            drop(state);
            self.shared.space.notify_one();
            Ok(item)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers += 1;
            drop(state);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            let disconnected = state.receivers == 0;
            drop(state);
            if disconnected {
                self.shared.space.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_drains_every_item() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen: Vec<usize> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(i) = rx.recv() {
                            got.push(i);
                        }
                        got
                    })
                })
                .collect();
            for h in handles {
                seen.extend(h.join().unwrap());
            }
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_errors_after_last_receiver_drops() {
        let (tx, rx) = channel::bounded::<u8>(4);
        drop(rx);
        assert_eq!(tx.send(1), Err(channel::SendError(1)));
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Disconnected(2)));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = channel::bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = channel::bounded::<usize>(1);
        tx.send(0).unwrap();
        std::thread::scope(|scope| {
            let sender = scope.spawn(|| {
                // Blocks until the main thread drains the first item.
                tx.send(1).unwrap();
            });
            assert_eq!(rx.recv(), Ok(0));
            sender.join().unwrap();
            assert_eq!(rx.recv(), Ok(1));
        });
    }

    #[test]
    fn bounded_backpressure_preserves_every_item() {
        let (tx, rx) = channel::bounded::<usize>(2);
        std::thread::scope(|scope| {
            for base in [0usize, 100] {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        tx.send(base + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut seen = Vec::new();
            while let Ok(i) = rx.recv() {
                seen.push(i);
            }
            seen.sort_unstable();
            let expected: Vec<usize> = (0..50).chain(100..150).collect();
            assert_eq!(seen, expected);
        });
    }
}
