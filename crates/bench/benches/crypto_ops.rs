//! Criterion benchmarks for the crypto substrate: the real host-CPU cost
//! of the primitives the trusted path executes (supports E4's claim that
//! server-side verification is cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use utp_crypto::hmac::hmac_sha256;
use utp_crypto::rsa::RsaKeyPair;
use utp_crypto::sha1::Sha1;
use utp_crypto::sha256::Sha256;

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, d| {
            b.iter(|| Sha1::digest(d))
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| Sha256::digest(d))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0x5Au8; 512];
    c.bench_function("hmac_sha256_512B", |b| {
        b.iter(|| hmac_sha256(b"key material", &data))
    });
}

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa");
    group.sample_size(20);
    for bits in [512usize, 1024] {
        let key = RsaKeyPair::generate(bits, 42);
        let sig = key.sign_pkcs1_sha1(b"quote info").unwrap();
        group.bench_function(BenchmarkId::new("sign_sha1", bits), |b| {
            b.iter(|| key.sign_pkcs1_sha1(b"quote info").unwrap())
        });
        group.bench_function(BenchmarkId::new("verify_sha1", bits), |b| {
            b.iter(|| key.public().verify_pkcs1_sha1(b"quote info", &sig))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashes, bench_hmac, bench_rsa);
criterion_main!(benches);
