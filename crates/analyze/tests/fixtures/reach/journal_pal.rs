// Fed as `crates/tpm/src/persist.rs` (a TCB file). It names the
// settlement journal, so the call resolves cross-crate — a PAL that
// depends on disk is exactly what the explicit tcb-reachability
// journal gate denies, and the import itself breaks the TCB boundary.
use utp_journal::append_record;
pub fn quote_then_persist() {
    append_record();
}
