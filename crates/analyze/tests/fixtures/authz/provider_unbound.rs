//! Revert-fixture for PR 7's first provider bug: the evidence-order
//! binding pre-check removed. Evidence is cryptographically verified
//! but never bound to the order it settles, so evidence confirming
//! order A delivered against order B would debit B on A's approval.
//! The authorization-flow pass must deny both settlement sinks for the
//! missing `order-bound` capability.

pub fn submit_unbound(
    store: &mut Store,
    verifier: &Verifier,
    order_id: u64,
    evidence: &Evidence,
    now: Duration,
) -> Result<Receipt, VerifyError> {
    let verified = verifier.verify(evidence, now)?;
    store.try_settle(order_id);
    Ok(Receipt {
        order_id,
        attempts: verified.attempts,
    })
}
