// Fed as `crates/server/src/journal_leak.rs`. Key material passed into
// a settlement-journal append: the WAL frames it byte-for-byte onto the
// (simulated) disk, where it outlives the process and any zeroization.
// The rule is workspace-wide — this file is outside the key crates. The
// `JournalRecord::`-qualified path segment names the record shape and
// must not trip the scan on its own.
pub fn persist_session(session_key: &[u8], journal: &Journal) {
    journal.append_record(&JournalRecord::Settle(session_key));
}
