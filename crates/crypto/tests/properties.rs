//! Property-based tests for the crypto substrate: algebraic laws for
//! `BigUint`, digest/HMAC invariants, and RSA roundtrips.

use proptest::prelude::*;
use utp_crypto::bigint::BigUint;
use utp_crypto::hmac::{hmac_sha1, hmac_sha256};
use utp_crypto::rsa::RsaKeyPair;
use utp_crypto::sha1::Sha1;
use utp_crypto::sha256::Sha256;

fn biguint_strategy() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(|v| BigUint::from_be_bytes(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates(a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn add_then_sub_is_identity(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_commutes(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes_over_add(
        a in biguint_strategy(), b in biguint_strategy(), c in biguint_strategy()
    ) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn div_rem_reconstructs(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn byte_roundtrip(a in biguint_strategy()) {
        prop_assert_eq!(BigUint::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in biguint_strategy(), s in 0usize..96) {
        let two_s = BigUint::one().shl(s);
        prop_assert_eq!(a.shl(s), a.mul(&two_s));
    }

    #[test]
    fn mod_pow_add_law(a in biguint_strategy(), x in 0u64..64, y in 0u64..64) {
        // a^(x+y) == a^x * a^y (mod m)
        let m = BigUint::from_u64(1_000_000_007);
        let ax = a.mod_pow(&BigUint::from_u64(x), &m);
        let ay = a.mod_pow(&BigUint::from_u64(y), &m);
        let axy = a.mod_pow(&BigUint::from_u64(x + y), &m);
        prop_assert_eq!(axy, ax.mod_mul(&ay, &m));
    }

    #[test]
    fn gcd_divides_both(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn sha1_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let d1 = Sha1::digest(&data);
        let d2 = Sha1::digest(&data);
        prop_assert_eq!(d1, d2);
        let mut flipped = data.clone();
        if !flipped.is_empty() {
            flipped[0] ^= 1;
            prop_assert_ne!(Sha1::digest(&flipped), d1);
        }
    }

    #[test]
    fn sha256_streaming_split_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512
    ) {
        let split = split.min(data.len());
        let mut ctx = Sha256::new();
        ctx.update(&data[..split]);
        ctx.update(&data[split..]);
        prop_assert_eq!(ctx.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn hmac_key_separation(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        k2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..128)
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        prop_assert_ne!(hmac_sha1(&k1, &msg), hmac_sha1(&k2, &msg));
    }
}

proptest! {
    // RSA cases are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rsa_sign_verify_any_message(msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        let kp = RsaKeyPair::generate(512, 99);
        let sig = kp.sign_pkcs1_sha256(&msg).unwrap();
        prop_assert!(kp.public().verify_pkcs1_sha256(&msg, &sig));
        let mut other = msg.clone();
        other.push(0);
        prop_assert!(!kp.public().verify_pkcs1_sha256(&other, &sig));
    }

    #[test]
    fn rsa_encrypt_decrypt_any_short_message(
        msg in proptest::collection::vec(any::<u8>(), 0..53),
        seed in any::<u64>()
    ) {
        use rand::SeedableRng;
        let kp = RsaKeyPair::generate(512, 100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = kp.public().encrypt_pkcs1(&mut rng, &msg).unwrap();
        prop_assert_eq!(kp.decrypt_pkcs1(&ct).unwrap(), msg);
    }
}
