//! Fleet-simulation smoke gate: runs a lossy 2k-client fleet scenario
//! (replay pressure, admission sheds) twice and asserts the
//! [`FleetReport`] digest **and** the canonical E13-style artifact are
//! byte-identical across runs, then checks the terminal-state
//! invariants. Writes the digest and both artifact halves to
//! `target/fleet/` for CI artifact upload.
//!
//! Run: `cargo run --release -p utp-bench --bin fleet_smoke` (pass
//! `--nightly` for the 1M-client flash-crowd run under a time budget).
//!
//! [`FleetReport`]: utp_netsim::FleetReport

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use utp_netsim::{
    AdmissionConfig, ArrivalCurve, FleetReport, LinkConfig, LinkProfile, Scenario, Topology,
};

/// The smoke scenario: 8 hubs × 250 clients under 12% loss with
/// reordering, arriving at twice the pool's capacity (2000/s offered
/// against 2 workers × 2 ms verify = 1000/s), so both replay and
/// admission-shed paths fire.
fn smoke_scenario(seed: u64) -> Scenario {
    let core = LinkProfile::clean(LinkConfig::fixed_rtt_bw(
        Duration::from_millis(4),
        50_000_000,
    ));
    let leaf = LinkProfile::clean(LinkConfig::broadband())
        .with_loss_ppm(120_000)
        .with_reorder(50_000, Duration::from_millis(30));
    let topo = Topology::two_tier(8, 250, core, leaf);
    let mut sc = Scenario::new(topo, ArrivalCurve::Steady, Duration::from_secs(1), seed);
    sc.provider.workers = 2;
    sc.provider.verify_cost = Duration::from_millis(2);
    sc.provider.queue_limit = 256;
    sc.provider.admission = Some(AdmissionConfig::for_service_time(
        64,
        Duration::from_millis(1),
    ));
    sc.retry.timeout = Duration::from_millis(300);
    sc.tag_run("fleet-smoke");
    sc
}

/// The nightly scenario: 1M clients, flash crowd (half the fleet
/// surges in a tenth of the horizon), modest loss, admission on.
fn nightly_scenario(seed: u64) -> Scenario {
    let core = LinkProfile::clean(LinkConfig::fixed_rtt_bw(
        Duration::from_millis(4),
        50_000_000,
    ));
    let leaf = LinkProfile::clean(LinkConfig::broadband()).with_loss_ppm(20_000);
    let topo = Topology::two_tier(100, 10_000, core, leaf);
    let mut sc = Scenario::new(
        topo,
        ArrivalCurve::FlashCrowd {
            surge_fraction: 0.5,
            surge_at: Duration::from_secs(16),
            surge_width: Duration::from_secs(4),
        },
        Duration::from_secs(40),
        seed,
    );
    sc.provider.workers = 4;
    sc.provider.verify_cost = Duration::from_micros(120);
    sc.provider.queue_limit = 4_096;
    sc.provider.admission = Some(AdmissionConfig::for_service_time(
        256,
        Duration::from_micros(30),
    ));
    sc.tag_run("fleet-nightly");
    sc
}

/// Canonical artifact for the byte-identity check: the report's full
/// `fleet.*` metric export, snapshotted at virtual drain time.
fn canonical_artifact(report: &FleetReport, config: &str) -> utp_obs::Artifact {
    let registry = utp_obs::MetricsRegistry::new();
    report.export_metrics(&registry, &[("run", "smoke")]);
    let mut artifact = utp_obs::Artifact::new("FLEET_SMOKE", utp_obs::Class::Virtual, config);
    registry.snapshot(report.makespan).append_to(&mut artifact);
    artifact
}

fn invariant_failures(report: &FleetReport) -> Vec<String> {
    let mut failures = Vec::new();
    if report.settled + report.rejected + report.gave_up + report.abandoned != report.placed {
        failures.push(format!(
            "terminal states do not partition the fleet: {} + {} + {} + {} != {}",
            report.settled, report.rejected, report.gave_up, report.abandoned, report.placed
        ));
    }
    if report.verify_jobs < report.settled + report.duplicate_settle_attempts {
        failures.push("settles outnumber verifications".to_string());
    }
    if report.placed != report.fleet {
        failures.push(format!(
            "every client must place exactly one order: {} of {}",
            report.placed, report.fleet
        ));
    }
    failures
}

fn main() -> ExitCode {
    let nightly = std::env::args().any(|a| a == "--nightly");
    // Nightly budget: the 1M flash crowd must simulate inside 10
    // minutes of host time or the simulator has regressed.
    let budget = Duration::from_secs(600);

    let config = "hubs=8 per_hub=250 loss=120000ppm verify=2ms queue=64 seed=4242";
    let report_a = smoke_scenario(4242).run();
    let report_b = smoke_scenario(4242).run();
    let digest = report_a.digest();
    if digest != report_b.digest() {
        eprintln!("fleet smoke FAILED: report digests diverge across identical runs");
        for (i, (la, lb)) in digest.lines().zip(report_b.digest().lines()).enumerate() {
            if la != lb {
                eprintln!(
                    "first differing line {}:\n  run 1: {la}\n  run 2: {lb}",
                    i + 1
                );
                break;
            }
        }
        return ExitCode::FAILURE;
    }
    let artifact_a = canonical_artifact(&report_a, config);
    let artifact_b = canonical_artifact(&report_b, config);
    if artifact_a.to_json() != artifact_b.to_json() {
        eprintln!("fleet smoke FAILED: canonical artifacts diverge across identical runs");
        return ExitCode::FAILURE;
    }
    let failures = invariant_failures(&report_a);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("fleet smoke FAILED: {f}");
        }
        return ExitCode::FAILURE;
    }
    if report_a.replays_sent == 0 || report_a.shed_admission == 0 {
        eprintln!(
            "fleet smoke FAILED: the storm must exercise replays ({}) and sheds ({})",
            report_a.replays_sent, report_a.shed_admission
        );
        return ExitCode::FAILURE;
    }

    let mut nightly_note = String::new();
    if nightly {
        let start = Instant::now();
        let report = nightly_scenario(31337).run();
        let elapsed = start.elapsed();
        let failures = invariant_failures(&report);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("fleet nightly FAILED: {f}");
            }
            return ExitCode::FAILURE;
        }
        if elapsed > budget {
            eprintln!(
                "fleet nightly FAILED: 1M-client flash crowd took {:.1}s (budget {:.0}s)",
                elapsed.as_secs_f64(),
                budget.as_secs_f64()
            );
            return ExitCode::FAILURE;
        }
        let _ = write!(
            nightly_note,
            "; nightly: 1M clients / {} events in {:.1}s host ({:.0} events/s), \
             goodput {:.0}/s, p999 {:.0} ms, shed rate {:.1}%",
            report.events_processed,
            elapsed.as_secs_f64(),
            report.events_processed as f64 / elapsed.as_secs_f64().max(1e-9),
            report.goodput_per_sec(),
            report.latency.p999().as_secs_f64() * 1e3,
            report.shed_rate() * 100.0,
        );
    }

    if let Err(e) = fs::create_dir_all("target/fleet")
        .and_then(|()| fs::write("target/fleet/fleet_smoke_digest.txt", &digest))
        .and_then(|()| fs::write("target/fleet/FLEET_SMOKE.json", artifact_a.to_json()))
    {
        eprintln!("fleet smoke FAILED: cannot write target/fleet artifacts: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "fleet smoke OK: 2000 clients / {} events byte-identical across 2 runs \
         ({} replays, {} sheds, {} settled); artifacts in target/fleet/{}",
        report_a.events_processed,
        report_a.replays_sent,
        report_a.shed_admission,
        report_a.settled,
        nightly_note
    );
    ExitCode::SUCCESS
}
