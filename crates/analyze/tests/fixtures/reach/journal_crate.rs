// Fed as `crates/journal/src/lib.rs`: the settlement journal itself.
// Reachability from a TCB entry point is denied by the explicit journal
// gate regardless of any declared category.
#![forbid(unsafe_code)]
pub fn append_record() {}
