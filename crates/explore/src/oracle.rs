//! The invariant oracle: the paper's server-side guarantees as
//! executable checks over [`StateView`]s.
//!
//! Four invariants, checked in a fixed order after every action:
//!
//! 1. **no-unauthorized-settle** — every confirmed order's transaction
//!    digest is one a human actually approved in a PAL run. The
//!    adversary holds tampered tokens, rogue certificates, and other
//!    orders' evidence; none of it may mint a confirmation for a
//!    transaction the human never saw.
//! 2. **balance-conservation** — each account's balance equals its
//!    opening balance minus the sum of its confirmed orders, and every
//!    confirmed order's challenge nonce is in the consumed set
//!    (at-most-once settlement per nonce: a replayed or rolled-back
//!    nonce can never pay twice).
//! 3. **audit-append-only** — across non-crash actions the audit log
//!    only grows by appending; across a crash it may shrink only to a
//!    prefix of what it was (recovery cannot reorder or rewrite
//!    history, only lose an un-synced tail).
//! 4. **recovery-matches-durable** — the live state equals the pure
//!    replay of its own durable bytes. Because the provider journals
//!    and syncs before acknowledging any decision, this can be checked
//!    after *every* action, not just crashes: recovery never invents
//!    history and never forgets an acknowledged decision.

use std::collections::{HashMap, HashSet};

use crate::scenario::Scenario;
use crate::sut::StateView;

/// A violated invariant with enough detail to debug the counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name (`no-unauthorized-settle`,
    /// `balance-conservation`, `audit-append-only`,
    /// `recovery-matches-durable`).
    pub invariant: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
}

/// Number of invariants [`Oracle::check`] evaluates per call.
pub const INVARIANT_COUNT: u64 = 4;

/// Per-branch invariant state. Cloned alongside the system on every
/// fork because the audit-prefix truth evolves per timeline.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Opening balance per account, captured at the branch point.
    opening: Vec<(String, i64)>,
    /// Transaction digests a human approved during the prologue.
    approved: HashSet<[u8; 20]>,
    /// order id → (amount, challenge nonce) from the prologue.
    orders: HashMap<u64, (u64, [u8; 20])>,
    /// The audit history this branch has already accepted as truth.
    truth_audit_len: usize,
    truth_audit: Vec<crate::sut::AuditView>,
}

impl Oracle {
    /// Builds the oracle from the scenario and the branch-point view.
    pub fn new(scenario: &Scenario, initial: &StateView) -> Self {
        let approved = scenario.orders.iter().map(|o| o.tx_digest).collect();
        let orders = scenario
            .orders
            .iter()
            .map(|o| (o.order_id, (o.amount_cents, o.nonce)))
            .collect();
        Oracle {
            opening: initial.accounts.clone(),
            approved,
            orders,
            truth_audit_len: initial.audit.len(),
            truth_audit: initial.audit.clone(),
        }
    }

    /// Checks all four invariants against `view`; `crashed` selects the
    /// audit-prefix direction for the action that produced it.
    pub fn check(&mut self, view: &StateView, crashed: bool) -> Result<(), Violation> {
        self.check_unauthorized_settle(view)?;
        self.check_balance_conservation(view)?;
        self.check_audit_append_only(view, crashed)?;
        self.check_recovery_matches_durable(view)?;
        Ok(())
    }

    fn check_unauthorized_settle(&self, view: &StateView) -> Result<(), Violation> {
        for order in &view.orders {
            if order.status == "Confirmed" && !self.approved.contains(&order.tx_digest) {
                return Err(Violation {
                    invariant: "no-unauthorized-settle",
                    detail: format!(
                        "order {} confirmed but its transaction digest was never human-approved",
                        order.id
                    ),
                });
            }
        }
        Ok(())
    }

    fn check_balance_conservation(&self, view: &StateView) -> Result<(), Violation> {
        let used: HashSet<&[u8; 20]> = view.used.iter().collect();
        let mut debits: HashMap<&str, i64> = HashMap::new();
        for order in &view.orders {
            if order.status != "Confirmed" {
                continue;
            }
            *debits.entry(order.account.as_str()).or_insert(0) += order.amount_cents as i64;
            if let Some((_, nonce)) = self.orders.get(&order.id) {
                if !used.contains(nonce) {
                    return Err(Violation {
                        invariant: "balance-conservation",
                        detail: format!(
                            "order {} confirmed but its challenge nonce is not consumed",
                            order.id
                        ),
                    });
                }
            }
        }
        for (name, opening) in &self.opening {
            let debit = debits.get(name.as_str()).copied().unwrap_or(0);
            let expected = opening - debit;
            let actual = view
                .accounts
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| *b);
            if actual != Some(expected) {
                return Err(Violation {
                    invariant: "balance-conservation",
                    detail: format!(
                        "account {name}: balance {actual:?} != opening {opening} - confirmed debits {debit}"
                    ),
                });
            }
        }
        Ok(())
    }

    fn check_audit_append_only(
        &mut self,
        view: &StateView,
        crashed: bool,
    ) -> Result<(), Violation> {
        let (prefix, whole, direction) = if crashed {
            // A crash may lose an un-synced tail, never synced history.
            (
                &view.audit,
                &self.truth_audit,
                "crash rewrote audit history",
            )
        } else {
            (
                &self.truth_audit,
                &view.audit,
                "audit log shrank or was rewritten without a crash",
            )
        };
        let is_prefix = prefix.len() <= whole.len() && whole[..prefix.len()] == prefix[..];
        if !is_prefix {
            return Err(Violation {
                invariant: "audit-append-only",
                detail: format!(
                    "{direction} (had {} entries, now {})",
                    self.truth_audit_len,
                    view.audit.len()
                ),
            });
        }
        self.truth_audit = view.audit.clone();
        self.truth_audit_len = view.audit.len();
        Ok(())
    }

    fn check_recovery_matches_durable(&self, view: &StateView) -> Result<(), Violation> {
        let replayed = view.replay_durable();
        if let Some(field) = view.semantic_diff(&replayed) {
            return Err(Violation {
                invariant: "recovery-matches-durable",
                detail: format!(
                    "live state diverges from replay of its own durable bytes in `{field}`"
                ),
            });
        }
        Ok(())
    }
}
