//! Lock-free metric cells and latency/throughput summaries.
//!
//! These primitives began life in `utp-server::metrics` next to the
//! sharded verification service; they moved here so the journal, the
//! explorer, and the bench harness can share one vocabulary. The
//! server re-exports them, so `utp_server::metrics::Counter` remains a
//! valid path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing, thread-safe event counter.
///
/// Hot paths bump these with relaxed ordering — counts are monitoring
/// data, not synchronization; a snapshot taken while workers run may
/// lag individual increments but never loses one.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` in one atomic step (batch completions).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one and returns the pre-increment value — an atomic sequence
    /// allocator (submission sequence numbers in trace records).
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A thread-safe instantaneous-level gauge (queue depth, in-flight
/// jobs) with a persistent high-watermark. Same relaxed-ordering
/// contract as [`Counter`]: monitoring data, not synchronization.
///
/// The watermark records the highest level the gauge ever reached and
/// — unlike the instantaneous level, which is usually back to zero by
/// the time anyone looks — *survives snapshot export*: reading it does
/// not clear it. Collectors that want per-interval peaks call
/// [`Gauge::reset_watermark`] explicitly after recording a snapshot.
#[derive(Debug, Default)]
pub struct Gauge {
    level: AtomicU64,
    hwm: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            level: AtomicU64::new(0),
            hwm: AtomicU64::new(0),
        }
    }

    /// Sets the level outright.
    pub fn set(&self, v: u64) {
        self.level.store(v, Ordering::Relaxed);
        self.hwm.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.level.load(Ordering::Relaxed)
    }

    /// Highest level observed since creation (or since the last
    /// explicit [`Gauge::reset_watermark`]). Never lower than the
    /// current level.
    pub fn watermark(&self) -> u64 {
        self.hwm
            .load(Ordering::Relaxed)
            .max(self.level.load(Ordering::Relaxed))
    }

    /// Restarts watermark tracking from the current level. Snapshot
    /// export never calls this implicitly — peaks are only discarded
    /// on request, so a queue-depth spike is visible to every reader
    /// that comes later, not just the first one.
    pub fn reset_watermark(&self) {
        self.hwm
            .store(self.level.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Raises the level by one.
    pub fn incr(&self) {
        let now = self.level.fetch_add(1, Ordering::Relaxed) + 1;
        self.hwm.fetch_max(now, Ordering::Relaxed);
    }

    /// Lowers the level by one, saturating at zero (a decrement racing
    /// a `set(0)` must not wrap to `u64::MAX`).
    pub fn decr(&self) {
        let _ = self
            .level
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }
}

/// Summary statistics over a set of duration samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Minimum.
    pub min: Duration,
    /// Median (p50).
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// 99.9th percentile — the tail the fleet-scale SLOs are written
    /// against; equals `max` until the sample set is large enough to
    /// resolve it.
    pub p999: Duration,
    /// Maximum.
    pub max: Duration,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample set.
    pub fn of(samples: &[Duration]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        let pct = |p: f64| -> Duration {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        Some(Summary {
            count: sorted.len(),
            mean: total / sorted.len() as u32,
            min: sorted[0],
            p50: pct(0.50),
            p90: pct(0.90),
            p95: pct(0.95),
            p99: pct(0.99),
            p999: pct(0.999),
            // The emptiness check above already ran; index the checked
            // sorted slice instead of re-proving non-emptiness.
            max: sorted[sorted.len() - 1],
        })
    }

    /// Renders as `mean / p50 / p90 / p95 / p99` in milliseconds, the
    /// format the experiment tables print.
    pub fn to_ms_row(&self) -> String {
        format!(
            "{:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            self.mean.as_secs_f64() * 1e3,
            self.p50.as_secs_f64() * 1e3,
            self.p90.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3
        )
    }
}

/// Throughput in operations per second given a batch size and elapsed time.
pub fn throughput(ops: usize, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    ops as f64 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_samples_give_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[ms(10)]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, ms(10));
        assert_eq!(s.min, ms(10));
        assert_eq!(s.p50, ms(10));
        assert_eq!(s.p90, ms(10));
        assert_eq!(s.p95, ms(10));
        assert_eq!(s.p99, ms(10));
        assert_eq!(s.p999, ms(10));
        assert_eq!(s.max, ms(10));
    }

    #[test]
    fn percentiles_are_order_invariant() {
        let a = Summary::of(&[ms(1), ms(2), ms(3), ms(4), ms(100)]).unwrap();
        let b = Summary::of(&[ms(100), ms(3), ms(1), ms(4), ms(2)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.p50, ms(3));
        assert_eq!(a.max, ms(100));
        assert_eq!(a.min, ms(1));
        assert_eq!(a.mean, ms(22));
    }

    #[test]
    fn p95_tracks_tail() {
        let mut samples = vec![ms(10); 99];
        samples.push(ms(1000));
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.p50, ms(10));
        assert_eq!(s.p90, ms(10));
        assert!(s.p95 <= ms(1000));
        // Nearest-rank rounding puts p99 of 100 samples at index 98,
        // one short of the single outlier; max still reports it.
        assert_eq!(s.p99, ms(10));
        assert_eq!(s.max, ms(1000));
    }

    #[test]
    fn p99_lands_on_tail_with_enough_samples() {
        // Index round(999 * 0.99) = 989 must fall inside the tail block.
        let mut samples = vec![ms(10); 989];
        samples.extend(std::iter::repeat_n(ms(1000), 11));
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.p99, ms(1000));
        assert_eq!(s.p90, ms(10));
        // p999 of 1000 samples indexes round(999 * 0.999) = 998 — inside
        // the 11-sample tail block.
        assert_eq!(s.p999, ms(1000));
    }

    #[test]
    fn p999_needs_a_thousand_samples_to_leave_the_body() {
        let mut samples = vec![ms(10); 999];
        samples.push(ms(1000));
        let s = Summary::of(&samples).unwrap();
        // round(999 * 0.999) = 998: one short of the single outlier.
        assert_eq!(s.p999, ms(10));
        assert_eq!(s.max, ms(1000));
    }

    #[test]
    fn throughput_computes_ops_per_sec() {
        assert!((throughput(100, Duration::from_secs(2)) - 50.0).abs() < 1e-9);
        assert!(throughput(1, Duration::ZERO).is_infinite());
    }

    #[test]
    fn ms_row_is_fixed_width() {
        let s = Summary::of(&[ms(1), ms(2)]).unwrap();
        let row = s.to_ms_row();
        assert_eq!(row.split_whitespace().count(), 5);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        c.add(58);
        assert_eq!(c.get(), 4058);
        assert_eq!(c.next(), 4058, "next returns the pre-increment value");
        assert_eq!(c.get(), 4059);
    }

    #[test]
    fn gauge_is_thread_safe() {
        let g = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        g.incr();
                        g.decr();
                        g.incr();
                    }
                });
            }
        });
        assert_eq!(g.get(), 4000, "balanced incr/decr leave the net level");
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(0);
        g.decr();
        assert_eq!(g.get(), 0, "decr saturates at zero");
    }

    #[test]
    fn gauge_watermark_survives_reads_and_resets_explicitly() {
        let g = Gauge::new();
        g.incr();
        g.incr();
        g.incr();
        g.decr();
        g.decr();
        assert_eq!(g.get(), 1);
        assert_eq!(g.watermark(), 3, "peak level retained after drops");
        assert_eq!(g.watermark(), 3, "reading the watermark is non-destructive");
        g.reset_watermark();
        assert_eq!(g.watermark(), 1, "reset restarts tracking at the level");
        g.set(9);
        g.set(2);
        assert_eq!(g.watermark(), 9, "set() raises the watermark too");
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn gauge_watermark_never_below_level() {
        let g = Gauge::new();
        g.set(5);
        g.reset_watermark();
        assert_eq!(g.watermark(), 5);
        g.incr();
        assert_eq!(g.watermark(), 6);
    }
}
