//! Typed recovery: replay a snapshot plus a WAL into [`RecoveredState`].
//!
//! Replay is a pure function of bytes — no device, no clock — so the
//! crash-point sweep and the corruption fuzzers can drive it directly.
//! Its apply semantics mirror the live settlement path exactly (which
//! outcomes consume a nonce, which reject an order, which merely leave
//! an audit trail), so a recovered process is indistinguishable from
//! one that never crashed, up to the durable prefix.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use utp_core::protocol::{Transaction, TransactionRequest};
use utp_core::verifier::{PendingNonce, VerifyError};

use crate::record::{scan, JournalRecord, ScanEnd, NO_ORDER};
use crate::snapshot::decode_snapshot;

/// Recovered status of one order (mirrors the store's `OrderStatus`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveredStatus {
    /// Challenge issued, no decision journaled.
    Pending,
    /// A settle decision accepted the evidence; the account was debited.
    Confirmed,
    /// A terminal settle decision rejected the order.
    Rejected(VerifyError),
}

/// One recovered order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredOrder {
    /// Account the order debits.
    pub account: String,
    /// The transaction under confirmation.
    pub transaction: Transaction,
    /// Current status after replay.
    pub status: RecoveredStatus,
}

/// One recovered audit decision (mirrors the audit log's `AuditEntry`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredDecision {
    /// Virtual time of the decision.
    pub at: Duration,
    /// Order the decision concerned, if tracked.
    pub order_id: Option<u64>,
    /// The decision.
    pub outcome: Result<(), VerifyError>,
}

/// Everything the settlement path must remember across a crash,
/// rebuilt from the durable prefix. Deterministically ordered
/// (`BTreeMap`/`BTreeSet`) so snapshots and state summaries are
/// byte-stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredState {
    /// Account balances in cents.
    pub accounts: BTreeMap<String, i64>,
    /// Orders by id.
    pub orders: BTreeMap<u64, RecoveredOrder>,
    /// Outstanding (issued, unsettled) nonces.
    pub pending: BTreeMap<[u8; 20], PendingNonce>,
    /// Consumed nonces — the replay-protection set.
    pub used: BTreeSet<[u8; 20]>,
    /// Full decision history, oldest first.
    pub audit: Vec<RecoveredDecision>,
    /// Next order id the store may hand out.
    pub next_order_id: u64,
    /// Highest transaction id seen (restart seeds its counter above it).
    pub max_tx_id: u64,
    /// Highest journal sequence number folded into this state.
    pub last_seq: u64,
}

impl RecoveredState {
    /// Applies one record. Records with `seq <= self.last_seq` are
    /// already folded in (snapshot overlap) and must be skipped by the
    /// caller.
    fn apply(&mut self, seq: u64, record: &JournalRecord) {
        self.last_seq = seq;
        match record {
            JournalRecord::OpenAccount {
                name,
                balance_cents,
            } => {
                self.accounts.insert(name.clone(), *balance_cents);
            }
            JournalRecord::CreateOrder {
                order_id,
                account,
                issued_at,
                request_bytes,
            } => {
                // The scanner validated the request bytes at decode time.
                let Ok(request) = TransactionRequest::from_bytes(request_bytes) else {
                    return;
                };
                self.next_order_id = self.next_order_id.max(order_id + 1);
                self.max_tx_id = self.max_tx_id.max(request.transaction.id);
                self.pending.insert(
                    *request.nonce.as_bytes(),
                    PendingNonce {
                        request_bytes: request_bytes.clone(),
                        transaction: request.transaction.clone(),
                        issued_at: *issued_at,
                    },
                );
                self.orders.insert(
                    *order_id,
                    RecoveredOrder {
                        account: account.clone(),
                        transaction: request.transaction,
                        status: RecoveredStatus::Pending,
                    },
                );
            }
            JournalRecord::Settle {
                order_id,
                nonce,
                at,
                outcome,
            } => {
                self.audit.push(RecoveredDecision {
                    at: *at,
                    order_id: (*order_id != NO_ORDER).then_some(*order_id),
                    outcome: *outcome,
                });
                // Nonce lifecycle, mirroring NonceLedger::settle and the
                // serial verifier: accepted and human-rejected evidence
                // consume the nonce; expiry drops the pending entry;
                // crypto failures leave it intact (retryable).
                match outcome {
                    Ok(()) | Err(VerifyError::NotConfirmed(_)) => {
                        self.pending.remove(nonce);
                        self.used.insert(*nonce);
                    }
                    Err(VerifyError::Expired) => {
                        self.pending.remove(nonce);
                    }
                    Err(_) => {}
                }
                // Order lifecycle, mirroring ServiceProvider::submit_evidence:
                // Ok settles (debit + confirm); terminal errors reject;
                // retryable errors leave the order pending.
                let Some(order) = self.orders.get_mut(order_id) else {
                    return;
                };
                match outcome {
                    Ok(()) => {
                        order.status = RecoveredStatus::Confirmed;
                        if let Some(balance) = self.accounts.get_mut(&order.account) {
                            *balance -= order.transaction.amount_cents as i64;
                        }
                    }
                    Err(
                        e @ (VerifyError::NotConfirmed(_)
                        | VerifyError::Replayed
                        | VerifyError::Expired
                        | VerifyError::UntrustedPal
                        | VerifyError::BadQuote
                        | VerifyError::TokenMismatch
                        | VerifyError::BadCertificate),
                    ) => {
                        // Confirmed is sticky, mirroring Store::reject: a
                        // settled order keeps its debit, so a later
                        // terminal error cannot demote it.
                        if order.status != RecoveredStatus::Confirmed {
                            order.status = RecoveredStatus::Rejected(*e);
                        }
                    }
                    Err(_) => {}
                }
            }
        }
    }
}

/// Why replay of the log ended (re-export of the scan verdict plus a
/// snapshot-side failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogEnd {
    /// The log ended at a frame boundary.
    Clean,
    /// The log ended mid-frame or corrupt; the suffix was discarded.
    Torn(ScanEnd),
}

/// Accounting for one recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records folded into the state.
    pub records_applied: u64,
    /// Valid records skipped because the snapshot already covered them.
    pub records_skipped: u64,
    /// Settle decisions naming an order id the state had never seen.
    pub orphan_decisions: u64,
    /// How the log scan ended.
    pub log_end: LogEnd,
    /// Length of the valid log prefix in bytes (repair truncates here).
    pub valid_log_bytes: usize,
    /// Whether a snapshot seeded the state.
    pub snapshot_used: bool,
}

/// Replays `snapshot_bytes` (the snapshot device's durable contents;
/// empty slice for none) and `log_bytes` (the WAL device's durable
/// contents) into a [`RecoveredState`]. Pure, total, never panics: any
/// torn or corrupt suffix of either input is treated as a clean crash
/// at the last valid boundary.
pub fn replay_bytes(snapshot_bytes: &[u8], log_bytes: &[u8]) -> (RecoveredState, RecoveryReport) {
    let (mut state, snapshot_used) = match decode_snapshot(snapshot_bytes) {
        Some(s) => (s, true),
        None => (RecoveredState::default(), false),
    };
    let base_seq = state.last_seq;
    let scan = scan(log_bytes);
    let mut report = RecoveryReport {
        records_applied: 0,
        records_skipped: 0,
        orphan_decisions: 0,
        log_end: match scan.end {
            ScanEnd::Clean => LogEnd::Clean,
            other => LogEnd::Torn(other),
        },
        valid_log_bytes: scan.valid_len,
        snapshot_used,
    };
    for frame in &scan.frames {
        if frame.seq <= base_seq {
            report.records_skipped += 1;
            continue;
        }
        if let JournalRecord::Settle { order_id, .. } = &frame.record {
            if *order_id != NO_ORDER && !state.orders.contains_key(order_id) {
                report.orphan_decisions += 1;
            }
        }
        state.apply(frame.seq, &frame.record);
        report.records_applied += 1;
    }
    (state, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::encode_frame;
    use utp_core::protocol::ConfirmMode;
    use utp_crypto::sha1::Sha1Digest;

    fn request(tx_id: u64, nonce_byte: u8, amount: u64) -> TransactionRequest {
        TransactionRequest {
            transaction: Transaction::new(tx_id, "shop", amount, "EUR", "m"),
            nonce: Sha1Digest([nonce_byte; 20]),
            mode: ConfirmMode::PressEnter,
        }
    }

    fn log_of(records: &[JournalRecord]) -> Vec<u8> {
        let mut log = Vec::new();
        for (i, r) in records.iter().enumerate() {
            log.extend_from_slice(&encode_frame(i as u64 + 1, r));
        }
        log
    }

    fn sample_log() -> Vec<u8> {
        let req1 = request(1, 0x11, 500);
        let req2 = request(2, 0x22, 250);
        log_of(&[
            JournalRecord::OpenAccount {
                name: "alice".into(),
                balance_cents: 1_000,
            },
            JournalRecord::CreateOrder {
                order_id: 1,
                account: "alice".into(),
                issued_at: Duration::from_secs(1),
                request_bytes: req1.to_bytes(),
            },
            JournalRecord::CreateOrder {
                order_id: 2,
                account: "alice".into(),
                issued_at: Duration::from_secs(2),
                request_bytes: req2.to_bytes(),
            },
            JournalRecord::Settle {
                order_id: 1,
                nonce: [0x11; 20],
                at: Duration::from_secs(3),
                outcome: Ok(()),
            },
            JournalRecord::Settle {
                order_id: 2,
                nonce: [0x22; 20],
                at: Duration::from_secs(4),
                outcome: Err(VerifyError::Replayed),
            },
        ])
    }

    #[test]
    fn full_replay_rebuilds_balances_orders_and_ledger() {
        let (state, report) = replay_bytes(&[], &sample_log());
        assert_eq!(report.records_applied, 5);
        assert_eq!(report.log_end, LogEnd::Clean);
        assert!(!report.snapshot_used);
        assert_eq!(state.accounts["alice"], 500);
        assert_eq!(state.orders[&1].status, RecoveredStatus::Confirmed);
        assert_eq!(
            state.orders[&2].status,
            RecoveredStatus::Rejected(VerifyError::Replayed)
        );
        assert!(state.used.contains(&[0x11; 20]));
        // Replayed is a crypto-side failure: nonce 0x22 stays pending.
        assert!(state.pending.contains_key(&[0x22; 20]));
        assert_eq!(state.next_order_id, 3);
        assert_eq!(state.max_tx_id, 2);
        assert_eq!(state.audit.len(), 2);
        assert_eq!(state.last_seq, 5);
    }

    #[test]
    fn torn_suffix_is_a_clean_crash_at_the_last_boundary() {
        let log = sample_log();
        let boundaries = crate::record::frame_boundaries(&log);
        // Cut mid-way through the Ok settle frame.
        let cut = boundaries[4] - 3;
        let (state, report) = replay_bytes(&[], &log[..cut]);
        assert_eq!(report.records_applied, 3);
        assert!(matches!(report.log_end, LogEnd::Torn(_)));
        assert_eq!(report.valid_log_bytes, boundaries[3]);
        // The settle never happened: order pending, balance untouched.
        assert_eq!(state.orders[&1].status, RecoveredStatus::Pending);
        assert_eq!(state.accounts["alice"], 1_000);
        assert!(state.pending.contains_key(&[0x11; 20]));
        assert!(state.used.is_empty());
    }

    #[test]
    fn expired_drops_pending_without_consuming() {
        let req = request(1, 0x33, 100);
        let log = log_of(&[
            JournalRecord::CreateOrder {
                order_id: 1,
                account: "bob".into(),
                issued_at: Duration::from_secs(1),
                request_bytes: req.to_bytes(),
            },
            JournalRecord::Settle {
                order_id: 1,
                nonce: [0x33; 20],
                at: Duration::from_secs(400),
                outcome: Err(VerifyError::Expired),
            },
        ]);
        let (state, _) = replay_bytes(&[], &log);
        assert!(state.pending.is_empty());
        assert!(state.used.is_empty());
        assert_eq!(
            state.orders[&1].status,
            RecoveredStatus::Rejected(VerifyError::Expired)
        );
    }

    #[test]
    fn orphan_settles_are_counted_and_audited() {
        let log = log_of(&[JournalRecord::Settle {
            order_id: 42,
            nonce: [9; 20],
            at: Duration::from_secs(1),
            outcome: Ok(()),
        }]);
        let (state, report) = replay_bytes(&[], &log);
        assert_eq!(report.orphan_decisions, 1);
        assert_eq!(state.audit.len(), 1);
        assert!(state.orders.is_empty());
        // The nonce is still marked used — replay protection survives
        // even when the order record is gone.
        assert!(state.used.contains(&[9; 20]));
    }

    #[test]
    fn untracked_settle_has_no_order_in_audit() {
        let log = log_of(&[JournalRecord::Settle {
            order_id: NO_ORDER,
            nonce: [1; 20],
            at: Duration::from_secs(1),
            outcome: Err(VerifyError::UnknownNonce),
        }]);
        let (state, report) = replay_bytes(&[], &log);
        assert_eq!(report.orphan_decisions, 0);
        assert_eq!(state.audit[0].order_id, None);
        assert!(state.used.is_empty());
    }

    #[test]
    fn retryable_outcomes_leave_order_pending() {
        let req = request(1, 0x44, 100);
        for err in [
            VerifyError::MalformedEvidence,
            VerifyError::ServiceUnavailable,
        ] {
            let log = log_of(&[
                JournalRecord::CreateOrder {
                    order_id: 1,
                    account: "bob".into(),
                    issued_at: Duration::from_secs(1),
                    request_bytes: req.to_bytes(),
                },
                JournalRecord::Settle {
                    order_id: 1,
                    nonce: [0x44; 20],
                    at: Duration::from_secs(2),
                    outcome: Err(err),
                },
            ]);
            let (state, _) = replay_bytes(&[], &log);
            assert_eq!(state.orders[&1].status, RecoveredStatus::Pending, "{err:?}");
            assert!(state.pending.contains_key(&[0x44; 20]), "{err:?}");
        }
    }
}
