//! Sharded verification service demo: a provider attaches a
//! `VerifierService`, a fleet of confirmations floods it, a replay is
//! caught by the sharded nonce ledger, and the per-shard counters plus
//! cert-cache hit rate are printed at shutdown.
//!
//! Run with: `cargo run --example sharded_service`

use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::platform::machine::{Machine, MachineConfig};
use utp::server::provider::ServiceProvider;

fn main() {
    println!("== VerifierService: sharded settlement with backpressure ==\n");

    let ca = PrivacyCa::new(512, 41);
    let mut provider = ServiceProvider::new(ca.public_key().clone(), 42);
    provider.store_mut().open_account("alice", 1_000_000);
    provider.attach_service(4, 4);
    println!("service attached: 4 worker threads, 4 nonce shards\n");

    let mut machine = Machine::new(MachineConfig::fast_for_tests(43));
    let enrollment = ca.enroll(&mut machine);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);

    // A burst of orders, each confirmed on the trusted path and settled
    // through the service's bounded queue.
    let mut last_evidence = None;
    for i in 0..32u64 {
        let (order_id, request) =
            provider.place_order("alice", "bookshop", 100 + i, "EUR", "burst", machine.now());
        let mut human = ConfirmingHuman::new(Intent::approving(&request.transaction), 100 + i);
        let evidence = client
            .confirm(&mut machine, &request, &mut human)
            .expect("confirmation succeeds");
        provider
            .submit_evidence(order_id, &evidence, machine.now())
            .expect("genuine evidence settles");
        last_evidence = Some(evidence);
    }
    let (pending, confirmed, rejected) = provider.store().status_counts();
    println!("burst settled: {confirmed} confirmed, {pending} pending, {rejected} rejected");

    // Malware replays the last evidence against a fresh order: the
    // settlement shard already consumed that nonce.
    let (order_id, _) = provider.place_order("alice", "bookshop", 1, "EUR", "!", machine.now());
    let err = provider
        .submit_evidence(order_id, &last_evidence.expect("burst ran"), machine.now())
        .expect_err("replay must be rejected");
    println!("replay against order {order_id}: rejected ({err})\n");

    let stats = provider.detach_service().expect("service was attached");
    println!("per-shard settlement counters:");
    println!("  shard  registered  accepted  rejected  replayed");
    for (i, shard) in stats.shards.iter().enumerate() {
        println!(
            "  {:>5}  {:>10}  {:>8}  {:>8}  {:>8}",
            i, shard.registered, shard.accepted, shard.rejected, shard.replayed
        );
    }
    let totals = stats.totals();
    println!(
        "  total  {:>10}  {:>8}  {:>8}  {:>8}",
        totals.registered, totals.accepted, totals.rejected, totals.replayed
    );
    println!(
        "\ncert cache: {} hits / {} misses (hit rate {:.2})",
        stats.cert_cache_hits,
        stats.cert_cache_misses,
        stats.cert_cache_hit_rate()
    );
    println!("\nOne client fleet, one certificate: every repeat submission skipped");
    println!("the AIK revalidation and paid only the quote's RSA verify.");
}
