//! Prints the E12 tables (bounded adversarial exploration coverage and
//! seeded-bug detection).
use utp_bench::experiments::e12_explore as e12;

fn main() {
    let report = e12::run(&[1, 2, 3], 2_000);
    println!("{}", e12::render(&report));
    assert!(e12::clean(&report), "real stack must be violation-free");
}
