//! TPM command latency model.
//!
//! The paper's evaluation (like Flicker's, which it builds on) is dominated
//! by how long the physical TPM chip takes to execute privacy-sensitive
//! commands — a `TPM_Quote` is a 2048-bit RSA signature computed by a
//! ~33 MHz smartcard-class microcontroller and costs *hundreds of
//! milliseconds*. Since we replace the chip with software, we attach a
//! calibrated cost model: each command's modeled duration is
//! `base + per_byte * payload_len`, with per-vendor constants taken from
//! the published Flicker-era microbenchmarks (EuroSys'08, and the TPM
//! timing appendix of the Flicker technical report). Numbers are
//! approximations of that era's chips, and EXPERIMENTS.md flags them as
//! calibration inputs, not measurements of this code.

use std::fmt;
use std::time::Duration;

/// The TPM chip vendors modeled, matching the machines used in the
/// Flicker-era evaluations this paper's numbers derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VendorProfile {
    /// Broadcom BCM5752 (HP dc5750) — slowest quote of the era.
    Broadcom,
    /// Infineon v1.2 (Lenovo T60) — fastest quote of the era.
    Infineon,
    /// Atmel v1.2 (various desktops).
    Atmel,
    /// STMicroelectronics v1.2.
    StMicro,
    /// Zero-latency profile for unit tests.
    Instant,
}

impl VendorProfile {
    /// All real (non-test) profiles.
    pub fn all_real() -> [VendorProfile; 4] {
        [
            VendorProfile::Broadcom,
            VendorProfile::Infineon,
            VendorProfile::Atmel,
            VendorProfile::StMicro,
        ]
    }

    /// Human-readable chip name.
    pub fn name(self) -> &'static str {
        match self {
            VendorProfile::Broadcom => "Broadcom BCM5752",
            VendorProfile::Infineon => "Infineon v1.2",
            VendorProfile::Atmel => "Atmel v1.2",
            VendorProfile::StMicro => "ST Micro v1.2",
            VendorProfile::Instant => "instant (test)",
        }
    }
}

impl fmt::Display for VendorProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The command classes with distinct cost profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpmOp {
    /// `TPM_Extend` — one SHA-1 plus register update.
    Extend,
    /// `TPM_PCRRead`.
    PcrRead,
    /// `TPM_Quote` — an RSA private-key signature inside the chip.
    Quote,
    /// `TPM_Seal` — RSA + structure handling.
    Seal,
    /// `TPM_Unseal` — RSA decrypt + PCR policy check.
    Unseal,
    /// `TPM_GetRandom`.
    GetRandom,
    /// `TPM_IncrementCounter`.
    CounterIncrement,
    /// NV read/write.
    NvAccess,
    /// The locality-4 DRTM hash sequence (HASH_START/DATA/END).
    DrtmHash,
}

impl TpmOp {
    /// Stable lower-case command label, used as the `op` field of trace
    /// records and report rows.
    pub fn name(self) -> &'static str {
        match self {
            TpmOp::Extend => "extend",
            TpmOp::PcrRead => "pcr_read",
            TpmOp::Quote => "quote",
            TpmOp::Seal => "seal",
            TpmOp::Unseal => "unseal",
            TpmOp::GetRandom => "get_random",
            TpmOp::CounterIncrement => "counter_incr",
            TpmOp::NvAccess => "nv_access",
            TpmOp::DrtmHash => "drtm_hash",
        }
    }
}

/// Modeled latency for one op on one vendor's chip.
///
/// # Example
///
/// ```
/// use utp_tpm::timing::{cost, TpmOp, VendorProfile};
/// let quote = cost(VendorProfile::Infineon, TpmOp::Quote, 0);
/// let extend = cost(VendorProfile::Infineon, TpmOp::Extend, 20);
/// assert!(quote > 20 * extend); // quotes dominate, the paper's key fact
/// ```
pub fn cost(vendor: VendorProfile, op: TpmOp, payload_len: usize) -> Duration {
    if vendor == VendorProfile::Instant {
        return Duration::ZERO;
    }
    let (base_us, per_byte_ns): (u64, u64) = match (vendor, op) {
        // (base microseconds, per payload byte nanoseconds)
        (VendorProfile::Broadcom, TpmOp::Extend) => (27_000, 150),
        (VendorProfile::Broadcom, TpmOp::PcrRead) => (1_800, 50),
        (VendorProfile::Broadcom, TpmOp::Quote) => (972_000, 200),
        (VendorProfile::Broadcom, TpmOp::Seal) => (426_000, 400),
        (VendorProfile::Broadcom, TpmOp::Unseal) => (647_000, 400),
        (VendorProfile::Broadcom, TpmOp::GetRandom) => (35_000, 900),
        (VendorProfile::Broadcom, TpmOp::CounterIncrement) => (38_000, 0),
        (VendorProfile::Broadcom, TpmOp::NvAccess) => (22_000, 700),
        (VendorProfile::Broadcom, TpmOp::DrtmHash) => (14_000, 260),

        (VendorProfile::Infineon, TpmOp::Extend) => (12_000, 120),
        (VendorProfile::Infineon, TpmOp::PcrRead) => (1_200, 40),
        (VendorProfile::Infineon, TpmOp::Quote) => (331_000, 180),
        (VendorProfile::Infineon, TpmOp::Seal) => (180_000, 350),
        (VendorProfile::Infineon, TpmOp::Unseal) => (290_000, 350),
        (VendorProfile::Infineon, TpmOp::GetRandom) => (15_000, 700),
        (VendorProfile::Infineon, TpmOp::CounterIncrement) => (21_000, 0),
        (VendorProfile::Infineon, TpmOp::NvAccess) => (13_000, 500),
        (VendorProfile::Infineon, TpmOp::DrtmHash) => (9_000, 210),

        (VendorProfile::Atmel, TpmOp::Extend) => (6_000, 130),
        (VendorProfile::Atmel, TpmOp::PcrRead) => (1_500, 45),
        (VendorProfile::Atmel, TpmOp::Quote) => (798_000, 190),
        (VendorProfile::Atmel, TpmOp::Seal) => (500_000, 380),
        (VendorProfile::Atmel, TpmOp::Unseal) => (700_000, 380),
        (VendorProfile::Atmel, TpmOp::GetRandom) => (20_000, 800),
        (VendorProfile::Atmel, TpmOp::CounterIncrement) => (30_000, 0),
        (VendorProfile::Atmel, TpmOp::NvAccess) => (17_000, 600),
        (VendorProfile::Atmel, TpmOp::DrtmHash) => (11_000, 240),

        (VendorProfile::StMicro, TpmOp::Extend) => (9_000, 140),
        (VendorProfile::StMicro, TpmOp::PcrRead) => (1_400, 45),
        (VendorProfile::StMicro, TpmOp::Quote) => (899_000, 190),
        (VendorProfile::StMicro, TpmOp::Seal) => (590_000, 390),
        (VendorProfile::StMicro, TpmOp::Unseal) => (742_000, 390),
        (VendorProfile::StMicro, TpmOp::GetRandom) => (25_000, 850),
        (VendorProfile::StMicro, TpmOp::CounterIncrement) => (33_000, 0),
        (VendorProfile::StMicro, TpmOp::NvAccess) => (19_000, 650),
        (VendorProfile::StMicro, TpmOp::DrtmHash) => (12_000, 250),

        (VendorProfile::Instant, _) => unreachable!("handled above"),
    };
    Duration::from_micros(base_us) + Duration::from_nanos(per_byte_ns * payload_len as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_profile_is_free() {
        for op in [TpmOp::Quote, TpmOp::Seal, TpmOp::Extend] {
            assert_eq!(cost(VendorProfile::Instant, op, 1000), Duration::ZERO);
        }
    }

    #[test]
    fn quote_dominates_everything_else() {
        // The paper's central performance fact: quote latency is the
        // bottleneck of a trusted session on every vendor's chip.
        for v in VendorProfile::all_real() {
            let quote = cost(v, TpmOp::Quote, 20);
            for op in [
                TpmOp::Extend,
                TpmOp::PcrRead,
                TpmOp::GetRandom,
                TpmOp::NvAccess,
            ] {
                assert!(quote > cost(v, op, 20) * 5, "{:?} {:?}", v, op);
            }
        }
    }

    #[test]
    fn infineon_is_fastest_quote_broadcom_slowest() {
        let quotes: Vec<(VendorProfile, Duration)> = VendorProfile::all_real()
            .iter()
            .map(|&v| (v, cost(v, TpmOp::Quote, 20)))
            .collect();
        let fastest = quotes.iter().min_by_key(|(_, d)| *d).unwrap().0;
        let slowest = quotes.iter().max_by_key(|(_, d)| *d).unwrap().0;
        assert_eq!(fastest, VendorProfile::Infineon);
        assert_eq!(slowest, VendorProfile::Broadcom);
    }

    #[test]
    fn payload_increases_cost_monotonically() {
        let small = cost(VendorProfile::Atmel, TpmOp::Seal, 16);
        let large = cost(VendorProfile::Atmel, TpmOp::Seal, 4096);
        assert!(large > small);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = VendorProfile::all_real().iter().map(|v| v.name()).collect();
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
