//! Prints the E9 ablation table (batch confirmation amortization).
use utp_bench::experiments::e9_batching as e9;

fn main() {
    let rows = e9::run(1024);
    println!("{}", e9::render(&rows));
}
