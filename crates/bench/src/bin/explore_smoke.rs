//! Exploration smoke gate: runs the bounded adversarial explorer
//! against the real provider stack at the CI budget, asserts zero
//! invariant violations with the frontier fully drained, asserts the
//! exploration log is **byte-identical across two runs**, checks that
//! every seeded-bug shim is caught, and replays every named attack
//! playbook cleanly. Writes the exploration log, the E12 tables, and
//! the shrunk counterexamples to `target/explore/` for CI artifact
//! upload.
//!
//! Run: `cargo run -p utp-bench --bin explore_smoke` (pass `--nightly`
//! for the deeper nightly budget).

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

use utp_attack::playbooks;
use utp_bench::experiments::e12_explore as e12;
use utp_explore::{
    default_alphabet, explore, render_counterexample, replay_schedule, shrink, AuditTruncationShim,
    DoubleSettleShim, ExploreConfig, ForgottenOrderShim, Fork, Scenario,
};

fn explore_log(config: &ExploreConfig) -> (String, usize, bool) {
    let (scenario, root) = Scenario::build(e12::SEED, e12::ORDERS);
    let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
    let report = explore(&scenario, &root, &alphabet, config);
    (report.log, report.violations.len(), report.budget_exhausted)
}

fn shim_counterexample<S: Fork>(
    name: &str,
    system: S,
    invariant: &'static str,
) -> Result<String, String> {
    let (scenario, _root) = Scenario::build(e12::SEED, e12::ORDERS);
    let alphabet = default_alphabet(scenario.order_count(), scenario.nonce_ttl);
    let config = ExploreConfig {
        max_depth: 2,
        max_states: 5_000,
        strategy: utp_explore::Strategy::Bfs,
        stop_at_first_violation: true,
    };
    let report = explore(&scenario, &system, &alphabet, &config);
    let found = report
        .violations
        .first()
        .ok_or_else(|| format!("explorer missed the seeded {name} bug"))?;
    if found.violation.invariant != invariant {
        return Err(format!(
            "{name}: expected invariant {invariant}, explorer reported {}",
            found.violation.invariant
        ));
    }
    let minimal = shrink(&scenario, &system, &found.schedule, invariant);
    let rendered = render_counterexample(&scenario, &system, &minimal, invariant);
    let replay_a = replay_schedule(&scenario, &system, &minimal);
    let replay_b = replay_schedule(&scenario, &system, &minimal);
    if replay_a.trace != replay_b.trace {
        return Err(format!(
            "{name}: counterexample replay is not deterministic"
        ));
    }
    Ok(format!("=== {name}\n{rendered}"))
}

fn main() -> ExitCode {
    let nightly = std::env::args().any(|a| a == "--nightly");
    let config = if nightly {
        ExploreConfig::nightly()
    } else {
        ExploreConfig {
            max_depth: 2,
            max_states: 5_000,
            ..ExploreConfig::smoke()
        }
    };

    // Real stack: clean, and byte-identical across two runs.
    let (log_a, violations_a, budget_a) = explore_log(&config);
    let (log_b, _, _) = explore_log(&config);
    if log_a != log_b {
        eprintln!("explore smoke FAILED: exploration logs diverge across runs");
        for (i, (la, lb)) in log_a.lines().zip(log_b.lines()).enumerate() {
            if la != lb {
                eprintln!(
                    "first differing line {}:\n  run 1: {la}\n  run 2: {lb}",
                    i + 1
                );
                break;
            }
        }
        return ExitCode::FAILURE;
    }
    if violations_a != 0 {
        eprintln!(
            "explore smoke FAILED: {violations_a} invariant violation(s) on the real stack \
             (see exploration log)"
        );
        return ExitCode::FAILURE;
    }
    if !nightly && budget_a {
        eprintln!("explore smoke FAILED: smoke budget must drain the frontier at depth 2");
        return ExitCode::FAILURE;
    }

    // Oracle self-check: all seeded bugs found, shrunk, and replayable.
    let fresh = || Scenario::build(e12::SEED, e12::ORDERS).1;
    let mut counterexamples = String::new();
    for result in [
        shim_counterexample(
            "double-settle",
            DoubleSettleShim::new(fresh()),
            "balance-conservation",
        ),
        shim_counterexample(
            "forgotten-order",
            ForgottenOrderShim::new(fresh()),
            "recovery-matches-durable",
        ),
        shim_counterexample(
            "audit-truncation",
            AuditTruncationShim::new(fresh()),
            "audit-append-only",
        ),
    ] {
        match result {
            Ok(text) => counterexamples.push_str(&text),
            Err(e) => {
                eprintln!("explore smoke FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Named playbooks stay clean on the real stack.
    for book in playbooks::all() {
        let (scenario, root) = Scenario::build(e12::SEED, e12::ORDERS);
        let outcome = replay_schedule(&scenario, &root, &book.schedule);
        if let Some((step, violation)) = outcome.violation {
            eprintln!(
                "explore smoke FAILED: playbook {} violated {} at step {step}",
                book.name, violation.invariant
            );
            return ExitCode::FAILURE;
        }
    }

    // E12 tables for the artifact.
    let depths: &[usize] = if nightly { &[1, 2, 3, 4] } else { &[1, 2] };
    let report = e12::run(depths, config.max_states);
    if !e12::clean(&report) {
        eprintln!("explore smoke FAILED: E12 coverage run found violations on the real stack");
        return ExitCode::FAILURE;
    }
    let table = e12::render(&report);

    if let Err(e) = fs::create_dir_all("target/explore")
        .and_then(|()| fs::write("target/explore/exploration_log.txt", &log_a))
        .and_then(|()| fs::write("target/explore/e12_table.txt", &table))
        .and_then(|()| fs::write("target/explore/counterexamples.txt", &counterexamples))
    {
        eprintln!("explore smoke FAILED: cannot write target/explore artifacts: {e}");
        return ExitCode::FAILURE;
    }

    let mut summary = String::new();
    let _ = write!(
        summary,
        "explore smoke OK ({}): {} log lines byte-identical across 2 runs, \
         0 violations on the real stack, 3/3 seeded bugs caught and shrunk, \
         {} playbooks clean; artifacts in target/explore/",
        if nightly { "nightly" } else { "smoke" },
        log_a.lines().count(),
        playbooks::all().len(),
    );
    println!("{summary}");
    ExitCode::SUCCESS
}
