//! The labeled metrics registry: named cells, `Arc` handles, and
//! deterministic snapshots.
//!
//! Registration takes the registry lock once per metric; the returned
//! handles are plain atomics (or a mutex-guarded histogram whose
//! critical section is one bucket increment), so the hot paths match
//! the trace recorder's discipline — no lock is held while counting.
//! Snapshots iterate a `BTreeMap` keyed by [`MetricId`], so export
//! order is the sorted label order, independent of registration order
//! or thread interleaving.

use crate::artifact::{Artifact, Dist};
use crate::metrics::{Counter, Gauge};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use utp_trace::LatencyHistogram;

/// A metric's identity: a dotted name plus sorted `key=value` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Dotted metric name (`svc.jobs_shed`).
    pub name: String,
    /// Label set, sorted by key (then value).
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id, sorting the labels into canonical order.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders as `name{k=v,...}` (or bare `name` without labels).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

/// A mutex-guarded log-scale histogram cell. The lock is per-cell and
/// held for one bucket increment, never across other work.
#[derive(Debug)]
pub struct HistogramCell {
    hist: Mutex<LatencyHistogram>,
}

impl HistogramCell {
    /// An empty cell.
    pub fn new() -> HistogramCell {
        HistogramCell {
            hist: Mutex::new(LatencyHistogram::new()),
        }
    }

    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.hist.lock().record(d);
    }

    /// Records one raw-nanosecond sample.
    pub fn record_ns(&self, ns: u64) {
        self.hist.lock().record_ns(ns);
    }

    /// Folds a whole pre-built histogram in (per-worker merge).
    pub fn merge(&self, other: &LatencyHistogram) {
        self.hist.lock().merge(other);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.hist.lock().clone()
    }
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell::new()
    }
}

enum Cell {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<HistogramCell>),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named, labeled metric cells.
///
/// `counter`/`gauge`/`histogram` return the existing cell when the
/// same id is registered twice (two shards sharing a total), and
/// panic if the id was already registered as a different kind — that
/// is a programming error, not load-time data.
#[derive(Default)]
pub struct MetricsRegistry {
    cells: Mutex<BTreeMap<MetricId, Cell>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            cells: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers (or re-fetches) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        // Pre-rendered outside the lock so the mismatch panic below
        // allocates nothing while the guard is held.
        let rendered = id.render();
        let mut cells = self.cells.lock();
        match cells
            .entry(id)
            .or_insert_with(|| Cell::Counter(Arc::new(Counter::new())))
        {
            Cell::Counter(c) => Arc::clone(c),
            other => panic!(
                "metric `{rendered}` already registered as a {}, not a counter",
                other.kind()
            ),
        }
    }

    /// Registers (or re-fetches) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        let rendered = id.render();
        let mut cells = self.cells.lock();
        match cells
            .entry(id)
            .or_insert_with(|| Cell::Gauge(Arc::new(Gauge::new())))
        {
            Cell::Gauge(g) => Arc::clone(g),
            other => panic!(
                "metric `{rendered}` already registered as a {}, not a gauge",
                other.kind()
            ),
        }
    }

    /// Registers (or re-fetches) a log-scale latency histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<HistogramCell> {
        let id = MetricId::new(name, labels);
        let rendered = id.render();
        let mut cells = self.cells.lock();
        match cells
            .entry(id)
            .or_insert_with(|| Cell::Histogram(Arc::new(HistogramCell::new())))
        {
            Cell::Histogram(h) => Arc::clone(h),
            other => panic!(
                "metric `{rendered}` already registered as a {}, not a histogram",
                other.kind()
            ),
        }
    }

    /// Number of registered cells.
    pub fn len(&self) -> usize {
        self.cells.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.cells.lock().is_empty()
    }

    /// A deterministic point-in-time export: samples sorted by
    /// [`MetricId`], stamped with the caller's *virtual* clock reading
    /// (never the host clock — that would break byte-reproducibility).
    /// Gauge watermarks are read non-destructively; see
    /// [`Gauge::reset_watermark`](crate::metrics::Gauge::reset_watermark).
    pub fn snapshot(&self, at: Duration) -> MetricsSnapshot {
        // Clone the (cheap, `Arc`) handles under the registry lock,
        // then read each cell after dropping it — reading a histogram
        // takes the per-cell lock, and nesting that under the registry
        // lock would invert against registration paths.
        let handles: Vec<(MetricId, Cell)> = {
            let cells = self.cells.lock();
            cells
                .iter()
                .map(|(id, cell)| {
                    let cell = match cell {
                        Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
                        Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
                        Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
                    };
                    (id.clone(), cell)
                })
                .collect()
        };
        let samples = handles
            .into_iter()
            .map(|(id, cell)| Sample {
                id,
                value: match cell {
                    Cell::Counter(c) => SampleValue::Counter(c.get()),
                    Cell::Gauge(g) => SampleValue::Gauge {
                        level: g.get(),
                        watermark: g.watermark(),
                    },
                    Cell::Histogram(h) => SampleValue::Dist(Dist::of(&h.snapshot())),
                },
            })
            .collect();
        MetricsSnapshot { at, samples }
    }
}

/// One exported metric reading.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The metric's identity.
    pub id: MetricId,
    /// The reading.
    pub value: SampleValue,
}

/// The value part of a [`Sample`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous level plus the persistent high-watermark.
    Gauge {
        /// Level at snapshot time.
        level: u64,
        /// Highest level observed (survives the export).
        watermark: u64,
    },
    /// Log-scale latency distribution.
    Dist(Dist),
}

/// A sorted point-in-time export of a registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Virtual-clock reading the caller stamped the export with.
    pub at: Duration,
    /// Samples, sorted by metric id.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// Appends every sample to an artifact: counters as `u64` metrics,
    /// gauges as `<name>` plus `<name>.watermark`, histograms as
    /// distributions.
    pub fn append_to(&self, artifact: &mut Artifact) {
        for s in &self.samples {
            let labels: Vec<(&str, &str)> =
                s.id.labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
            match &s.value {
                SampleValue::Counter(v) => artifact.push_u64(&s.id.name, &labels, *v),
                SampleValue::Gauge { level, watermark } => {
                    artifact.push_u64(&s.id.name, &labels, *level);
                    artifact.push_u64(&format!("{}.watermark", s.id.name), &labels, *watermark);
                }
                SampleValue::Dist(d) => artifact.push_dist(&s.id.name, &labels, *d),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Class;

    #[test]
    fn ids_sort_labels_canonically() {
        let a = MetricId::new("m", &[("b", "2"), ("a", "1")]);
        let b = MetricId::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "m{a=1,b=2}");
        assert_eq!(MetricId::new("bare", &[]).render(), "bare");
    }

    #[test]
    fn same_id_returns_same_cell() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("hits", &[("shard", "0")]);
        let c2 = reg.counter("hits", &[("shard", "0")]);
        c1.incr();
        c2.add(2);
        assert_eq!(c1.get(), 3, "both handles hit one cell");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("depth", &[]);
        let _ = reg.gauge("depth", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_watermark_survives() {
        let reg = MetricsRegistry::new();
        reg.gauge("z.queue", &[]).set(5);
        reg.gauge("z.queue", &[]).set(1);
        reg.counter("a.jobs", &[("worker", "1")]).add(7);
        reg.histogram("m.lat", &[]).record_ns(1_000);
        let snap = reg.snapshot(Duration::from_millis(3));
        let names: Vec<&str> = snap.samples.iter().map(|s| s.id.name.as_str()).collect();
        assert_eq!(names, ["a.jobs", "m.lat", "z.queue"], "sorted by id");
        let again = reg.snapshot(Duration::from_millis(3));
        assert_eq!(snap, again, "snapshotting is non-destructive");
        match &snap.samples[2].value {
            SampleValue::Gauge { level, watermark } => {
                assert_eq!(*level, 1);
                assert_eq!(*watermark, 5, "peak survives both exports");
            }
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_appends_to_artifact() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[]).add(4);
        reg.gauge("g", &[("s", "0")]).set(2);
        let mut art = Artifact::new("E0", Class::Virtual, "test");
        reg.snapshot(Duration::ZERO).append_to(&mut art);
        let names: Vec<&str> = art.metrics.iter().map(|m| m.id.name.as_str()).collect();
        assert_eq!(names, ["c", "g", "g.watermark"]);
    }
}
