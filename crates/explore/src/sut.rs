//! Systems under test: the real provider stack (serial and
//! service-attached) behind one interface, plus the canonical
//! observable-state projection the oracle and the fingerprint dedup
//! work on.

use std::sync::Arc;
use std::time::Duration;

use utp_core::protocol::Evidence;
use utp_core::verifier::{VerifierConfig, VerifyError};
use utp_crypto::rsa::RsaPublicKey;
use utp_crypto::sha256::{Sha256, Sha256Digest};
use utp_journal::{
    frame_boundaries, replay_bytes, Journal, JournalConfig, RecoveredState, RecoveredStatus,
    RecoveryReport,
};
use utp_server::provider::ServiceProvider;
use utp_server::store::OrderStatus;

use crate::action::{Action, CrashKind};
use crate::scenario::Scenario;

/// RNG stream id handed to recovered verifiers. Exploration never
/// issues new challenges after recovery, so the value only has to be
/// fixed, not fresh.
const RECOVERY_RNG_STREAM: u64 = 0x7EC0;

/// One order as the oracle sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderView {
    /// Provider order id.
    pub id: u64,
    /// Account the order debits.
    pub account: String,
    /// Amount in cents.
    pub amount_cents: u64,
    /// Digest of the order's transaction.
    pub tx_digest: [u8; 20],
    /// Status label (`Pending`, `Confirmed`, `Rejected(<err>)`).
    pub status: String,
}

/// One audit decision as the oracle sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditView {
    /// Virtual time of the decision.
    pub at: Duration,
    /// Order the decision concerned.
    pub order_id: u64,
    /// Outcome label (`ok` or the `VerifyError` debug form).
    pub outcome: String,
}

/// Canonical observable state of a system under test: everything the
/// paper's server-side guarantees quantify over, in deterministic
/// order, plus the raw durable bytes so recovery consistency can be
/// checked by pure replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateView {
    /// `(account, balance_cents)`, sorted by account name.
    pub accounts: Vec<(String, i64)>,
    /// Orders sorted by id.
    pub orders: Vec<OrderView>,
    /// Outstanding challenge nonces, sorted.
    pub pending: Vec<[u8; 20]>,
    /// Consumed nonces (the replay-protection set), sorted.
    pub used: Vec<[u8; 20]>,
    /// Audit history, oldest first.
    pub audit: Vec<AuditView>,
    /// Durable snapshot-device bytes.
    pub durable_snapshot: Vec<u8>,
    /// Durable WAL bytes.
    pub durable_log: Vec<u8>,
}

impl StateView {
    /// Deterministic byte serialization for fingerprinting.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        out.extend_from_slice(&(self.accounts.len() as u64).to_le_bytes());
        for (name, balance) in &self.accounts {
            push_str(&mut out, name);
            out.extend_from_slice(&balance.to_le_bytes());
        }
        out.extend_from_slice(&(self.orders.len() as u64).to_le_bytes());
        for o in &self.orders {
            out.extend_from_slice(&o.id.to_le_bytes());
            push_str(&mut out, &o.account);
            out.extend_from_slice(&o.amount_cents.to_le_bytes());
            out.extend_from_slice(&o.tx_digest);
            push_str(&mut out, &o.status);
        }
        for set in [&self.pending, &self.used] {
            out.extend_from_slice(&(set.len() as u64).to_le_bytes());
            for nonce in set {
                out.extend_from_slice(nonce);
            }
        }
        out.extend_from_slice(&(self.audit.len() as u64).to_le_bytes());
        for a in &self.audit {
            out.extend_from_slice(&a.at.as_nanos().to_le_bytes());
            out.extend_from_slice(&a.order_id.to_le_bytes());
            push_str(&mut out, &a.outcome);
        }
        out.extend_from_slice(&(self.durable_snapshot.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.durable_snapshot);
        out.extend_from_slice(&(self.durable_log.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.durable_log);
        out
    }

    /// What a crash-recovery at this instant would rebuild: the pure
    /// replay of this view's own durable bytes, projected into the same
    /// shape (durable byte fields left empty). The oracle compares this
    /// against the live view — recovery must neither invent nor forget
    /// history relative to the WAL.
    pub fn replay_durable(&self) -> StateView {
        let (state, _report) = replay_bytes(&self.durable_snapshot, &self.durable_log);
        view_of_recovered(&state)
    }

    /// Equality over the semantic fields only (accounts, orders, nonce
    /// sets, audit) — durable bytes excluded, so views from before and
    /// after a WAL repair, or from serial vs service stacks, compare.
    pub fn semantic_eq(&self, other: &StateView) -> bool {
        self.semantic_diff(other).is_none()
    }

    /// First differing semantic field, as a stable label.
    pub fn semantic_diff(&self, other: &StateView) -> Option<&'static str> {
        if self.accounts != other.accounts {
            return Some("accounts");
        }
        if self.orders != other.orders {
            return Some("orders");
        }
        if self.pending != other.pending {
            return Some("pending");
        }
        if self.used != other.used {
            return Some("used");
        }
        if self.audit != other.audit {
            return Some("audit");
        }
        None
    }
}

/// SHA-256 state fingerprint over the virtual clock and the canonical
/// view bytes; equal fingerprints identify interleavings the explorer
/// prunes as equivalent.
pub fn fingerprint(now: Duration, view: &StateView) -> Sha256Digest {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&now.as_nanos().to_le_bytes());
    bytes.extend_from_slice(&view.canonical_bytes());
    Sha256::digest(&bytes)
}

/// Renders an order status exactly the way both live and recovered
/// projections must agree on.
fn status_label(status: &OrderStatus) -> String {
    match status {
        OrderStatus::Pending => "Pending".to_string(),
        OrderStatus::Confirmed => "Confirmed".to_string(),
        OrderStatus::Rejected(e) => format!("Rejected({e:?})"),
    }
}

fn recovered_status_label(status: &RecoveredStatus) -> String {
    match status {
        RecoveredStatus::Pending => "Pending".to_string(),
        RecoveredStatus::Confirmed => "Confirmed".to_string(),
        RecoveredStatus::Rejected(e) => format!("Rejected({e:?})"),
    }
}

fn outcome_label(outcome: &Result<(), VerifyError>) -> String {
    match outcome {
        Ok(()) => "ok".to_string(),
        Err(e) => format!("{e:?}"),
    }
}

/// Projects a recovered state into the canonical view shape (durable
/// byte fields empty).
pub fn view_of_recovered(state: &RecoveredState) -> StateView {
    let accounts = state
        .accounts
        .iter()
        .map(|(name, balance)| (name.clone(), *balance))
        .collect();
    let orders = state
        .orders
        .iter()
        .map(|(id, o)| OrderView {
            id: *id,
            account: o.account.clone(),
            amount_cents: o.transaction.amount_cents,
            tx_digest: *o.transaction.digest().as_bytes(),
            status: recovered_status_label(&o.status),
        })
        .collect();
    let pending = state.pending.keys().copied().collect();
    let used = state.used.iter().copied().collect();
    let audit = state
        .audit
        .iter()
        .map(|d| AuditView {
            at: d.at,
            order_id: d.order_id.unwrap_or(utp_journal::NO_ORDER),
            outcome: outcome_label(&d.outcome),
        })
        .collect();
    StateView {
        accounts,
        orders,
        pending,
        used,
        audit,
        durable_snapshot: Vec::new(),
        durable_log: Vec::new(),
    }
}

/// The interface the explorer, the oracle self-check shims, and the
/// schedule replayer drive. Implementations must be deterministic:
/// identical call sequences produce identical views.
pub trait System {
    /// Delivers evidence against an order at virtual time `now`.
    fn submit(
        &mut self,
        order_id: u64,
        evidence: &Evidence,
        now: Duration,
    ) -> Result<(), VerifyError>;
    /// Crashes the durable substrate per `kind` and recovers.
    fn crash_recover(&mut self, kind: &CrashKind) -> RecoveryReport;
    /// Provider checkpoint (snapshot + WAL truncation); in the
    /// adversary model this also refreshes the rollback image.
    fn checkpoint(&mut self);
    /// The canonical observable state.
    fn view(&self) -> StateView;
}

/// Systems that support state forking — the explorer's branch
/// primitive. The service-attached stack does not (worker pools own
/// shard state), which is why exploration forks the serial stack and
/// the service stack is exercised by linear schedule replay instead.
pub trait Fork: System + Sized {
    /// Deep, independent copy of the system.
    fn fork(&self) -> Self;
}

/// Durable image the adversary can roll the substrate back to.
#[derive(Debug, Clone)]
pub struct DurableImage {
    /// Snapshot-device bytes.
    pub snapshot: Vec<u8>,
    /// WAL-device bytes.
    pub log: Vec<u8>,
}

/// The real serial stack: `ServiceProvider` + journal, verified inline.
#[derive(Debug)]
pub struct RealSystem {
    pub(crate) provider: ServiceProvider,
    ca_key: RsaPublicKey,
    verifier_config: VerifierConfig,
    journal_config: JournalConfig,
    rollback: DurableImage,
}

impl RealSystem {
    /// Wraps a journaled provider; the current durable bytes become the
    /// adversary's initial rollback image.
    pub fn new(
        provider: ServiceProvider,
        ca_key: RsaPublicKey,
        verifier_config: VerifierConfig,
        journal_config: JournalConfig,
    ) -> Self {
        let rollback = match provider.journal() {
            Some(j) => DurableImage {
                snapshot: j.durable_snapshot_bytes(),
                log: j.durable_log_bytes(),
            },
            None => DurableImage {
                snapshot: Vec::new(),
                log: Vec::new(),
            },
        };
        RealSystem {
            provider,
            ca_key,
            verifier_config,
            journal_config,
            rollback,
        }
    }

    /// The wrapped provider (tests and shims).
    pub fn provider(&self) -> &ServiceProvider {
        &self.provider
    }

    /// Mutable provider access (buggy-shim injection only).
    pub fn provider_mut(&mut self) -> &mut ServiceProvider {
        &mut self.provider
    }

    /// Rebuilds the provider from the given durable image.
    fn recover_from(&mut self, snapshot: &[u8], log: &[u8]) -> RecoveryReport {
        let journal = Arc::new(Journal::with_durable(
            self.journal_config.clone(),
            snapshot,
            log,
        ));
        let (provider, report) = ServiceProvider::recover(
            self.ca_key.clone(),
            self.verifier_config.clone(),
            RECOVERY_RNG_STREAM,
            journal,
        );
        self.provider = provider;
        report
    }
}

impl System for RealSystem {
    fn submit(
        &mut self,
        order_id: u64,
        evidence: &Evidence,
        now: Duration,
    ) -> Result<(), VerifyError> {
        self.provider
            .submit_evidence(order_id, evidence, now)
            .map(|_receipt| ())
    }

    fn crash_recover(&mut self, kind: &CrashKind) -> RecoveryReport {
        match kind {
            CrashKind::PowerLoss => {
                let journal = self
                    .provider
                    .journal()
                    .map(Arc::clone)
                    .unwrap_or_else(|| Arc::new(Journal::new(self.journal_config.clone())));
                journal.crash();
                let (provider, report) = ServiceProvider::recover(
                    self.ca_key.clone(),
                    self.verifier_config.clone(),
                    RECOVERY_RNG_STREAM,
                    journal,
                );
                self.provider = provider;
                report
            }
            // Truncation and torn tails model incomplete writes of the
            // *current run's* WAL tail, so the cut is clamped at the
            // durable base (the last checkpoint / prologue image, which
            // is always a prefix of the current log). Eroding history
            // below the base is not a crash — that is the storage-
            // rollback adversary (`CrashKind::Rollback`), which restores
            // a consistent image; destroying the media wholesale is out
            // of scope (a provider with no disk has no state to keep
            // invariant). The first exploration runs found exactly this:
            // unclamped, three stacked truncations ate the prologue's
            // `OpenAccount` record and "violated" balance conservation
            // by deleting the account.
            CrashKind::Truncate { drop_frames } => {
                let (snapshot, log) = self.durable_bytes();
                let floor = self.rollback.log.len().min(log.len());
                let boundaries = frame_boundaries(&log);
                let idx = boundaries.len().saturating_sub(1 + drop_frames);
                let cut = boundaries.get(idx).copied().unwrap_or(0).max(floor);
                self.recover_from(&snapshot.clone(), &log[..cut])
            }
            CrashKind::TornTail { bytes } => {
                let (snapshot, log) = self.durable_bytes();
                let floor = self.rollback.log.len().min(log.len());
                let cut = log.len().saturating_sub(*bytes).max(floor);
                self.recover_from(&snapshot.clone(), &log[..cut])
            }
            CrashKind::Rollback => {
                let image = self.rollback.clone();
                self.recover_from(&image.snapshot, &image.log)
            }
        }
    }

    fn checkpoint(&mut self) {
        self.provider.checkpoint();
        if let Some(j) = self.provider.journal() {
            self.rollback = DurableImage {
                snapshot: j.durable_snapshot_bytes(),
                log: j.durable_log_bytes(),
            };
        }
    }

    fn view(&self) -> StateView {
        let mut accounts: Vec<(String, i64)> = self
            .provider
            .store()
            .accounts()
            .map(|(name, a)| (name.clone(), a.balance_cents))
            .collect();
        accounts.sort();
        let mut orders: Vec<OrderView> = self
            .provider
            .store()
            .orders()
            .map(|(id, o)| OrderView {
                id: *id,
                account: o.account.clone(),
                amount_cents: o.transaction.amount_cents,
                tx_digest: *o.transaction.digest().as_bytes(),
                status: status_label(&o.status),
            })
            .collect();
        orders.sort_by_key(|o| o.id);
        let mut pending: Vec<[u8; 20]> = self
            .provider
            .verifier()
            .ledger()
            .pending_entries()
            .map(|(nonce, _)| *nonce)
            .collect();
        pending.sort();
        let mut used: Vec<[u8; 20]> = self
            .provider
            .verifier()
            .ledger()
            .used_entries()
            .copied()
            .collect();
        used.sort();
        let audit = self
            .provider
            .audit()
            .entries()
            .map(|e| AuditView {
                at: e.at,
                order_id: e.order_id,
                outcome: outcome_label(&e.outcome),
            })
            .collect();
        let (durable_snapshot, durable_log) = self.durable_bytes();
        StateView {
            accounts,
            orders,
            pending,
            used,
            audit,
            durable_snapshot,
            durable_log,
        }
    }
}

impl RealSystem {
    fn durable_bytes(&self) -> (Vec<u8>, Vec<u8>) {
        match self.provider.journal() {
            Some(j) => (j.durable_snapshot_bytes(), j.durable_log_bytes()),
            None => (Vec::new(), Vec::new()),
        }
    }
}

impl Fork for RealSystem {
    fn fork(&self) -> Self {
        RealSystem {
            provider: self.provider.fork(),
            ca_key: self.ca_key.clone(),
            verifier_config: self.verifier_config.clone(),
            journal_config: self.journal_config.clone(),
            rollback: self.rollback.clone(),
        }
    }
}

/// The service-attached stack: same provider, evidence routed through
/// the sharded [`utp_server::service::VerifierService`]. Supports
/// linear replay only (no [`Fork`]): live worker pools own shard state
/// that cannot be duplicated, so the differential tests replay the
/// explorer's schedules through this system and compare views.
#[derive(Debug)]
pub struct ServiceSystem {
    inner: RealSystem,
    threads: usize,
    shards: usize,
}

impl ServiceSystem {
    /// Attaches a `threads`×`shards` service to a freshly built system.
    pub fn new(mut inner: RealSystem, threads: usize, shards: usize) -> Self {
        inner.provider.attach_service(threads, shards);
        ServiceSystem {
            inner,
            threads,
            shards,
        }
    }

    /// Drains and detaches the service (end-of-test hygiene).
    pub fn shutdown(mut self) {
        self.inner.provider.detach_service();
    }
}

impl System for ServiceSystem {
    fn submit(
        &mut self,
        order_id: u64,
        evidence: &Evidence,
        now: Duration,
    ) -> Result<(), VerifyError> {
        self.inner.submit(order_id, evidence, now)
    }

    fn crash_recover(&mut self, kind: &CrashKind) -> RecoveryReport {
        self.inner.provider.detach_service();
        let report = self.inner.crash_recover(kind);
        self.inner
            .provider
            .attach_service(self.threads, self.shards);
        report
    }

    fn checkpoint(&mut self) {
        self.inner.checkpoint();
    }

    fn view(&self) -> StateView {
        let mut view = self.inner.view();
        // With a service attached the shards, not the serial ledger, own
        // nonce settlement; export their merged view.
        if let Some(service) = self.inner.provider.service() {
            let (pending, used) = service.ledger_export();
            view.pending = pending.into_iter().map(|(nonce, _)| nonce).collect();
            view.pending.sort();
            view.used = used;
            view.used.sort();
        }
        view
    }
}

/// Applies one action to a system, returning a deterministic result
/// label for replay traces. Inapplicable actions are no-ops labelled
/// `noop`.
pub fn apply_action<S: System>(
    sut: &mut S,
    scenario: &Scenario,
    now: &mut Duration,
    action: &Action,
) -> String {
    match action {
        Action::Deliver { order, kind } => match scenario.kit(*order, *kind) {
            Some(evidence) => {
                let order_id = scenario.orders[*order].order_id;
                match sut.submit(order_id, evidence, *now) {
                    Ok(()) => "ok".to_string(),
                    Err(e) => format!("err {e:?}"),
                }
            }
            None => "noop".to_string(),
        },
        Action::CrossDeliver {
            evidence_from,
            to_order,
        } => {
            let kit = scenario.kit(*evidence_from, crate::action::EvidenceKind::Genuine);
            match (kit, scenario.orders.get(*to_order)) {
                (Some(evidence), Some(target)) if evidence_from != to_order => {
                    match sut.submit(target.order_id, evidence, *now) {
                        Ok(()) => "ok".to_string(),
                        Err(e) => format!("err {e:?}"),
                    }
                }
                _ => "noop".to_string(),
            }
        }
        Action::Drop { .. } => "noop".to_string(),
        Action::AdvanceClock { millis } => {
            *now += Duration::from_millis(*millis);
            "done".to_string()
        }
        Action::Crash(kind) => {
            let report = sut.crash_recover(kind);
            format!(
                "recovered applied={} orphans={} snapshot={}",
                report.records_applied, report.orphan_decisions, report.snapshot_used
            )
        }
        Action::Checkpoint => {
            sut.checkpoint();
            "done".to_string()
        }
    }
}
