// Fed as `crates/tpm/src/flow_leak.rs`. Flow-sensitive taint cases:
// a neutral-named buffer *reassigned* from a secret is tainted on the
// paths after the assignment (deny — the old let-only scan missed
// it); a zeroized secret-named local is clean afterwards (clean — the
// old name heuristic flagged it); and a neutral-named fn returning
// tainted data taints its callers' bindings (deny, two hops).
pub fn reassign_then_print(session_key: [u8; 4]) {
    let mut buf = [0u8; 4];
    buf = session_key;
    println!("buf = {:?}", buf);
}

pub fn zeroize_then_print(mut scratch_key: [u8; 4]) {
    zeroize(&mut scratch_key);
    println!("scratch = {:?}", scratch_key);
}

pub fn derive_subkey(seed: &[u8]) -> Vec<u8> {
    let expanded = expand(seed);
    expanded
}

pub fn log_derived(material: &[u8]) {
    let sub = derive_subkey(material);
    println!("sub = {:?}", sub);
}
