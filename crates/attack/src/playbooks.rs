//! Named adversary playbooks in the shared [`utp_explore`] action
//! vocabulary.
//!
//! The scenario attacks in [`crate::scenarios`] are *capability*
//! demonstrations: each shows one forgery technique failing against the
//! trusted path. Playbooks are *schedules* — multi-step message-level
//! campaigns expressed as [`utp_explore::Schedule`]s, so the same
//! sequence the explorer might discover can be named, documented,
//! replayed against any [`utp_explore::System`], and shrunk. They
//! double as regression seeds: each playbook pins the exact adversary
//! interleaving that motivated a provider-side defence.

use utp_explore::{Action, CrashKind, EvidenceKind, Schedule};

/// A named adversary campaign.
#[derive(Debug, Clone)]
pub struct Playbook {
    /// Stable identifier (`replay-storm`, `rollback-then-replay`, ...).
    pub name: &'static str,
    /// What the campaign attempts and which defence stops it.
    pub summary: &'static str,
    /// The move sequence, over a two-order scenario.
    pub schedule: Schedule,
}

/// Replay storm: settle genuinely once, then hammer the provider with
/// the same captured evidence — against its own order, the other
/// order, and again after a crash. The nonce ledger and the
/// evidence-order binding must hold every time.
pub fn replay_storm() -> Playbook {
    Playbook {
        name: "replay-storm",
        summary: "repeated replay of captured genuine evidence across orders and a crash; \
                  stopped by nonce consumption and evidence-order binding",
        schedule: vec![
            Action::Deliver {
                order: 0,
                kind: EvidenceKind::Genuine,
            },
            Action::Deliver {
                order: 0,
                kind: EvidenceKind::Genuine,
            },
            Action::CrossDeliver {
                evidence_from: 0,
                to_order: 1,
            },
            Action::Crash(CrashKind::PowerLoss),
            Action::Deliver {
                order: 0,
                kind: EvidenceKind::Genuine,
            },
            Action::CrossDeliver {
                evidence_from: 0,
                to_order: 1,
            },
        ],
    }
}

/// Rollback-then-replay: let a settlement go durable, roll the storage
/// back to the pre-settlement checkpoint image, and replay the
/// evidence. Within the rolled-back timeline the books balance — the
/// double-spend is only visible across timelines, which is why it is a
/// documented model caveat rather than an invariant (see DESIGN.md).
pub fn rollback_then_replay() -> Playbook {
    Playbook {
        name: "rollback-then-replay",
        summary: "settle, roll durable storage back to a pre-settlement image, replay; \
                  per-timeline invariants hold — cross-timeline detection is out of scope",
        schedule: vec![
            Action::Checkpoint,
            Action::Deliver {
                order: 0,
                kind: EvidenceKind::Genuine,
            },
            Action::Crash(CrashKind::Rollback),
            Action::Deliver {
                order: 0,
                kind: EvidenceKind::Genuine,
            },
        ],
    }
}

/// Certificate substitution: genuine token and quote, but the AIK
/// certificate is swapped for one issued by a CA the provider does not
/// trust — then a tampered-token variant for good measure. Both die in
/// evidence verification; the order must stay settleable afterwards.
pub fn cert_substitution() -> Playbook {
    Playbook {
        name: "cert-substitution",
        summary: "genuine evidence under a rogue CA's AIK certificate, then a tampered token; \
                  stopped by certificate validation and the quote chain",
        schedule: vec![
            Action::Deliver {
                order: 0,
                kind: EvidenceKind::RogueCert,
            },
            Action::Deliver {
                order: 0,
                kind: EvidenceKind::TamperedToken,
            },
            Action::Deliver {
                order: 0,
                kind: EvidenceKind::Genuine,
            },
        ],
    }
}

/// Crash-mid-settle: interleave every crash flavor with deliveries so
/// recovery runs with a settlement in flight — power loss right after
/// acknowledgement, a torn WAL tail, and a frame truncation before the
/// second order settles.
pub fn crash_mid_settle() -> Playbook {
    Playbook {
        name: "crash-mid-settle",
        summary: "settlements interleaved with power loss, torn-tail and truncated-frame \
                  crashes; recovery must neither invent nor forget acknowledged decisions",
        schedule: vec![
            Action::Deliver {
                order: 0,
                kind: EvidenceKind::Genuine,
            },
            Action::Crash(CrashKind::PowerLoss),
            Action::Crash(CrashKind::TornTail { bytes: 3 }),
            Action::Deliver {
                order: 1,
                kind: EvidenceKind::Genuine,
            },
            Action::Crash(CrashKind::Truncate { drop_frames: 1 }),
            Action::Deliver {
                order: 1,
                kind: EvidenceKind::Genuine,
            },
        ],
    }
}

/// Every named playbook.
pub fn all() -> Vec<Playbook> {
    vec![
        replay_storm(),
        rollback_then_replay(),
        cert_substitution(),
        crash_mid_settle(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_explore::{replay_schedule, Scenario};

    #[test]
    fn playbook_names_are_unique_and_schedules_nonempty() {
        let books = all();
        assert_eq!(books.len(), 4);
        for (i, a) in books.iter().enumerate() {
            assert!(!a.schedule.is_empty(), "{} is empty", a.name);
            for b in &books[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn no_playbook_violates_an_invariant_on_the_real_stack() {
        for book in all() {
            let (scenario, root) = Scenario::build(7, 2);
            let outcome = replay_schedule(&scenario, &root, &book.schedule);
            assert!(
                outcome.violation.is_none(),
                "playbook {} broke invariant {:?}:\n{}",
                book.name,
                outcome.violation,
                outcome.trace
            );
        }
    }

    #[test]
    fn playbooks_replay_deterministically() {
        for book in all() {
            let run = || {
                let (scenario, root) = Scenario::build(7, 2);
                replay_schedule(&scenario, &root, &book.schedule).trace
            };
            assert_eq!(run(), run(), "playbook {} trace differs", book.name);
        }
    }
}
