//! CAPTCHA service flow: the provider-side challenge lifecycle the
//! trusted path competes against in E5/E6 — issuance, single-use
//! answers, expiry, and per-client rate limiting (the standard mitigation
//! against brute-force bots).

use crate::{CaptchaGenerator, Challenge, Difficulty};
use std::collections::HashMap;
use std::time::Duration;

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaptchaError {
    /// No such outstanding challenge.
    UnknownChallenge,
    /// The answer was wrong.
    WrongAnswer,
    /// The challenge expired before the answer arrived.
    Expired,
    /// The client exceeded its attempt budget and is locked out.
    RateLimited,
}

impl std::fmt::Display for CaptchaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptchaError::UnknownChallenge => write!(f, "unknown challenge"),
            CaptchaError::WrongAnswer => write!(f, "wrong answer"),
            CaptchaError::Expired => write!(f, "challenge expired"),
            CaptchaError::RateLimited => write!(f, "rate limited"),
        }
    }
}

impl std::error::Error for CaptchaError {}

struct Outstanding {
    challenge: Challenge,
    client: u64,
    issued_at: Duration,
}

/// The CAPTCHA service configuration.
#[derive(Debug, Clone)]
pub struct CaptchaServiceConfig {
    /// Challenge difficulty.
    pub difficulty: Difficulty,
    /// How long a challenge stays answerable.
    pub ttl: Duration,
    /// Wrong answers allowed per client before lockout.
    pub max_failures_per_client: u32,
}

impl Default for CaptchaServiceConfig {
    fn default() -> Self {
        CaptchaServiceConfig {
            difficulty: Difficulty::Medium,
            ttl: Duration::from_secs(120),
            max_failures_per_client: 10,
        }
    }
}

/// The provider-side CAPTCHA service.
pub struct CaptchaService {
    config: CaptchaServiceConfig,
    generator: CaptchaGenerator,
    outstanding: HashMap<u64, Outstanding>,
    failures: HashMap<u64, u32>,
    next_id: u64,
    /// Accepted solutions.
    pub accepted: u64,
}

impl std::fmt::Debug for CaptchaService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaptchaService")
            .field("outstanding", &self.outstanding.len())
            .field("accepted", &self.accepted)
            .finish()
    }
}

impl CaptchaService {
    /// Creates a service with the given policy and generator seed.
    pub fn new(config: CaptchaServiceConfig, seed: u64) -> Self {
        CaptchaService {
            config,
            generator: CaptchaGenerator::new(seed),
            outstanding: HashMap::new(),
            failures: HashMap::new(),
            next_id: 1,
            accepted: 0,
        }
    }

    /// Issues a challenge to `client`; returns `(challenge_id, challenge)`.
    /// The challenge (with its distorted rendering, here the raw answer
    /// plus difficulty) travels to the client.
    pub fn issue(&mut self, client: u64, now: Duration) -> Option<(u64, Challenge)> {
        if self.is_locked_out(client) {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let challenge = self.generator.generate(self.config.difficulty);
        self.outstanding.insert(
            id,
            Outstanding {
                challenge: challenge.clone(),
                client,
                issued_at: now,
            },
        );
        Some((id, challenge))
    }

    /// True once a client burned its failure budget.
    pub fn is_locked_out(&self, client: u64) -> bool {
        self.failures.get(&client).copied().unwrap_or(0) >= self.config.max_failures_per_client
    }

    /// Submits an answer. Challenges are single-use: success and wrong
    /// answers both consume them.
    ///
    /// # Errors
    ///
    /// [`CaptchaError`] describing the rejection.
    pub fn submit(&mut self, id: u64, answer: &str, now: Duration) -> Result<(), CaptchaError> {
        let outstanding = self
            .outstanding
            .remove(&id)
            .ok_or(CaptchaError::UnknownChallenge)?;
        if self.is_locked_out(outstanding.client) {
            return Err(CaptchaError::RateLimited);
        }
        if now.saturating_sub(outstanding.issued_at) > self.config.ttl {
            return Err(CaptchaError::Expired);
        }
        if answer != outstanding.challenge.answer {
            *self.failures.entry(outstanding.client).or_insert(0) += 1;
            return Err(CaptchaError::WrongAnswer);
        }
        self.accepted += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> CaptchaService {
        CaptchaService::new(CaptchaServiceConfig::default(), 7)
    }

    fn t(secs: u64) -> Duration {
        Duration::from_secs(secs)
    }

    #[test]
    fn correct_answer_accepted_once() {
        let mut s = svc();
        let (id, ch) = s.issue(1, t(0)).unwrap();
        s.submit(id, &ch.answer, t(10)).unwrap();
        assert_eq!(s.accepted, 1);
        // Single use.
        assert_eq!(
            s.submit(id, &ch.answer, t(11)).unwrap_err(),
            CaptchaError::UnknownChallenge
        );
    }

    #[test]
    fn wrong_answer_consumes_challenge_and_counts_failure() {
        let mut s = svc();
        let (id, _ch) = s.issue(1, t(0)).unwrap();
        assert_eq!(
            s.submit(id, "nope", t(1)).unwrap_err(),
            CaptchaError::WrongAnswer
        );
        assert_eq!(
            s.submit(id, "nope", t(1)).unwrap_err(),
            CaptchaError::UnknownChallenge
        );
    }

    #[test]
    fn expiry_enforced() {
        let mut s = svc();
        let (id, ch) = s.issue(1, t(0)).unwrap();
        assert_eq!(
            s.submit(id, &ch.answer, t(121)).unwrap_err(),
            CaptchaError::Expired
        );
    }

    #[test]
    fn brute_force_hits_rate_limit() {
        let mut s = svc();
        for i in 0..10 {
            let (id, _) = s.issue(42, t(i)).unwrap();
            let _ = s.submit(id, "guess", t(i));
        }
        assert!(s.is_locked_out(42));
        assert!(s.issue(42, t(20)).is_none());
        // Other clients unaffected.
        assert!(s.issue(43, t(20)).is_some());
    }

    #[test]
    fn lockout_applies_even_with_outstanding_challenge() {
        let mut s = svc();
        let (held_id, held_ch) = s.issue(9, t(0)).unwrap();
        for i in 0..10 {
            let (id, _) = s.issue(9, t(i)).unwrap();
            let _ = s.submit(id, "guess", t(i));
        }
        assert_eq!(
            s.submit(held_id, &held_ch.answer, t(15)).unwrap_err(),
            CaptchaError::RateLimited
        );
    }
}
