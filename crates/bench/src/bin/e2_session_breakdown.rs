//! Prints the E2 table (trusted-session latency breakdown), the
//! aggregate phase table, and one example session waterfall — all read
//! from the run's flight recording — and drops the run's perf
//! artifacts under `target/bench/`.
use utp_bench::experiments::e2_session_breakdown as e2;
use utp_trace::report;

fn main() {
    let out = e2::run(1024);
    println!("{}", e2::render(&out));
    let records = out.recorder.records();
    println!(
        "{}",
        report::phase_table("E2 aggregate phase breakdown", &records)
    );
    if let Some(row) = out.rows.first() {
        println!("{}", report::waterfall(&records, &row.track));
        println!("{}", report::waterfall(&records, &row.tpm_track));
    }
    utp_bench::emit_artifacts(&e2::artifacts(&out, "key_bits=1024"));
}
