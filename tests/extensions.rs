//! Cross-crate integration tests for the protocol extensions: amortized
//! (quote-once) mode and batch confirmation, including their interaction
//! with the base protocol on one machine.

use utp::core::amortized::{AmortizedClient, AmortizedVerifier};
use utp::core::batch::{BatchClient, BatchVerifier};
use utp::core::ca::PrivacyCa;
use utp::core::client::{Client, ClientConfig};
use utp::core::operator::{ConfirmingHuman, Intent};
use utp::core::protocol::{ConfirmMode, Transaction};
use utp::core::verifier::Verifier;
use utp::flicker::pal::{Operator, OperatorResponse};
use utp::platform::keyboard::KeyEvent;
use utp::platform::machine::{Machine, MachineConfig};

struct ApproveAll;
impl Operator for ApproveAll {
    fn respond(&mut self, _screen: &[String]) -> OperatorResponse {
        OperatorResponse {
            events: vec![KeyEvent::Enter],
            elapsed: std::time::Duration::from_millis(1500),
        }
    }
}

#[test]
fn all_three_protocols_coexist_on_one_machine() {
    let ca = PrivacyCa::new(512, 600);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(601));
    let enrollment = ca.enroll(&mut machine);

    // Base protocol.
    let mut verifier = Verifier::new(ca.public_key().clone(), 602);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment.clone());
    let tx = Transaction::new(1, "shop.example", 100, "EUR", "base");
    let request =
        verifier.issue_request_with_mode(tx.clone(), ConfirmMode::PressEnter, machine.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 603);
    let evidence = client.confirm(&mut machine, &request, &mut human).unwrap();
    verifier.verify(&evidence, machine.now()).unwrap();

    // Amortized protocol on the same machine/TPM.
    let mut amortized = AmortizedVerifier::new(ca.public_key().clone(), 512, 604);
    let mut aclient = AmortizedClient::new(enrollment.clone());
    aclient.setup(&mut machine, &mut amortized).unwrap();
    let tx = Transaction::new(2, "shop.example", 200, "EUR", "amortized");
    let request = amortized.issue_request(tx.clone(), ConfirmMode::PressEnter, machine.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 605);
    let (evidence, _) = aclient
        .confirm_with_report(&mut machine, &request, &mut human)
        .unwrap();
    amortized.verify(&evidence).unwrap();

    // Batch protocol on the same machine/TPM.
    let mut batch_verifier = BatchVerifier::new(ca.public_key().clone());
    let mut bclient = BatchClient::new(enrollment);
    let txs: Vec<Transaction> = (0..3)
        .map(|i| Transaction::new(10 + i, "shop.example", 50, "EUR", "batch"))
        .collect();
    let request = batch_verifier.issue_batch(txs.clone(), machine.now());
    let (evidence, _) = bclient
        .confirm_batch(&mut machine, &request, &mut ApproveAll)
        .unwrap();
    assert_eq!(batch_verifier.verify(&evidence).unwrap().len(), 3);

    // Five DRTM launches total: base, setup, amortized-confirm, batch...
    assert_eq!(machine.skinit_count(), 4);
}

#[test]
fn amortized_key_survives_interleaved_other_pals() {
    // Sessions of *other* PALs between setup and confirm must not break
    // the sealed key: PCR 17 is reset at each launch, so the amortized
    // PAL's unseal still matches its own measurement chain.
    let ca = PrivacyCa::new(512, 610);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(611));
    let enrollment = ca.enroll(&mut machine);
    let mut amortized = AmortizedVerifier::new(ca.public_key().clone(), 512, 612);
    let mut aclient = AmortizedClient::new(enrollment.clone());
    aclient.setup(&mut machine, &mut amortized).unwrap();

    // Run a base confirmation in between (a different PAL).
    let mut verifier = Verifier::new(ca.public_key().clone(), 613);
    let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
    let tx = Transaction::new(1, "other.example", 5, "EUR", "");
    let request =
        verifier.issue_request_with_mode(tx.clone(), ConfirmMode::PressEnter, machine.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 614);
    client.confirm(&mut machine, &request, &mut human).unwrap();

    // Amortized confirm still works afterwards.
    let tx = Transaction::new(2, "shop.example", 75, "EUR", "");
    let request = amortized.issue_request(tx.clone(), ConfirmMode::PressEnter, machine.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 615);
    let (evidence, _) = aclient
        .confirm_with_report(&mut machine, &request, &mut human)
        .unwrap();
    amortized.verify(&evidence).unwrap();
}

#[test]
fn amortized_evidence_cannot_cross_clients() {
    // Two enrolled clients with separate keys; client B's MAC key cannot
    // validate client A's token.
    let ca = PrivacyCa::new(512, 620);
    let mut amortized = AmortizedVerifier::new(ca.public_key().clone(), 512, 621);
    let mut machine_a = Machine::new(MachineConfig::fast_for_tests(622));
    let mut machine_b = Machine::new(MachineConfig::fast_for_tests(623));
    let mut client_a = AmortizedClient::new(ca.enroll(&mut machine_a));
    let mut client_b = AmortizedClient::new(ca.enroll(&mut machine_b));
    client_a.setup(&mut machine_a, &mut amortized).unwrap();
    client_b.setup(&mut machine_b, &mut amortized).unwrap();

    let tx = Transaction::new(1, "shop.example", 100, "EUR", "");
    let request = amortized.issue_request(tx.clone(), ConfirmMode::PressEnter, machine_a.now());
    let mut human = ConfirmingHuman::new(Intent::approving(&tx), 624);
    let (mut evidence, _) = client_a
        .confirm_with_report(&mut machine_a, &request, &mut human)
        .unwrap();
    // Claim the evidence came from client B.
    let a_id = evidence.client_id;
    evidence.client_id = a_id % 2 + 1; // the *other* registered id
    assert!(amortized.verify(&evidence).is_err());
    // Restored, it verifies.
    evidence.client_id = a_id;
    amortized.verify(&evidence).unwrap();
}

#[test]
fn batch_of_one_equals_base_semantics() {
    let ca = PrivacyCa::new(512, 630);
    let mut machine = Machine::new(MachineConfig::fast_for_tests(631));
    let enrollment = ca.enroll(&mut machine);
    let mut batch_verifier = BatchVerifier::new(ca.public_key().clone());
    let mut bclient = BatchClient::new(enrollment);
    let tx = Transaction::new(1, "solo.example", 250, "EUR", "");
    let request = batch_verifier.issue_batch(vec![tx.clone()], machine.now());
    let (evidence, _) = bclient
        .confirm_batch(&mut machine, &request, &mut ApproveAll)
        .unwrap();
    assert_eq!(batch_verifier.verify(&evidence).unwrap(), vec![tx.digest()]);
}

#[test]
fn scancode_codec_matches_event_model() {
    // The event-level keyboard model and the PS/2 wire codec agree: a
    // human's typed line decodes to exactly the events the model queues.
    use utp::platform::scancode::{encode_line, ScancodeDecoder};
    let bytes = encode_line("confirm 482913").unwrap();
    let events = ScancodeDecoder::new().decode_all(&bytes);
    let expected: Vec<KeyEvent> = "confirm 482913"
        .chars()
        .map(KeyEvent::Char)
        .chain(std::iter::once(KeyEvent::Enter))
        .collect();
    assert_eq!(events, expected);
}
