// Fed to the analyzer as `crates/core/src/pal.rs` (a TCB file): its
// functions are TCB entry points for the reachability pass.
pub fn invoke_confirmation() {
    rogue_helper();
}
