//! Prints the E10 table (persistent verification service vs. one-shot
//! batch pipeline, with cert-cache hit rate and the overload scenario)
//! and drops the run's perf artifacts under `target/bench/`.
use utp_bench::experiments::e10_service as e10;

fn main() {
    let report = e10::run(256, 1024, &[1, 2, 4, 8], &[1, 2, 4]);
    println!("{}", e10::render(&report));
    utp_bench::emit_artifacts(&e10::artifacts(
        &report,
        "jobs=256 key_bits=1024 threads=1,2,4,8 shards=1,2,4",
    ));
}
