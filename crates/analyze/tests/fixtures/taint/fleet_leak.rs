// Fed as `crates/bench/src/fleet_leak.rs`. Key material passed into a
// scenario run tag and a fleet-report annotation: both are folded
// verbatim into the `FleetReport` digest (compared byte-for-byte in
// CI) and the exported `BENCH_E13.json` artifacts. The rule is
// workspace-wide — this file is outside the key crates. The
// `labels::`-qualified path segment picks an annotation-key constant
// and must not trip the scan on its own.
pub fn tag_fleet_run(session_key: &str, sc: &mut Scenario) {
    sc.tag_run(session_key);
}

pub fn annotate_report(session_key: &str, report: &mut FleetReport) {
    report.annotate(labels::RUN_KEY, session_key);
}
