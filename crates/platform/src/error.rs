//! Platform-level errors.

use std::error::Error;
use std::fmt;

/// Errors raised by the machine model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// Software tried to use a device the PAL currently owns.
    DeviceIsolated(&'static str),
    /// A device was accessed by a caller that does not own it.
    NotOwner(&'static str),
    /// `skinit` was invoked while a secure session is already active.
    AlreadyInSecureSession,
    /// The secure loader block exceeds the architectural 64 KiB limit.
    SlbTooLarge(usize),
    /// TPM returned an error during the launch sequence.
    Tpm(utp_tpm::TpmError),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::DeviceIsolated(dev) => {
                write!(f, "device {} is isolated by an active secure session", dev)
            }
            PlatformError::NotOwner(dev) => write!(f, "caller does not own device {}", dev),
            PlatformError::AlreadyInSecureSession => {
                write!(f, "a secure session is already active")
            }
            PlatformError::SlbTooLarge(n) => {
                write!(f, "secure loader block of {} bytes exceeds 64 KiB", n)
            }
            PlatformError::Tpm(e) => write!(f, "tpm error during launch: {}", e),
        }
    }
}

impl Error for PlatformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlatformError::Tpm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<utp_tpm::TpmError> for PlatformError {
    fn from(e: utp_tpm::TpmError) -> Self {
        PlatformError::Tpm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(PlatformError::DeviceIsolated("keyboard")
            .to_string()
            .contains("keyboard"));
        assert!(PlatformError::SlbTooLarge(100_000)
            .to_string()
            .contains("100000"));
    }

    #[test]
    fn tpm_error_is_source() {
        let e = PlatformError::from(utp_tpm::TpmError::NotStarted);
        assert!(std::error::Error::source(&e).is_some());
    }
}
