//! `tcb-reachability` — every function transitively reachable from the
//! PAL entry points must live in a file with a declared, reviewed TCB
//! category ([`crate::report::declared_category`]).
//!
//! The entry set is all non-test functions in TCB files
//! ([`crate::passes::is_tcb_path`]); edges come from the conservative
//! call graph, so anything the PAL *could* name is in the closure. A
//! reachable function in an undeclared file means either an accidental
//! trust expansion (break the call edge) or a missing allowlist entry
//! (extend `declared_category` with a reviewed category).
//!
//! The flight recorder (`crates/trace`) gets an *explicit* gate on top
//! of the allowlist: reachable trace code is denied unconditionally,
//! with its own message, and declaring a category for `crates/trace`
//! would not lift it. Trusted code exports data-only journals
//! (`TpmOpRecord`, `PhaseTimings`) that untrusted code turns into
//! records — the recorder itself must never be PAL-reachable, or the
//! measured TCB would silently absorb the whole observability stack.
//!
//! The settlement journal (`crates/journal`) gets the same explicit
//! gate: the TCB must never depend on disk. Durability is the untrusted
//! provider's availability concern — the PAL attests what the human
//! confirmed and nothing more, and a storage stack (device model, WAL
//! framing, recovery) reachable from the PAL would both balloon the
//! measured TCB and hand the disk a way into the trusted path.

use crate::diag::Severity;
use crate::graph::WorkspaceIndex;
use crate::passes::{Finding, Pass};
use crate::report::declared_category;

/// The pass.
pub struct TcbReachability;

impl Pass for TcbReachability {
    fn id(&self) -> &'static str {
        "tcb-reachability"
    }

    fn description(&self) -> &'static str {
        "functions reachable from the PAL must be in the declared TCB allowlist"
    }

    fn check_workspace(&self, ws: &WorkspaceIndex) -> Vec<(usize, Finding)> {
        let mut out = Vec::new();
        for idx in 0..ws.fns.len() {
            if !ws.reach.reachable[idx] || !ws.is_live_fn(idx) {
                continue;
            }
            let path = ws.fn_path(idx);
            let item = ws.fn_item(idx);
            if path.starts_with("crates/trace/src/") {
                out.push((
                    ws.fns[idx].file,
                    Finding {
                        line: item.start_line,
                        severity: Severity::Deny,
                        message: format!(
                            "`{}` in the flight recorder is reachable from the TCB \
                             (chain: {}); trace emission must stay out of the PAL — \
                             export a data-only journal from trusted code and turn it \
                             into records outside the TCB",
                            item.name,
                            ws.chain_to(idx),
                        ),
                    },
                ));
                continue;
            }
            if path.starts_with("crates/journal/src/") {
                out.push((
                    ws.fns[idx].file,
                    Finding {
                        line: item.start_line,
                        severity: Severity::Deny,
                        message: format!(
                            "`{}` in the settlement journal is reachable from the TCB \
                             (chain: {}); the TCB must never depend on disk — durability \
                             is the untrusted provider's concern, the PAL only attests \
                             what the human confirmed",
                            item.name,
                            ws.chain_to(idx),
                        ),
                    },
                ));
                continue;
            }
            if declared_category(path).is_some() {
                continue;
            }
            out.push((
                ws.fns[idx].file,
                Finding {
                    line: item.start_line,
                    severity: Severity::Deny,
                    message: format!(
                        "`{}` is reachable from the TCB (chain: {}) but `{}` has no \
                         declared TCB category; break the call edge or extend \
                         report::declared_category with a reviewed entry",
                        item.name,
                        ws.chain_to(idx),
                        path
                    ),
                },
            ));
        }
        out
    }
}
