//! Adversary suite for the uni-directional trusted path.
//!
//! The paper's security evaluation pits a *transaction generator* — malware
//! with full control of the OS — against three server policies: no
//! protection, CAPTCHA, and the trusted path. This crate implements the
//! malware. Every attack uses only capabilities the platform model grants
//! the OS (and the model grants everything real malware has: the TPM at
//! locality 0, device access while the OS runs, the ability to late-launch
//! arbitrary code, knowledge of all client-side state including the AIK
//! handle and certificate):
//!
//! * [`scenarios::attack_unprotected`] — submit the forged transaction
//!   directly (baseline a);
//! * [`scenarios::attack_captcha`] — solve the provider's CAPTCHA with an
//!   OCR bot or a paid solving service (baseline b);
//! * [`scenarios::attack_utp_forged_quote`] — fabricate a confirmation
//!   token and quote it from the OS (locality 0);
//! * [`scenarios::attack_utp_evil_pal`] — late-launch malware's own PAL
//!   that "confirms" without a human;
//! * [`scenarios::attack_utp_replay`] — replay previously captured genuine
//!   evidence;
//! * [`scenarios::attack_utp_key_injection`] — trigger the real PAL and
//!   try to inject the confirmation keystrokes in software;
//! * [`scenarios::attack_utp_mitm_swap`] — swap the transaction before
//!   the PAL launches and hope the human doesn't read the screen.
//!
//! [`harness`] turns per-trial closures into success rates for the E5
//! table. [`playbooks`] names multi-step adversary campaigns in the
//! `utp-explore` action vocabulary so the explorer, the replayer and
//! the docs all speak about the same schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod playbooks;
pub mod scenarios;
