//! Prints the E1 table (TPM primitive latencies by vendor).
use utp_bench::experiments::e1_tpm_micro as e1;

fn main() {
    let rows = e1::run(1024);
    println!("{}", e1::render(&rows));
}
