//! TPM error codes, loosely mirroring TPM 1.2 return codes.

use std::error::Error;
use std::fmt;

/// Errors returned by the software TPM.
///
/// Variants carry the information a caller needs to distinguish policy
/// violations (bad locality) from programming errors (bad index).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TpmError {
    /// The TPM has not received `TPM_Startup` since power-on.
    NotStarted,
    /// PCR index outside `0..24`.
    BadPcrIndex(u32),
    /// The command is not permitted at the current locality.
    BadLocality {
        /// Locality the command arrived at.
        got: u8,
        /// Minimum locality the command requires.
        required: u8,
    },
    /// Attempt to reset a PCR that the current locality may not reset.
    PcrNotResettable(u32),
    /// Extend value had the wrong length (must be 20 bytes).
    BadDigestLength(usize),
    /// Unknown key handle.
    BadKeyHandle(u32),
    /// Authorization (HMAC) check failed.
    AuthFail,
    /// Unseal failed because the current PCR values do not match the
    /// values the blob was sealed to.
    WrongPcrValue,
    /// A sealed blob failed integrity checks (tampered or wrong TPM).
    BadBlob,
    /// Monotonic counter handle unknown.
    BadCounterHandle(u32),
    /// NV index not defined or wrong size.
    BadNvIndex(u32),
    /// Byte-level command could not be parsed.
    BadCommand(String),
    /// The ordinal is not implemented by this model.
    UnsupportedOrdinal(u32),
    /// Internal crypto failure (wraps the crypto error text).
    Crypto(String),
}

impl fmt::Display for TpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpmError::NotStarted => write!(f, "tpm has not been started"),
            TpmError::BadPcrIndex(i) => write!(f, "pcr index {} out of range", i),
            TpmError::BadLocality { got, required } => {
                write!(f, "locality {} insufficient, need {}", got, required)
            }
            TpmError::PcrNotResettable(i) => write!(f, "pcr {} not resettable here", i),
            TpmError::BadDigestLength(l) => write!(f, "digest length {} != 20", l),
            TpmError::BadKeyHandle(h) => write!(f, "unknown key handle {:#x}", h),
            TpmError::AuthFail => write!(f, "authorization failed"),
            TpmError::WrongPcrValue => write!(f, "pcr values do not match sealed blob"),
            TpmError::BadBlob => write!(f, "sealed blob corrupt or from another tpm"),
            TpmError::BadCounterHandle(h) => write!(f, "unknown counter handle {:#x}", h),
            TpmError::BadNvIndex(i) => write!(f, "nv index {:#x} undefined or mis-sized", i),
            TpmError::BadCommand(why) => write!(f, "malformed command: {}", why),
            TpmError::UnsupportedOrdinal(o) => write!(f, "unsupported ordinal {:#x}", o),
            TpmError::Crypto(why) => write!(f, "crypto failure: {}", why),
        }
    }
}

impl Error for TpmError {}

impl From<utp_crypto::CryptoError> for TpmError {
    fn from(e: utp_crypto::CryptoError) -> Self {
        TpmError::Crypto(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_distinct() {
        let msgs: Vec<String> = vec![
            TpmError::NotStarted.to_string(),
            TpmError::BadPcrIndex(25).to_string(),
            TpmError::BadLocality {
                got: 0,
                required: 4,
            }
            .to_string(),
            TpmError::AuthFail.to_string(),
            TpmError::WrongPcrValue.to_string(),
        ];
        for (i, a) in msgs.iter().enumerate() {
            for b in msgs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn from_crypto_error() {
        let e: TpmError = utp_crypto::CryptoError::BadSignature.into();
        assert!(matches!(e, TpmError::Crypto(_)));
    }
}
