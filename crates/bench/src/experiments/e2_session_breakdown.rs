//! E2 — trusted-session latency breakdown per TPM vendor: the paper's
//! core performance table (suspend / SKINIT / PAL+human / quote / resume).
//!
//! The table is derived from a `utp-trace` flight recording rather than
//! ad-hoc timing fields: each vendor × mode session emits its phase
//! spans onto a `session/{vendor}/{mode}` track and its per-command TPM
//! journal onto a `tpm/{vendor}/{mode}` track, and everything below
//! reads those records back. The run is fully virtual-time, so the
//! canonical JSONL export is byte-identical across runs.
//!
//! Regenerate: `cargo run -p utp-bench --bin e2_session_breakdown`

use crate::table;
use std::time::Duration;
use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_core::protocol::{ConfirmMode, Transaction};
use utp_core::verifier::Verifier;
use utp_platform::machine::{Machine, MachineConfig};
use utp_tpm::VendorProfile;
use utp_trace::{keys, names, Recorder, TraceRecord, Value};

/// One vendor × mode session, identified by its trace track.
#[derive(Debug, Clone)]
pub struct SessionRow {
    /// The chip.
    pub vendor: VendorProfile,
    /// Confirmation mode.
    pub mode: ConfirmMode,
    /// Track label of the session's phase spans.
    pub track: String,
    /// Track label of the session's TPM command spans.
    pub tpm_track: String,
}

/// The experiment output: rows plus the flight recording they index.
#[derive(Debug)]
pub struct E2Output {
    /// One row per vendor × mode.
    pub rows: Vec<SessionRow>,
    /// The recording every table cell is read from.
    pub recorder: Recorder,
}

fn track_labels(vendor: VendorProfile, mode: ConfirmMode) -> (String, String) {
    (
        format!("session/{}/{mode:?}", vendor.name()),
        format!("tpm/{}/{mode:?}", vendor.name()),
    )
}

/// Runs one attested confirmation per vendor × mode with a deterministic
/// human and realistic cost models, recording each session's phase and
/// TPM-command spans.
pub fn run(key_bits: usize) -> E2Output {
    let recorder = Recorder::new();
    let mut rows = Vec::new();
    for &vendor in &VendorProfile::all_real() {
        for mode in [ConfirmMode::PressEnter, ConfirmMode::TypeCode] {
            let (track, tpm_track) = track_labels(vendor, mode);
            let ca = PrivacyCa::new(key_bits, 7);
            let mut verifier = Verifier::new(ca.public_key().clone(), 8);
            let mut machine = Machine::new(MachineConfig::realistic(vendor, 9));
            let enrollment = ca.enroll(&mut machine);
            let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
            let tx = Transaction::new(1, "bookshop.example", 4_200, "EUR", "order 7");
            let request = verifier.issue_request_with_mode(tx.clone(), mode, machine.now());
            let mut human = ConfirmingHuman::new(Intent::approving(&tx), 10);
            // Enrollment already exercised the TPM; drop its journal so
            // the tpm track holds session commands only.
            let _ = machine.drain_tpm_op_journal();
            let busy0 = machine.tpm().busy_time();
            let t0 = machine.now();
            let sink = recorder.install(&track);
            let (_evidence, report) = client
                .confirm_with_report(&mut machine, &request, &mut human)
                .expect("session succeeds");
            for (name, start, dur) in report.timings.spans(t0) {
                utp_trace::span(name, start, dur, &[]);
            }
            drop(sink);
            // TPM commands on their own track, on the *device-busy*
            // timeline (offset from session start).
            let sink = recorder.install(&tpm_track);
            for op in machine.drain_tpm_op_journal() {
                utp_trace::span(
                    names::TPM_CMD,
                    op.at_busy.saturating_sub(busy0),
                    op.cost,
                    &[
                        (keys::OP, Value::Str(op.op.name().to_string())),
                        (keys::VENDOR, Value::Str(vendor.name().to_string())),
                        (keys::PAYLOAD, Value::U64(op.payload as u64)),
                    ],
                );
            }
            drop(sink);
            rows.push(SessionRow {
                vendor,
                mode,
                track,
                tpm_track,
            });
        }
    }
    E2Output { rows, recorder }
}

/// Virtual duration of the named span on `track`; zero when absent.
pub fn phase(records: &[TraceRecord], track: &str, name: &str) -> Duration {
    records
        .iter()
        .find(|r| r.track == track && r.name == name)
        .and_then(|r| r.dur)
        .unwrap_or(Duration::ZERO)
}

/// Session total on `track`: the five tiling phase spans (the human span
/// overlaps the PAL span's tail and is excluded).
pub fn total(records: &[TraceRecord], track: &str) -> Duration {
    [
        names::SESSION_SUSPEND,
        names::SESSION_SKINIT,
        names::SESSION_PAL,
        names::SESSION_ATTEST,
        names::SESSION_RESUME,
    ]
    .iter()
    .map(|n| phase(records, track, n))
    .sum()
}

/// Session total minus human interaction — the protocol's intrinsic cost.
pub fn machine_only(records: &[TraceRecord], track: &str) -> Duration {
    total(records, track).saturating_sub(phase(records, track, names::SESSION_HUMAN))
}

/// Flattens the run into its perf artifact pair: every phase duration
/// per vendor × mode in nanoseconds of virtual time, plus the derived
/// totals. E2 runs entirely on the virtual clock, so the host artifact
/// stays empty and the canonical one is byte-identical across runs.
pub fn artifacts(output: &E2Output, config: &str) -> utp_obs::ArtifactPair {
    let mut pair = utp_obs::ArtifactPair::new("E2", config);
    let records = output.recorder.records();
    for r in &output.rows {
        let vendor = r.vendor.name();
        let mode = format!("{:?}", r.mode);
        for (key, name) in [
            ("suspend", names::SESSION_SUSPEND),
            ("skinit", names::SESSION_SKINIT),
            ("pal", names::SESSION_PAL),
            ("human", names::SESSION_HUMAN),
            ("attest", names::SESSION_ATTEST),
            ("resume", names::SESSION_RESUME),
        ] {
            pair.canonical.push_u64(
                "e2.phase_ns",
                &[("vendor", vendor), ("mode", &mode), ("phase", key)],
                phase(&records, &r.track, name).as_nanos() as u64,
            );
        }
        let labels: &[(&str, &str)] = &[("vendor", vendor), ("mode", &mode)];
        pair.canonical.push_u64(
            "e2.total_ns",
            labels,
            total(&records, &r.track).as_nanos() as u64,
        );
        pair.canonical.push_u64(
            "e2.machine_only_ns",
            labels,
            machine_only(&records, &r.track).as_nanos() as u64,
        );
    }
    pair
}

/// Renders the E2 table from the flight recording.
pub fn render(output: &E2Output) -> String {
    let records = output.recorder.records();
    table::render(
        "E2 - trusted-session latency breakdown (ms of virtual time, from utp-trace)",
        &[
            "chip",
            "mode",
            "suspend",
            "skinit",
            "pal",
            "(human)",
            "quote",
            "resume",
            "total",
            "machine-only",
        ],
        &output
            .rows
            .iter()
            .map(|r| {
                let p = |name| phase(&records, &r.track, name);
                vec![
                    r.vendor.name().to_string(),
                    format!("{:?}", r.mode),
                    table::ms(p(names::SESSION_SUSPEND)),
                    table::ms(p(names::SESSION_SKINIT)),
                    table::ms(p(names::SESSION_PAL)),
                    table::ms(p(names::SESSION_HUMAN)),
                    table::ms(p(names::SESSION_ATTEST)),
                    table::ms(p(names::SESSION_RESUME)),
                    table::ms(total(&records, &r.track)),
                    table::ms(machine_only(&records, &r.track)),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use utp_trace::Export;

    fn output() -> E2Output {
        run(512)
    }

    #[test]
    fn quote_dominates_machine_cost() {
        let out = output();
        let records = out.recorder.records();
        for r in &out.rows {
            // The attest phase (extend + quote) must dominate suspend,
            // skinit and resume on every chip — the paper's key claim
            // about where trusted-session time goes.
            let p = |name| phase(&records, &r.track, name);
            let attest = p(names::SESSION_ATTEST);
            assert!(attest > p(names::SESSION_SUSPEND), "{:?}", r.vendor);
            assert!(attest > p(names::SESSION_SKINIT), "{:?}", r.vendor);
            assert!(attest > p(names::SESSION_RESUME), "{:?}", r.vendor);
        }
    }

    #[test]
    fn human_dominates_total() {
        let out = output();
        let records = out.recorder.records();
        for r in &out.rows {
            assert!(
                phase(&records, &r.track, names::SESSION_HUMAN) > machine_only(&records, &r.track),
                "{:?} {:?}",
                r.vendor,
                r.mode
            );
        }
    }

    #[test]
    fn type_code_costs_more_human_time_than_press_enter() {
        let out = output();
        let records = out.recorder.records();
        for &vendor in &VendorProfile::all_real() {
            let human_of = |mode: ConfirmMode| {
                let (track, _) = track_labels(vendor, mode);
                phase(&records, &track, names::SESSION_HUMAN)
            };
            assert!(human_of(ConfirmMode::TypeCode) > human_of(ConfirmMode::PressEnter));
        }
    }

    #[test]
    fn machine_only_is_sub_two_seconds() {
        // Practicality: the protocol adds under ~2 s of machine time even
        // on the slowest chip.
        let out = output();
        let records = out.recorder.records();
        for r in &out.rows {
            assert!(
                machine_only(&records, &r.track) < Duration::from_secs(2),
                "{:?}: {:?}",
                r.vendor,
                machine_only(&records, &r.track)
            );
        }
    }

    #[test]
    fn tpm_journal_spans_include_the_quote() {
        let out = output();
        let records = out.recorder.records();
        for r in &out.rows {
            let ops: Vec<&TraceRecord> = records
                .iter()
                .filter(|rec| rec.track == r.tpm_track && rec.name == names::TPM_CMD)
                .collect();
            assert!(!ops.is_empty(), "{}: no TPM commands recorded", r.tpm_track);
            let quoted = ops.iter().any(|rec| {
                rec.fields
                    .iter()
                    .any(|(k, v)| *k == keys::OP && *v == Value::Str("quote".to_string()))
            });
            assert!(quoted, "{}: quote command missing", r.tpm_track);
        }
    }

    #[test]
    fn two_runs_export_byte_identical_canonical_jsonl() {
        // The whole experiment runs on the virtual clock, so the merged
        // canonical export must not vary across identical runs.
        let a = run(512).recorder.export_jsonl(Export::Canonical);
        let b = run(512).recorder.export_jsonl(Export::Canonical);
        assert_eq!(a, b);
        assert!(a.lines().count() > 1, "export is non-trivial");
    }
}
