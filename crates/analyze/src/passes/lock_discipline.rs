//! `lock-discipline` — a flow-sensitive lockset over `Mutex`/`RwLock`
//! acquisitions, denying the deadlock and staleness shapes PR 2's
//! service layer can exhibit:
//!
//! 1. **Inconsistent acquisition order.** Every acquisition made while
//!    another guard may be held (directly, or transitively through
//!    calls) contributes an edge `held → acquired` to a global graph
//!    keyed by lock *field name*; any cycle is a deny at each
//!    participating site. Re-acquiring the same name while held is
//!    denied outright (`parking_lot` mutexes are not re-entrant:
//!    self-deadlock).
//! 2. **Guard held across a blocking channel op.** `send`/`recv` on
//!    the bounded crossbeam queues (plus `join`/`wait`/`park`/`sleep`)
//!    while a guard may be held — directly or through a call — is a
//!    deny: a full queue would park the thread while every other shard
//!    client spins on the mutex. `try_send`/`try_recv` are fine.
//! 3. **Stale guarded read.** A local bound from a guard projection
//!    (`let head = g.head;`) that is reused after the guard was
//!    released and the same lock re-acquired is a deny: the guarded
//!    state may have changed between the two critical sections.
//!
//! The lockset is a forward may-analysis over the statement-level CFG
//! (`crate::cfg`): a `let`-bound guard is *gen*'d at its acquisition
//! and *killed* by `drop(guard)`, by moving the bare guard into a
//! call, or by leaving its lexical scope (including loop back edges);
//! a chained temporary (`x.lock().f()`) lives only to its statement's
//! `;`. Path-sensitivity is what rules 1–2 gain over the old extent
//! scan: a guard dropped on the `then` path is still reported when the
//! `else` path blocks, and a guard handed off to a callee no longer
//! counts as held afterwards.
//!
//! Method calls *on a guard* — chained directly on `.lock()`, or
//! invoked on a guard variable — are excluded from name-based callee
//! summary folding: `ledger.lock().register(..)` calls the guarded
//! value's `register`, not a same-named service method that happens to
//! acquire locks. Keying the graph by field name still merges
//! same-named locks on different types — conservative, and the honest
//! choice for a lexer-level analyzer (documented in DESIGN.md).
//!
//! `shims/` are excluded as *subjects* (their internals implement the
//! blocking primitives out of locks and condvars — that is the point)
//! but still contribute callee summaries.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{build_cfg, Stmt};
use crate::dataflow::{solve, Lattice};
use crate::diag::Severity;
use crate::graph::WorkspaceIndex;
use crate::items::{CallSite, FnItem};
use crate::lexer::TokenKind;
use crate::passes::{flow, Finding, Pass};
use crate::source::SourceFile;

/// Method names that can block the calling thread.
const BLOCKING: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "send_timeout",
    "join",
    "wait",
    "park",
    "sleep",
];

/// One lock acquisition and the shape of its guard.
#[derive(Debug, Clone)]
struct Acquisition {
    name: String,
    line: u32,
    tok: usize,
    /// `let`-bound guard variable; `None` for chained temporaries.
    guard_var: Option<String>,
    /// Exclusive lexical upper bound of the guard's life: the
    /// enclosing block's `}` for bound guards, the statement's `;`
    /// for temporaries. Flow kills can end it earlier.
    scope_end: usize,
}

/// Lock-order edges `(held, acquired)` mapped to their sites
/// `(file, line, fn_name)`.
type EdgeSites = BTreeMap<(String, String), Vec<(usize, u32, String)>>;

/// Per-function summary used transitively.
#[derive(Debug, Default, Clone)]
struct Summary {
    /// Lock names this fn (transitively) acquires.
    locks: BTreeSet<String>,
    /// A blocking op this fn (transitively) performs, if any.
    blocks: Option<String>,
}

/// The dataflow state: may-held guards plus guard-derived locals.
#[derive(Debug, Clone, PartialEq, Default)]
struct LockState {
    /// Indices into `FnLocks::acquisitions` whose guards may be live.
    held: BTreeSet<usize>,
    /// Locals bound from a guard projection: name -> (lock, stale).
    derived: BTreeMap<String, (String, bool)>,
}

impl Lattice for LockState {
    fn join_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for &i in &other.held {
            changed |= self.held.insert(i);
        }
        for (k, v) in &other.derived {
            match self.derived.get_mut(k) {
                None => {
                    self.derived.insert(k.clone(), v.clone());
                    changed = true;
                }
                Some(cur) => {
                    // Stale on any path means stale at the join; a
                    // differing lock name keeps the existing entry.
                    if v.1 && !cur.1 && cur.0 == v.0 {
                        cur.1 = true;
                        changed = true;
                    }
                }
            }
        }
        changed
    }
}

/// The pass.
pub struct LockDiscipline;

impl Pass for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "consistent lock order; no guard held across blocking channel ops"
    }

    fn check_workspace(&self, ws: &WorkspaceIndex) -> Vec<(usize, Finding)> {
        let mut out = Vec::new();
        let per_fn: Vec<FnLocks> = (0..ws.fns.len()).map(|i| analyze_fn(ws, i)).collect();
        let summaries = transitive_summaries(ws, &per_fn);

        // Edges of the global lock-order graph, with their sites.
        let mut edges: EdgeSites = BTreeMap::new();

        for (idx, fl) in per_fn.iter().enumerate() {
            if !subject(ws, idx) {
                continue;
            }
            check_fn(ws, idx, fl, &summaries, &mut edges, &mut out);
        }

        // Cycle detection over the order graph.
        let adj: BTreeMap<&String, BTreeSet<&String>> = {
            let mut m: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
            for (a, b) in edges.keys() {
                m.entry(a).or_default().insert(b);
            }
            m
        };
        for ((a, b), sites) in &edges {
            if reaches(&adj, b, a) {
                for (fi, line, fn_name) in sites {
                    out.push((
                        *fi,
                        Finding {
                            line: *line,
                            severity: Severity::Deny,
                            message: format!(
                                "lock-order cycle: `{a}` -> `{b}` (acquired `{b}` in \
                                 `{fn_name}` while holding `{a}`), but elsewhere `{a}` is \
                                 acquired while `{b}` is held; pick one global order",
                            ),
                        },
                    ));
                }
            }
        }
        out
    }
}

/// Is fn `idx` a subject for findings (vs summary-only)?
fn subject(ws: &WorkspaceIndex, idx: usize) -> bool {
    ws.is_live_fn(idx) && !ws.fn_path(idx).starts_with("shims/")
}

fn is_lock_method(name: &str) -> bool {
    name == "lock" || name == "read" || name == "write"
}

/// Per-fn raw lock facts.
#[derive(Debug, Default)]
struct FnLocks {
    acquisitions: Vec<Acquisition>,
    /// (line, op-name) of direct blocking calls.
    blocking: Vec<(u32, String)>,
    /// Token index of each blocking call, parallel to `blocking`.
    blocking_toks: Vec<usize>,
    /// Name-token indices of method calls whose receiver is a guard
    /// (chained on `.lock()`, or invoked on a guard variable). These
    /// call the *guarded value's* method, so name-based summary
    /// folding must not resolve them to workspace fns.
    guard_chained: BTreeSet<usize>,
    /// Call names eligible for callee summary folding.
    foldable: BTreeSet<String>,
}

/// Shared per-fn context for the check walk.
struct FnCtx<'a> {
    ws: &'a WorkspaceIndex,
    idx: usize,
    fi: usize,
    file: &'a SourceFile,
    item: &'a FnItem,
    fl: &'a FnLocks,
    summaries: &'a [Summary],
}

fn analyze_fn(ws: &WorkspaceIndex, idx: usize) -> FnLocks {
    let node = ws.fns[idx];
    let file = &ws.files[node.file];
    let item = &file.items.fns[node.item];
    let mut out = FnLocks::default();
    let Some((body_open, body_close)) = item.body else {
        return out;
    };
    let has_rwlock = file.tokens.iter().any(|t| t.is_ident("RwLock"));
    let depth = brace_depths(file);

    for c in &item.calls {
        if c.is_method && BLOCKING.contains(&c.name.as_str()) && !is_string_join(file, c) {
            out.blocking.push((c.line, c.name.clone()));
            out.blocking_toks.push(c.tok);
        }
        let is_acquire = c.is_method
            && c.args.0 == c.args.1
            && (c.name == "lock" || ((c.name == "read" || c.name == "write") && has_rwlock));
        if !is_acquire {
            continue;
        }
        // Lock name: the ident before the `.` preceding the method.
        let Some(recv) = c.tok.checked_sub(2).map(|r| &file.tokens[r]) else {
            continue;
        };
        if recv.kind != TokenKind::Ident {
            continue;
        }
        let (guard_var, scope_end) = guard_shape(file, c, &depth, body_open, body_close);
        if guard_var.is_none() {
            // `x.lock().f(..)` — the chained name calls a method of
            // the guarded value, never a workspace fn of that name.
            if file
                .tokens
                .get(c.args.1 + 1)
                .is_some_and(|t| t.is_punct("."))
            {
                out.guard_chained.insert(c.args.1 + 2);
            }
        }
        out.acquisitions.push(Acquisition {
            name: recv.text.clone(),
            line: c.line,
            tok: c.tok,
            guard_var,
            scope_end,
        });
    }

    // Method calls on a guard variable are also guarded-value methods.
    let vars: BTreeSet<&str> = out
        .acquisitions
        .iter()
        .filter_map(|a| a.guard_var.as_deref())
        .collect();
    for c in &item.calls {
        if !c.is_method {
            continue;
        }
        let Some(recv) = c.tok.checked_sub(2).map(|r| &file.tokens[r]) else {
            continue;
        };
        if recv.kind == TokenKind::Ident && vars.contains(recv.text.as_str()) {
            out.guard_chained.insert(c.tok);
        }
    }
    for c in &item.calls {
        if is_lock_method(&c.name) || out.guard_chained.contains(&c.tok) {
            continue;
        }
        out.foldable.insert(c.name.clone());
    }
    out
}

/// `v.join(", ")` string joins are not thread joins.
fn is_string_join(file: &SourceFile, c: &CallSite) -> bool {
    c.name == "join"
        && file.tokens[c.args.0..c.args.1]
            .iter()
            .any(|t| t.kind == TokenKind::Str)
}

/// Brace depth per token.
fn brace_depths(file: &SourceFile) -> Vec<u32> {
    let mut depth = 0u32;
    file.tokens
        .iter()
        .map(|t| {
            if t.is_punct("{") {
                depth += 1;
                depth
            } else if t.is_punct("}") {
                let d = depth;
                depth = depth.saturating_sub(1);
                d
            } else {
                depth
            }
        })
        .collect()
}

/// Guard variable (if `let`-bound) and lexical upper bound of the
/// guard produced by acquisition `c`.
fn guard_shape(
    file: &SourceFile,
    c: &CallSite,
    depth: &[u32],
    body_open: usize,
    body_close: usize,
) -> (Option<String>, usize) {
    // Statement start: walk back to the nearest `;`, `{` or `}`.
    let mut s = c.tok;
    while s > body_open {
        let t = &file.tokens[s - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        s -= 1;
    }
    // `foo.lock().method(..)` — the guard is a temporary consumed by the
    // chained call; any surrounding `let` binds the chain's result, not
    // the guard, so the guard still dies at the statement's `;`.
    let chained = file
        .tokens
        .get(c.args.1 + 1)
        .is_some_and(|t| t.is_punct("."));
    let mut k = s;
    let bound_var = if !chained && file.tokens[k].is_ident("let") {
        k += 1;
        if file.tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        file.tokens
            .get(k)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
    } else {
        None
    };
    match bound_var {
        Some(var) => {
            // To the end of the enclosing block; `drop(var)` and moves
            // are flow kills applied by the transfer function.
            (
                Some(var),
                enclosing_block_end(file, c.tok, depth, body_close),
            )
        }
        None => {
            // Temporary guard: to the statement's `;` at this depth.
            let d = depth[c.tok];
            let mut j = c.args.1;
            while j <= body_close {
                let t = &file.tokens[j];
                if (t.is_punct(";") || t.is_punct("}")) && depth[j] <= d {
                    return (None, j);
                }
                j += 1;
            }
            (None, body_close)
        }
    }
}

/// Token index of the `}` closing the innermost block containing `tok`.
fn enclosing_block_end(file: &SourceFile, tok: usize, depth: &[u32], body_close: usize) -> usize {
    let d = depth[tok];
    let mut j = tok + 1;
    while j <= body_close {
        if file.tokens[j].is_punct("}") && depth[j] <= d {
            return j;
        }
        j += 1;
    }
    body_close
}

/// Runs the lockset fixpoint over `idx`'s CFG, then re-walks every
/// reached block checking blocking ops, nested acquisitions, callee
/// summaries and stale guarded reads against per-statement state.
fn check_fn(
    ws: &WorkspaceIndex,
    idx: usize,
    fl: &FnLocks,
    summaries: &[Summary],
    edges: &mut EdgeSites,
    out: &mut Vec<(usize, Finding)>,
) {
    if fl.acquisitions.is_empty() {
        return;
    }
    let node = ws.fns[idx];
    let fi = node.file;
    let file = &ws.files[fi];
    let item = ws.fn_item(idx);
    let Some(body) = item.body else {
        return;
    };
    let cfg = build_cfg(&file.tokens, body);
    let entries = solve(&cfg, LockState::default(), |s, st| {
        prune(st, s, fl);
        gen_kill(st, s, file, item, fl);
    });
    let cx = FnCtx {
        ws,
        idx,
        fi,
        file,
        item,
        fl,
        summaries,
    };
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let Some(entry) = &entries[bi] else {
            continue;
        };
        let mut st = entry.clone();
        for s in &block.stmts {
            prune(&mut st, s, fl);
            check_stmt(&cx, &st, s, edges, out);
            gen_kill(&mut st, s, file, item, fl);
        }
    }
}

/// Drops guards whose lexical scope does not cover this statement —
/// including loop back edges, where re-entering the body means the
/// previous iteration's guard was released at the block's `}`.
fn prune(st: &mut LockState, s: &Stmt, fl: &FnLocks) {
    let dead: Vec<usize> = st
        .held
        .iter()
        .copied()
        .filter(|&i| {
            let a = &fl.acquisitions[i];
            !(a.tok < s.lo && s.lo < a.scope_end)
        })
        .collect();
    for i in dead {
        release(st, i, fl);
    }
}

/// Removes a guard from the lockset; once no guard of that lock
/// remains, every local derived from it becomes stale.
fn release(st: &mut LockState, i: usize, fl: &FnLocks) {
    if !st.held.remove(&i) {
        return;
    }
    let name = &fl.acquisitions[i].name;
    if st.held.iter().any(|&j| fl.acquisitions[j].name == *name) {
        return;
    }
    for v in st.derived.values_mut() {
        if v.0 == *name {
            v.1 = true;
        }
    }
}

/// The transfer function: guard gens, `drop`/move kills, and
/// derived-local tracking across one statement.
fn gen_kill(st: &mut LockState, s: &Stmt, file: &SourceFile, item: &FnItem, fl: &FnLocks) {
    for (i, a) in fl.acquisitions.iter().enumerate() {
        if a.guard_var.is_some() && s.lo <= a.tok && a.tok < s.hi {
            st.held.insert(i);
        }
    }
    for c in &item.calls {
        if c.tok < s.lo || c.tok >= s.hi {
            continue;
        }
        if c.name == "drop" && !c.is_method && c.args.1 == c.args.0 + 1 {
            let t = &file.tokens[c.args.0];
            if t.kind == TokenKind::Ident {
                if let Some(i) = held_guard_named(st, fl, &t.text) {
                    release(st, i, fl);
                }
            }
            continue;
        }
        // A bare guard var as a whole argument: ownership moves into
        // the call and the guard unlocks inside it.
        let mut j = c.args.0;
        while j < c.args.1 {
            let t = &file.tokens[j];
            if t.kind == TokenKind::Ident {
                let starts = j == c.args.0 || file.tokens[j - 1].is_punct(",");
                let ends = j + 1 == c.args.1 || file.tokens[j + 1].is_punct(",");
                if starts && ends {
                    if let Some(i) = held_guard_named(st, fl, &t.text) {
                        release(st, i, fl);
                    }
                }
            }
            j += 1;
        }
    }
    // Plain bindings from a guard projection become derived locals;
    // `x += g.f` accumulators keep their own history and are neither
    // derived nor killed.
    if let Some((name, rhs_lo, compound)) = flow::binding_of(&file.tokens, s) {
        if !compound {
            match derived_lock(st, file, fl, rhs_lo, s.hi) {
                Some(lock) => {
                    st.derived.insert(name, (lock, false));
                }
                None => {
                    st.derived.remove(&name);
                }
            }
        }
    }
}

/// The held acquisition whose guard variable is `var`, if any.
fn held_guard_named(st: &LockState, fl: &FnLocks, var: &str) -> Option<usize> {
    st.held
        .iter()
        .copied()
        .find(|&i| fl.acquisitions[i].guard_var.as_deref() == Some(var))
}

/// The lock name behind a guard projection (`g.field` / `g.method()`)
/// in `[lo, hi)`, if a held guard is projected.
fn derived_lock(
    st: &LockState,
    file: &SourceFile,
    fl: &FnLocks,
    lo: usize,
    hi: usize,
) -> Option<String> {
    for j in lo..hi {
        let t = &file.tokens[j];
        if t.kind != TokenKind::Ident || !flow::is_local_use(&file.tokens, j) {
            continue;
        }
        if !file.tokens.get(j + 1).is_some_and(|n| n.is_punct(".")) {
            continue;
        }
        if let Some(i) = held_guard_named(st, fl, &t.text) {
            return Some(fl.acquisitions[i].name.clone());
        }
    }
    None
}

/// Checks one statement against its entry lockset.
fn check_stmt(
    cx: &FnCtx<'_>,
    st: &LockState,
    s: &Stmt,
    edges: &mut EdgeSites,
    out: &mut Vec<(usize, Finding)>,
) {
    let fl = cx.fl;
    // Guards that may be held at token `t`: the entry set plus any
    // acquisition earlier in this statement (temporaries only up to
    // their `;`).
    let held_at = |t: usize| -> Vec<usize> {
        let mut v: Vec<usize> = st.held.iter().copied().collect();
        for (i, a) in fl.acquisitions.iter().enumerate() {
            if s.lo <= a.tok && a.tok < t && !v.contains(&i) {
                let live = match a.guard_var {
                    Some(_) => true,
                    None => t < a.scope_end,
                };
                if live {
                    v.push(i);
                }
            }
        }
        v.sort_unstable();
        v
    };

    // 1. Blocking ops while a guard may be held.
    for (bi, (line, op)) in fl.blocking.iter().enumerate() {
        let t = fl.blocking_toks[bi];
        if t < s.lo || t >= s.hi {
            continue;
        }
        for i in held_at(t) {
            let a = &fl.acquisitions[i];
            out.push((
                cx.fi,
                Finding {
                    line: *line,
                    severity: Severity::Deny,
                    message: format!(
                        "guard `{}` is held across blocking `.{}()` in `{}`; \
                         a full/empty bounded channel parks this thread while \
                         holding the lock — drop the guard before blocking",
                        a.name, op, cx.item.name
                    ),
                },
            ));
        }
    }

    // 2. Nested acquisitions: re-entrancy and order edges.
    for (bidx, b) in fl.acquisitions.iter().enumerate() {
        if b.tok < s.lo || b.tok >= s.hi {
            continue;
        }
        for i in held_at(b.tok) {
            if i == bidx {
                continue;
            }
            let a = &fl.acquisitions[i];
            if a.name == b.name {
                out.push((
                    cx.fi,
                    Finding {
                        line: b.line,
                        severity: Severity::Deny,
                        message: format!(
                            "`{}` re-acquires lock `{}` while its guard is still \
                             held (parking_lot mutexes are not re-entrant: this \
                             self-deadlocks); drop the first guard or merge the \
                             critical sections",
                            cx.item.name, a.name
                        ),
                    },
                ));
            } else {
                edges
                    .entry((a.name.clone(), b.name.clone()))
                    .or_default()
                    .push((cx.fi, b.line, cx.item.name.clone()));
            }
        }
    }

    // 3. Calls while held: fold in callee summaries.
    for c in &cx.item.calls {
        if c.tok < s.lo || c.tok >= s.hi {
            continue;
        }
        if is_lock_method(&c.name) || c.name == "drop" || fl.guard_chained.contains(&c.tok) {
            continue;
        }
        let held = held_at(c.tok);
        if held.is_empty() {
            continue;
        }
        for &g in &cx.ws.callees[cx.idx] {
            if cx.ws.fn_item(g).name != c.name {
                continue;
            }
            // A self-edge here is almost always name aliasing; direct
            // recursion under a held lock is caught by the nested-
            // acquisition check when the lock is re-taken inline.
            if g == cx.idx {
                continue;
            }
            let sum = &cx.summaries[g];
            for &i in &held {
                let a = &fl.acquisitions[i];
                if let Some(op) = &sum.blocks {
                    out.push((
                        cx.fi,
                        Finding {
                            line: c.line,
                            severity: Severity::Deny,
                            message: format!(
                                "guard `{}` is held across a call to `{}` which \
                                 may block (`{}`); drop the guard before calling",
                                a.name, c.name, op
                            ),
                        },
                    ));
                }
                for l in &sum.locks {
                    if *l == a.name {
                        out.push((
                            cx.fi,
                            Finding {
                                line: c.line,
                                severity: Severity::Deny,
                                message: format!(
                                    "`{}` calls `{}` which re-acquires lock `{}` \
                                     already held here (self-deadlock)",
                                    cx.item.name, c.name, a.name
                                ),
                            },
                        ));
                    } else {
                        edges.entry((a.name.clone(), l.clone())).or_default().push((
                            cx.fi,
                            c.line,
                            cx.item.name.clone(),
                        ));
                    }
                }
            }
        }
    }

    // 4. Stale guarded reads under a re-acquired lock. The binding
    //    occurrence on a `let`/`=` lhs is not a use, so scan the rhs.
    let scan_lo = flow::binding_of(&cx.file.tokens, s)
        .map(|(_, rhs, _)| rhs)
        .unwrap_or(s.lo);
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for j in scan_lo..s.hi {
        let t = &cx.file.tokens[j];
        if t.kind != TokenKind::Ident || !flow::is_local_use(&cx.file.tokens, j) {
            continue;
        }
        let Some((lock, stale)) = st.derived.get(&t.text) else {
            continue;
        };
        if !*stale {
            continue;
        }
        if held_at(j).iter().any(|&i| fl.acquisitions[i].name == *lock)
            && reported.insert(t.text.clone())
        {
            out.push((
                cx.fi,
                Finding {
                    line: s.line,
                    severity: Severity::Deny,
                    message: format!(
                        "`{}` was read under an earlier `{}` guard and reused \
                         after that guard was released; the state may have \
                         changed — re-read it under the current `{}` guard",
                        t.text, lock, lock
                    ),
                },
            ));
        }
    }
}

/// Fixpoint of per-fn summaries over the call graph. Guard-chained
/// calls do not fold: they resolve to the guarded value's methods.
fn transitive_summaries(ws: &WorkspaceIndex, per_fn: &[FnLocks]) -> Vec<Summary> {
    let mut sums: Vec<Summary> = per_fn
        .iter()
        .map(|fl| Summary {
            locks: fl.acquisitions.iter().map(|a| a.name.clone()).collect(),
            blocks: fl.blocking.first().map(|(_, op)| op.clone()),
        })
        .collect();
    loop {
        let mut changed = false;
        for idx in 0..ws.fns.len() {
            for &g in &ws.callees[idx] {
                if g == idx || !per_fn[idx].foldable.contains(&ws.fn_item(g).name) {
                    continue;
                }
                let (callee_locks, callee_blocks) = (sums[g].locks.clone(), sums[g].blocks.clone());
                let me = &mut sums[idx];
                for l in callee_locks {
                    if me.locks.insert(l) {
                        changed = true;
                    }
                }
                if me.blocks.is_none() {
                    if let Some(op) = callee_blocks {
                        me.blocks = Some(op);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return sums;
        }
    }
}

/// Is `to` reachable from `from` in the order graph?
fn reaches(adj: &BTreeMap<&String, BTreeSet<&String>>, from: &String, to: &String) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(cur) = stack.pop() {
        if cur == to {
            return true;
        }
        if !seen.insert(cur.clone()) {
            continue;
        }
        if let Some(next) = adj.get(cur) {
            stack.extend(next.iter().copied());
        }
    }
    false
}
