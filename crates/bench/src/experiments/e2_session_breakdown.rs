//! E2 — trusted-session latency breakdown per TPM vendor: the paper's
//! core performance table (suspend / SKINIT / PAL+human / quote / resume).
//!
//! Regenerate: `cargo run -p utp-bench --bin e2_session_breakdown`

use crate::table;
use utp_core::ca::PrivacyCa;
use utp_core::client::{Client, ClientConfig};
use utp_core::operator::{ConfirmingHuman, Intent};
use utp_core::protocol::{ConfirmMode, Transaction};
use utp_core::verifier::Verifier;
use utp_flicker::runtime::PhaseTimings;
use utp_platform::machine::{Machine, MachineConfig};
use utp_tpm::VendorProfile;

/// One vendor × mode session breakdown.
#[derive(Debug, Clone)]
pub struct SessionRow {
    /// The chip.
    pub vendor: VendorProfile,
    /// Confirmation mode.
    pub mode: ConfirmMode,
    /// Phase breakdown.
    pub timings: PhaseTimings,
}

/// Runs one attested confirmation per vendor × mode with a deterministic
/// human and realistic cost models.
pub fn run(key_bits: usize) -> Vec<SessionRow> {
    let mut rows = Vec::new();
    for &vendor in &VendorProfile::all_real() {
        for mode in [ConfirmMode::PressEnter, ConfirmMode::TypeCode] {
            let ca = PrivacyCa::new(key_bits, 7);
            let mut verifier = Verifier::new(ca.public_key().clone(), 8);
            let mut machine = Machine::new(MachineConfig::realistic(vendor, 9));
            let enrollment = ca.enroll(&mut machine);
            let mut client = Client::new(ClientConfig::fast_for_tests(), enrollment);
            let tx = Transaction::new(1, "bookshop.example", 4_200, "EUR", "order 7");
            let request = verifier.issue_request_with_mode(tx.clone(), mode, machine.now());
            let mut human = ConfirmingHuman::new(Intent::approving(&tx), 10);
            let (_evidence, report) = client
                .confirm_with_report(&mut machine, &request, &mut human)
                .expect("session succeeds");
            rows.push(SessionRow {
                vendor,
                mode,
                timings: report.timings,
            });
        }
    }
    rows
}

/// Renders the E2 table.
pub fn render(rows: &[SessionRow]) -> String {
    table::render(
        "E2 - trusted-session latency breakdown (ms of virtual time)",
        &[
            "chip",
            "mode",
            "suspend",
            "skinit",
            "pal",
            "(human)",
            "quote",
            "resume",
            "total",
            "machine-only",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.vendor.name().to_string(),
                    format!("{:?}", r.mode),
                    table::ms(r.timings.suspend),
                    table::ms(r.timings.skinit),
                    table::ms(r.timings.pal),
                    table::ms(r.timings.human),
                    table::ms(r.timings.attest),
                    table::ms(r.timings.resume),
                    table::ms(r.timings.total()),
                    table::ms(r.timings.machine_only()),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn rows() -> Vec<SessionRow> {
        run(512)
    }

    #[test]
    fn quote_dominates_machine_cost() {
        for r in rows() {
            // The attest phase (extend + quote) must dominate suspend,
            // skinit and resume on every chip — the paper's key claim
            // about where trusted-session time goes.
            assert!(r.timings.attest > r.timings.suspend, "{:?}", r.vendor);
            assert!(r.timings.attest > r.timings.skinit, "{:?}", r.vendor);
            assert!(r.timings.attest > r.timings.resume, "{:?}", r.vendor);
        }
    }

    #[test]
    fn human_dominates_total() {
        for r in rows() {
            assert!(
                r.timings.human > r.timings.machine_only(),
                "{:?} {:?}",
                r.vendor,
                r.mode
            );
        }
    }

    #[test]
    fn type_code_costs_more_human_time_than_press_enter() {
        let rows = rows();
        for &vendor in &VendorProfile::all_real() {
            let human_of = |mode: ConfirmMode| {
                rows.iter()
                    .find(|r| r.vendor == vendor && r.mode == mode)
                    .unwrap()
                    .timings
                    .human
            };
            assert!(human_of(ConfirmMode::TypeCode) > human_of(ConfirmMode::PressEnter));
        }
    }

    #[test]
    fn machine_only_is_sub_two_seconds() {
        // Practicality: the protocol adds under ~2 s of machine time even
        // on the slowest chip.
        for r in rows() {
            assert!(
                r.timings.machine_only() < Duration::from_secs(2),
                "{:?}: {:?}",
                r.vendor,
                r.timings.machine_only()
            );
        }
    }
}
