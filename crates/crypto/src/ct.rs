//! Constant-time helpers for verifier code paths.

/// Compares two byte slices in time dependent only on the lengths.
///
/// Returns `false` immediately if lengths differ (length is not secret in
/// any UTP protocol message), otherwise accumulates a XOR difference over
/// every byte before deciding.
///
/// # Example
///
/// ```
/// use utp_crypto::ct::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"ab"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Constant-time conditional select: returns `a` if `choice` else `b`.
#[must_use]
pub fn ct_select(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_on_equal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn neq_on_single_bit_difference() {
        for i in 0..8 {
            let a = [0u8; 4];
            let mut b = [0u8; 4];
            b[2] = 1 << i;
            assert!(!ct_eq(&a, &b));
        }
    }

    #[test]
    fn neq_on_length_mismatch() {
        assert!(!ct_eq(b"a", b"ab"));
    }

    #[test]
    fn select_behaves() {
        assert_eq!(ct_select(true, 0xAA, 0x55), 0xAA);
        assert_eq!(ct_select(false, 0xAA, 0x55), 0x55);
    }
}
