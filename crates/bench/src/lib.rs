//! Experiment harnesses regenerating the paper's evaluation.
//!
//! One module per experiment (E1–E7, defined in DESIGN.md); each exposes a
//! `run(...)` returning structured rows plus a `render(...)` printing the
//! paper-style table. The `src/bin/eN_*` binaries are thin wrappers; the
//! integration tests assert the *shapes* the paper reports (who wins, by
//! roughly what factor) hold on the regenerated data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;
