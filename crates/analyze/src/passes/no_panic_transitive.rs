//! `no-panic-transitive` — interprocedural extension of
//! `no-panic-in-tcb`: a TCB function may not *transitively* call a
//! function containing a panic path.
//!
//! Findings land on the panic construct in the callee (that is where
//! the fix goes), with the TCB call chain in the message. TCB files
//! themselves are covered by the file-local `no-panic-in-tcb` pass and
//! are skipped here to avoid double reporting.
//!
//! Panic paths counted: `panic!` / `todo!` / `unimplemented!` /
//! `unreachable!` macros and `.unwrap()` / `.expect(..)` calls.
//! `assert!`-family macros are deliberately **excluded**: they are
//! deterministic programmer-error guards on documented preconditions
//! (and `debug_assert!` compiles out), whereas unwrap/expect abort on
//! data-dependent state — which is exactly what must not happen inside
//! a confirmation session. The exclusion is a documented soundness
//! caveat in DESIGN.md.

use crate::diag::Severity;
use crate::graph::WorkspaceIndex;
use crate::passes::{is_tcb_path, Finding, Pass};

/// Macros that abort.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Method calls that abort on `Err`/`None`.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// The pass.
pub struct NoPanicTransitive;

impl Pass for NoPanicTransitive {
    fn id(&self) -> &'static str {
        "no-panic-transitive"
    }

    fn description(&self) -> &'static str {
        "TCB functions must not transitively call panic paths"
    }

    fn check_workspace(&self, ws: &WorkspaceIndex) -> Vec<(usize, Finding)> {
        let mut out = Vec::new();
        for idx in 0..ws.fns.len() {
            if !ws.reach.reachable[idx] || !ws.is_live_fn(idx) {
                continue;
            }
            let path = ws.fn_path(idx);
            if is_tcb_path(path) {
                continue;
            }
            let item = ws.fn_item(idx);
            let mut sites: Vec<(u32, String)> = Vec::new();
            for m in &item.macros {
                if PANIC_MACROS.contains(&m.name.as_str()) {
                    sites.push((m.line, format!("`{}!`", m.name)));
                }
            }
            for c in &item.calls {
                if c.is_method && PANIC_METHODS.contains(&c.name.as_str()) {
                    sites.push((c.line, format!("`.{}()`", c.name)));
                }
            }
            sites.sort();
            sites.dedup();
            for (line, what) in sites {
                out.push((
                    ws.fns[idx].file,
                    Finding {
                        line,
                        severity: Severity::Deny,
                        message: format!(
                            "{what} in `{}` is reachable from the TCB (chain: {}); \
                             a panic here aborts a confirmation session mid-prompt — \
                             return a typed error instead",
                            item.name,
                            ws.chain_to(idx),
                        ),
                    },
                ));
            }
        }
        out
    }
}
