//! Pass 1: `tcb-boundary` — the TCB may only import allowlisted crates.
//!
//! The paper's minimal-TCB argument only holds if the PAL and TPM driver
//! cannot quietly grow dependencies on the untrusted world. This pass
//! checks every `use` declaration in TCB files against a per-file
//! allowlist, and additionally denies the OS-facing `std` subtrees
//! (`std::net`, `std::fs`, `std::process`, ...) that a PAL running under
//! DRTM isolation could never have anyway.

use super::{Finding, Pass};
use crate::diag::Severity;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Workspace crates that must never appear in TCB code.
const FORBIDDEN_CRATES: &[&str] = &[
    "utp_server",
    "utp_netsim",
    "utp_attack",
    "utp_captcha",
    "utp_bench",
    "utp_journal",
    "utp_explore",
    "utp_obs",
    "utp",
];

/// `std` subtrees forbidden in the TCB (OS services a measured PAL does
/// not have; `core`/`alloc`-style subsets like `fmt`, `collections`,
/// `time::Duration` remain fine).
const STD_DENY: &[&str] = &["net", "fs", "process", "thread", "env", "os", "io", "path"];

/// Import roots every TCB file may use.
const COMMON_ALLOW: &[&str] = &[
    "crate",
    "self",
    "super",
    "core",
    "alloc",
    "std",
    "utp_crypto",
];

/// Extra roots allowed per TCB file class, beyond [`COMMON_ALLOW`].
fn extra_allow(path: &str) -> &'static [&'static str] {
    if path.starts_with("crates/tpm/src/") {
        // `rand` models the TPM's internal hardware RNG.
        &["rand"]
    } else if path == "crates/flicker/src/pal.rs" {
        // The PAL drives the TPM and the isolated keyboard/display.
        &["utp_tpm", "utp_platform"]
    } else if path == "crates/core/src/pal.rs" {
        // The confirmation PAL builds on the Flicker session layer.
        &["utp_tpm", "utp_platform", "utp_flicker"]
    } else {
        &[]
    }
}

/// The `tcb-boundary` pass.
pub struct TcbBoundary;

impl Pass for TcbBoundary {
    fn id(&self) -> &'static str {
        "tcb-boundary"
    }

    fn description(&self) -> &'static str {
        "TCB files (PAL + TPM driver) may only import allowlisted crates"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        if !super::is_tcb_path(&file.path) {
            return Vec::new();
        }
        let extra = extra_allow(&file.path);
        // Modules this file declares: `use device::...` in lib.rs is a
        // local re-export, not a foreign import.
        let local_mods: Vec<&str> = file
            .tokens
            .windows(2)
            .filter(|w| w[0].is_ident("mod") && w[1].kind == TokenKind::Ident)
            .map(|w| w[1].text.as_str())
            .collect();
        let mut findings = Vec::new();
        let tokens = &file.tokens;
        let mut i = 0;
        while i < tokens.len() {
            if !tokens[i].is_ident("use") {
                i += 1;
                continue;
            }
            // Find the declaration's extent (up to `;`) and its root.
            let mut end = i + 1;
            while end < tokens.len() && !tokens[end].is_punct(";") {
                end += 1;
            }
            let decl = &tokens[i + 1..end.min(tokens.len())];
            let line = tokens[i].line;
            if let Some(root) = decl.iter().find(|t| t.kind == TokenKind::Ident) {
                let root_name = root.text.as_str();
                if FORBIDDEN_CRATES.contains(&root_name) {
                    findings.push(Finding {
                        line,
                        severity: Severity::Deny,
                        message: format!(
                            "TCB file imports `{root_name}`, which is outside the trusted \
                             computing base; the PAL/TPM driver must not depend on \
                             untrusted server/simulation crates"
                        ),
                    });
                } else if root_name == "std" {
                    for t in decl.iter().filter(|t| t.kind == TokenKind::Ident) {
                        if STD_DENY.contains(&t.text.as_str()) {
                            findings.push(Finding {
                                line: t.line,
                                severity: Severity::Deny,
                                message: format!(
                                    "TCB file imports `std::{}`: OS services are unavailable \
                                     to a measured PAL and must not leak into the TCB; use \
                                     core/alloc-style std subsets only",
                                    t.text
                                ),
                            });
                        }
                    }
                } else if !COMMON_ALLOW.contains(&root_name)
                    && !extra.contains(&root_name)
                    && !local_mods.contains(&root_name)
                {
                    findings.push(Finding {
                        line,
                        severity: Severity::Deny,
                        message: format!(
                            "TCB file imports `{root_name}`, which is not on the TCB import \
                             allowlist ({})",
                            COMMON_ALLOW
                                .iter()
                                .chain(extra)
                                .copied()
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    });
                }
            }
            i = end + 1;
        }
        findings
    }
}
