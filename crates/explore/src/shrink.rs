//! Deterministic schedule replay and delta-debugging counterexample
//! shrinking.
//!
//! A counterexample is just a [`Schedule`]; replaying it from a fork of
//! the pristine branch point reproduces the violation byte-for-byte.
//! The shrinker is classic ddmin over the schedule: remove chunks,
//! keep the removal if the *same invariant* still fires, finish with a
//! one-at-a-time pass. Removal is always safe to try because
//! inapplicable actions are deterministic no-ops (see
//! [`crate::action`]).

use std::fmt::Write as _;
use std::time::Duration;

use crate::action::{render_schedule, Action, Schedule};
use crate::oracle::{Oracle, Violation};
use crate::scenario::Scenario;
use crate::sut::{apply_action, Fork};

/// Result of replaying a schedule from the branch point.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// One line per step: `step=N action=[..] result=..`, then either
    /// `violation step=N invariant=..` or `clean steps=N`.
    pub trace: String,
    /// First violation hit, with the index of the offending step.
    pub violation: Option<(usize, Violation)>,
}

/// Replays `schedule` against a fresh fork of `root`, checking the
/// oracle after every step. Stops at the first violation.
pub fn replay_schedule<S: Fork>(
    scenario: &Scenario,
    root: &S,
    schedule: &[Action],
) -> ReplayOutcome {
    let mut sut = root.fork();
    let mut oracle = Oracle::new(scenario, &root.view());
    let mut now: Duration = scenario.base_now;
    let mut trace = String::new();
    for (i, action) in schedule.iter().enumerate() {
        let result = apply_action(&mut sut, scenario, &mut now, action);
        let _ = writeln!(trace, "step={i} action=[{action}] result={result}");
        if let Err(violation) = oracle.check(&sut.view(), action.is_crash()) {
            let _ = writeln!(
                trace,
                "violation step={i} invariant={}",
                violation.invariant
            );
            return ReplayOutcome {
                trace,
                violation: Some((i, violation)),
            };
        }
    }
    let _ = writeln!(trace, "clean steps={}", schedule.len());
    ReplayOutcome {
        trace,
        violation: None,
    }
}

/// True when replaying `candidate` still violates `invariant`.
fn reproduces<S: Fork>(
    scenario: &Scenario,
    root: &S,
    candidate: &[Action],
    invariant: &str,
) -> bool {
    replay_schedule(scenario, root, candidate)
        .violation
        .is_some_and(|(_, v)| v.invariant == invariant)
}

/// Shrinks `schedule` to a locally minimal schedule that still
/// violates `invariant`, using ddmin followed by a single-action
/// elimination pass. Deterministic; returns the input unchanged if it
/// does not reproduce.
pub fn shrink<S: Fork>(
    scenario: &Scenario,
    root: &S,
    schedule: &[Action],
    invariant: &str,
) -> Schedule {
    let mut current: Schedule = schedule.to_vec();
    if !reproduces(scenario, root, &current, invariant) {
        return current;
    }
    // ddmin: remove ever-finer chunks while the violation survives.
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if reproduces(scenario, root, &candidate, invariant) {
                current = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    // Final pass: drop single actions until none can go.
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if reproduces(scenario, root, &candidate, invariant) {
                current = candidate;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    current
}

/// Renders a counterexample the way golden fixtures pin it: the
/// violated invariant, the minimal schedule, and the replay trace.
pub fn render_counterexample<S: Fork>(
    scenario: &Scenario,
    root: &S,
    minimal: &[Action],
    invariant: &str,
) -> String {
    let outcome = replay_schedule(scenario, root, minimal);
    let mut out = String::new();
    let _ = writeln!(out, "invariant={invariant}");
    let _ = writeln!(out, "schedule:");
    out.push_str(&render_schedule(minimal));
    let _ = writeln!(out, "replay:");
    out.push_str(&outcome.trace);
    out
}
