//! Span/event model: typed field values, the static key registry, and
//! the stable JSONL rendering of one record.
//!
//! Every record is stamped in **virtual time** (the simulated `Machine`
//! clock), so a trace of a deterministic run is itself deterministic.
//! Host-CPU measurements (obtained through `metrics::host_timed`) may be
//! attached only as [`Value::HostNs`] fields on records marked
//! *volatile*; volatile records are excluded from the canonical export
//! that the determinism smoke test diffs byte-for-byte.

use std::time::Duration;

/// A typed field value attached to a trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Unsigned integer: counts, sizes, sequence numbers.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Short label (vendor name, outcome); escaped on export.
    Str(String),
    /// A duration in *virtual* (simulated-clock) nanoseconds.
    VirtualNs(u64),
    /// A duration measured on the host CPU. Records carrying one must be
    /// emitted through the `*_volatile` entry points so they stay out of
    /// the canonical export.
    HostNs(u64),
    /// Boolean flag (cache hit, accepted).
    Bool(bool),
}

impl Value {
    /// True for values that are inherently run-dependent (host time).
    pub fn is_host_measured(&self) -> bool {
        matches!(self, Value::HostNs(_))
    }
}

/// The static registry of span/event names. Emission asserts (in debug
/// builds) that every record uses a name from this list, so the set of
/// trace points stays reviewable in one place.
pub mod names {
    /// One TPM command dispatched through the device's cost model.
    pub const TPM_CMD: &str = "tpm.cmd";
    /// OS quiesce before the DRTM launch.
    pub const SESSION_SUSPEND: &str = "session.suspend";
    /// SKINIT/SENTER latency (DRTM launch).
    pub const SESSION_SKINIT: &str = "session.skinit";
    /// PAL compute time inside the session.
    pub const SESSION_PAL: &str = "session.pal";
    /// Human read-and-confirm time.
    pub const SESSION_HUMAN: &str = "session.human";
    /// Quote generation (attestation) time.
    pub const SESSION_ATTEST: &str = "session.attest";
    /// OS resume after the session.
    pub const SESSION_RESUME: &str = "session.resume";
    /// One simulated network leg (client/server delivery).
    pub const NET_DELIVER: &str = "net.deliver";
    /// Server-side evidence verification folded into virtual time.
    pub const FLOW_VERIFY: &str = "flow.verify";
    /// A job handed to the verification service (submitter side).
    pub const SVC_SUBMIT: &str = "svc.submit";
    /// One job's life inside the service (worker side; host-timed).
    pub const SVC_JOB: &str = "svc.job";
    /// AIK-certificate cache lookup outcome.
    pub const SVC_CACHE: &str = "svc.cache";
    /// Sampled intake queue depth.
    pub const SVC_QUEUE_DEPTH: &str = "svc.queue_depth";
    /// Graceful-shutdown drain progress.
    pub const SVC_DRAIN: &str = "svc.drain";
    /// One audit-log decision recorded by the service provider.
    pub const AUDIT_DECISION: &str = "audit.decision";
    /// Flight-recorder bookkeeping: ring overflow drop counts.
    pub const TRACE_DROPPED: &str = "trace.dropped";
    /// One record appended to the settlement WAL.
    pub const JOURNAL_APPEND: &str = "journal.append";
    /// One WAL durability barrier (group-commit flush).
    pub const JOURNAL_FLUSH: &str = "journal.flush";
    /// One recovery pass (snapshot + log replay).
    pub const JOURNAL_RECOVER: &str = "journal.recover";

    /// Every registered name, for validation and docs.
    pub const ALL: &[&str] = &[
        TPM_CMD,
        SESSION_SUSPEND,
        SESSION_SKINIT,
        SESSION_PAL,
        SESSION_HUMAN,
        SESSION_ATTEST,
        SESSION_RESUME,
        NET_DELIVER,
        FLOW_VERIFY,
        SVC_SUBMIT,
        SVC_JOB,
        SVC_CACHE,
        SVC_QUEUE_DEPTH,
        SVC_DRAIN,
        AUDIT_DECISION,
        TRACE_DROPPED,
        JOURNAL_APPEND,
        JOURNAL_FLUSH,
        JOURNAL_RECOVER,
    ];

    /// Whether `name` is in the registry.
    pub fn is_registered(name: &str) -> bool {
        ALL.contains(&name)
    }
}

/// The static registry of field keys (same contract as [`names`]).
pub mod keys {
    /// TPM command name (`quote`, `extend`, ...).
    pub const OP: &str = "op";
    /// TPM vendor timing model.
    pub const VENDOR: &str = "vendor";
    /// Command payload size in bytes.
    pub const PAYLOAD: &str = "payload";
    /// Confirmation mode (`press-enter`, `type-code`).
    pub const MODE: &str = "mode";
    /// Deterministic submission sequence number.
    pub const SEQ: &str = "seq";
    /// Settlement shard index.
    pub const SHARD: &str = "shard";
    /// Decision outcome label.
    pub const OUTCOME: &str = "outcome";
    /// Cache hit (`true`) vs miss (`false`).
    pub const HIT: &str = "hit";
    /// Sampled queue depth.
    pub const DEPTH: &str = "depth";
    /// Host time spent waiting in the intake queue.
    pub const WAIT_HOST: &str = "wait_host";
    /// Host time spent verifying.
    pub const VERIFY_HOST: &str = "verify_host";
    /// Order identifier.
    pub const ORDER: &str = "order";
    /// Jobs still pending (drain progress).
    pub const PENDING: &str = "pending";
    /// Records dropped by a ring buffer.
    pub const DROPPED: &str = "dropped";
    /// Bytes moved over a simulated link.
    pub const BYTES: &str = "bytes";
    /// Direction or peer label for a network leg.
    pub const LEG: &str = "leg";
    /// Worker thread index.
    pub const WORKER: &str = "worker";
    /// Journal records covered by an operation (replayed, flushed, ...).
    pub const RECORDS: &str = "records";

    /// Every registered field key.
    pub const ALL: &[&str] = &[
        OP,
        VENDOR,
        PAYLOAD,
        MODE,
        SEQ,
        SHARD,
        OUTCOME,
        HIT,
        DEPTH,
        WAIT_HOST,
        VERIFY_HOST,
        ORDER,
        PENDING,
        DROPPED,
        BYTES,
        LEG,
        WORKER,
        RECORDS,
    ];

    /// Whether `k` is in the registry.
    pub fn is_registered(k: &str) -> bool {
        ALL.contains(&k)
    }
}

/// One trace record: a span (has a duration) or an instantaneous event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual timestamp: offset from simulation start.
    pub ts: Duration,
    /// Span duration in virtual time; `None` for point events.
    pub dur: Option<Duration>,
    /// Deterministic track label (e.g. `session/atmel/enter`, `worker/3`).
    pub track: String,
    /// Registered span/event name (see [`names`]).
    pub name: &'static str,
    /// Typed fields, in emission order.
    pub fields: Vec<(&'static str, Value)>,
    /// Volatile records carry host-measured or scheduling-dependent data
    /// and are excluded from the canonical export.
    pub volatile: bool,
}

impl TraceRecord {
    /// Stable single-line JSON rendering (hand-rolled; field order is
    /// emission order, scalar keys first).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!("{{\"ts_ns\":{}", self.ts.as_nanos()));
        if let Some(d) = self.dur {
            out.push_str(&format!(",\"dur_ns\":{}", d.as_nanos()));
        }
        out.push_str(",\"track\":\"");
        escape_into(&mut out, &self.track);
        out.push_str("\",\"name\":\"");
        escape_into(&mut out, self.name);
        out.push('"');
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, k);
                out.push_str("\":");
                render_value(&mut out, v);
            }
            out.push('}');
        }
        if self.volatile {
            out.push_str(",\"volatile\":true");
        }
        out.push('}');
        out
    }
}

fn render_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Value::VirtualNs(n) => out.push_str(&format!("{{\"virtual_ns\":{n}}}")),
        Value::HostNs(n) => out.push_str(&format!("{{\"host_ns\":{n}}}")),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Minimal JSON string escaping (quote, backslash, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_are_duplicate_free() {
        for (i, n) in names::ALL.iter().enumerate() {
            assert!(!names::ALL[..i].contains(n), "duplicate name {n}");
        }
        for (i, k) in keys::ALL.iter().enumerate() {
            assert!(!keys::ALL[..i].contains(k), "duplicate key {k}");
        }
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let rec = TraceRecord {
            ts: Duration::from_nanos(1500),
            dur: Some(Duration::from_nanos(10)),
            track: "session/0".to_string(),
            name: names::TPM_CMD,
            fields: vec![
                (keys::OP, Value::Str("qu\"ote".to_string())),
                (keys::PAYLOAD, Value::U64(20)),
                (keys::HIT, Value::Bool(true)),
            ],
            volatile: false,
        };
        assert_eq!(
            rec.to_json(),
            "{\"ts_ns\":1500,\"dur_ns\":10,\"track\":\"session/0\",\
             \"name\":\"tpm.cmd\",\"fields\":{\"op\":\"qu\\\"ote\",\
             \"payload\":20,\"hit\":true}}"
        );
    }

    #[test]
    fn volatile_and_host_values_render() {
        let rec = TraceRecord {
            ts: Duration::ZERO,
            dur: None,
            track: "worker/1".to_string(),
            name: names::SVC_JOB,
            fields: vec![(keys::WAIT_HOST, Value::HostNs(42))],
            volatile: true,
        };
        let json = rec.to_json();
        assert!(json.ends_with(",\"volatile\":true}"));
        assert!(json.contains("{\"host_ns\":42}"));
        assert!(Value::HostNs(1).is_host_measured());
        assert!(!Value::U64(1).is_host_measured());
    }
}
