//! `secret-taint` — key material must not flow to Debug/logging/wire
//! sinks.
//!
//! Scope: non-test code in `crates/tpm`, `crates/crypto`, `crates/core`
//! (the crates that handle seal/auth key material). Five rules:
//!
//! 1. **Debug derives.** A `#[derive(Debug)]` on a struct carrying
//!    secret material is a deny unless every secret field's type has a
//!    manual (redacting) `impl Debug` in the workspace — the manual
//!    impl is the approved redaction boundary (see `RsaKeyPair`).
//!    Secret-carrying is a fixpoint: a field is secret if its *name* is
//!    secret-shaped, its type is a designated secret type, or its type
//!    is itself a secret-carrying struct.
//! 2. **Console/logging sinks.** A tainted identifier reaching
//!    `println!`/`print!`/`eprintln!`/`eprint!`/`dbg!` (including
//!    `{ident}` inline captures in the format string) is a deny.
//! 3. **Wire sinks.** `.to_bytes()`/`.write()`/`.serialize()` on a
//!    tainted receiver outside the approved sealing boundary files is a
//!    deny — private keys leave the TPM model only wrapped or sealed.
//! 4. **Trace sinks.** A tainted identifier in the argument list of a
//!    flight-recorder emission (`span`/`event`/`span_volatile`/
//!    `event_volatile`) is a deny *workspace-wide*, not just in the key
//!    crates: trace records are serialized verbatim into the JSONL
//!    export, which is the least-guarded output the workspace has.
//!    Idents immediately followed by `::` are path qualifiers (the
//!    `utp_trace::keys::OP` key-name registry), not values, and are
//!    skipped.
//! 5. **Journal sinks.** A tainted identifier in the argument list of a
//!    settlement-journal append (`.append_record()` /
//!    `.install_snapshot()`) is a deny *workspace-wide*: WAL frames
//!    land verbatim on the (simulated) disk, outliving the process and
//!    any zeroization — durable state is the last place key material
//!    may ever appear. Same `::` path-qualifier exemption as rule 4
//!    (`JournalRecord::Settle` names a variant, not a value).
//!
//! **Taint is flow-sensitive** (statement-level CFG + worklist, see
//! `crate::cfg` / `crate::dataflow`): a binding or *reassignment* from
//! a secret-mentioning expression taints the local on the paths that
//! execute it, `zeroize(&mut x)` / `x.zeroize()` kills the taint, and
//! a binding from a clean expression clears a secret-*named* local
//! (the flow fact overrides the name heuristic in both directions;
//! idents with no flow fact fall back to the name heuristic). Public
//! projections (`key.len()`) do not taint. On top of the per-fn flow,
//! a bounded interprocedural fixpoint marks fns whose *return
//! position* is tainted as secret-returning — unless the fn's name
//! marks the result public or one-way (`hash`/`hmac`/`digest`: MAC
//! tags and digests authenticate data, they do not reveal it) — so
//! `let sub = derive_subkey(seed)` taints `sub` two calls deep. The
//! workspace-wide trace/journal rules keep an *empty* secret-returning
//! set: the name set blankets constructor names like `new`, tolerable
//! inside the key crates but far too noisy workspace-wide.
//!
//! Nonces are deliberately *not* sources here: in this protocol the
//! nonce is the quote's public `externalData`, not a secret.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{build_cfg, Role, Stmt};
use crate::dataflow::{solve, JoinMap, Lattice};
use crate::diag::Severity;
use crate::graph::WorkspaceIndex;
use crate::items::{CallSite, FnItem};
use crate::lexer::TokenKind;
use crate::passes::{flow, Finding, Pass};
use crate::source::SourceFile;

/// Identifier components that mark a binding as key material.
const SECRET_COMPONENTS: &[&str] = &[
    "secret",
    "secrets",
    "key",
    "keys",
    "keypair",
    "seed",
    "priv",
    "private",
    "passphrase",
];

/// Components that mark the binding as public/ciphertext even when a
/// secret component is present (`key_bits`, `public_key`, `sealed_key`).
const PUBLIC_COMPONENTS: &[&str] = &[
    "public", "pub", "bits", "len", "size", "count", "id", "ids", "handle", "handles", "cert",
    "certs", "ca", "aik", "ek", "srk", "usage", "sealed", "wrapped", "wrap", "load", "blob",
    "store", "slot", "slots", "cache", "hash", "digest", "index", "bound",
];

/// Fn-name components whose *output* is safe by construction: one-way
/// functions (MACs, digests) authenticate data without revealing it,
/// so their return values are exempt from the return-taint fixpoint.
const ONE_WAY_COMPONENTS: &[&str] = &["hmac", "mac", "digest", "hash", "checksum", "fingerprint"];

/// Types that are secret by fiat, wherever they appear.
const DESIGNATED_SECRET_TYPES: &[&str] = &["RsaKeyPair"];

/// Call-name components that launder taint: their *output* is protected
/// ciphertext even when a secret flows in (`seal_to_current(.., &key)`).
/// Note `unseal`/`decrypt`/`unwrap` are distinct components and do not
/// match, so the inverse operations keep their outputs secret.
const SANITIZER_COMPONENTS: &[&str] = &["seal", "encrypt", "wrap"];

/// Method projections whose result is public arithmetic, not material.
const PUBLIC_PROJECTIONS: &[&str] = &["len", "is_empty", "count", "capacity"];

/// Console/logging macro sinks.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Wire-serialization method sinks.
const WIRE_METHODS: &[&str] = &["to_bytes", "write", "serialize"];

/// Flight-recorder emission sinks (`utp_trace::span(..)` and friends):
/// field values land verbatim in the JSONL export.
const TRACE_SINK_FNS: &[&str] = &["span", "event", "span_volatile", "event_volatile"];

/// Settlement-journal append sinks: the record payload is framed onto
/// the WAL byte-for-byte and survives the process.
const JOURNAL_SINK_METHODS: &[&str] = &["append_record", "install_snapshot"];

/// Metrics/artifact emission sinks (`utp-obs`): registry registration
/// carries label values and artifact pushes carry metric values, all of
/// which are serialized verbatim into `BENCH_*.json` perf artifacts and
/// the Prometheus-style exposition.
const OBS_SINK_METHODS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "push_u64",
    "push_f64",
    "push_dist",
    "push_hist",
];

/// Free-fn metrics sinks: the exposition renderer writes every metric
/// name, label, and value of its artifacts into the `.prom` text.
const OBS_SINK_FNS: &[&str] = &["render_exposition"];

/// Fleet-simulation report sinks (`utp-netsim`): scenario run tags and
/// report annotations are folded verbatim into the `FleetReport`
/// digest — the byte-identity surface CI compares across runs — and
/// exported into the `BENCH_E13.json` perf artifacts.
const FLEET_SINK_METHODS: &[&str] = &["annotate", "tag_run"];

/// Files allowed to serialize key material (the sealing/wrapping
/// boundary plus the key types' own codecs).
const WIRE_BOUNDARY_FILES: &[&str] = &[
    "crates/tpm/src/keys.rs",
    "crates/tpm/src/seal.rs",
    "crates/crypto/src/rsa.rs",
];

/// Is this identifier secret key material (for taint purposes)?
pub fn is_taint_secret_ident(ident: &str) -> bool {
    if ident
        .chars()
        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
    {
        return false;
    }
    let lower: Vec<String> = ident.split('_').map(|c| c.to_ascii_lowercase()).collect();
    lower
        .iter()
        .any(|c| SECRET_COMPONENTS.contains(&c.as_str()))
        && !lower
            .iter()
            .any(|c| PUBLIC_COMPONENTS.contains(&c.as_str()))
}

/// Does this fn name mark its result as public or one-way, exempting
/// it from the return-taint fixpoint?
fn launders_by_name(name: &str) -> bool {
    name.split('_').any(|c| {
        let c = c.to_ascii_lowercase();
        PUBLIC_COMPONENTS.contains(&c.as_str()) || ONE_WAY_COMPONENTS.contains(&c.as_str())
    })
}

fn in_scope(path: &str) -> bool {
    path.starts_with("crates/tpm/src/")
        || path.starts_with("crates/crypto/src/")
        || path.starts_with("crates/core/src/")
}

/// The pass.
pub struct SecretTaint;

impl Pass for SecretTaint {
    fn id(&self) -> &'static str {
        "secret-taint"
    }

    fn description(&self) -> &'static str {
        "key material must not reach Debug/logging/wire sinks"
    }

    fn check_workspace(&self, ws: &WorkspaceIndex) -> Vec<(usize, Finding)> {
        let mut out = Vec::new();
        let secret_structs = secret_struct_fixpoint(ws);
        let manual_debug = manual_debug_types(ws);
        let redacting = redacting_types(ws, &secret_structs, &manual_debug);

        // Interprocedural return taint: seed with secret-shaped names
        // and secret return types, then (bounded) close over non-test
        // fns whose return position the per-fn flow proves tainted.
        let mut secret_returning = secret_returning_fns(ws, &secret_structs);
        for _round in 0..3 {
            let mut changed = false;
            for idx in 0..ws.fns.len() {
                if !ws.is_live_fn(idx) || !ws.metas[ws.fns[idx].file].is_src_ctx {
                    continue;
                }
                let file = &ws.files[ws.fns[idx].file];
                if !in_scope(&file.path) {
                    continue;
                }
                let item = ws.fn_item(idx);
                if file.in_test_code(item.start_line)
                    || launders_by_name(&item.name)
                    || secret_returning.contains(&item.name)
                {
                    continue;
                }
                let cx = TaintCtx {
                    secret_returning: &secret_returning,
                    secret_structs: &secret_structs,
                };
                if fn_flow(file, item, &cx).returns_tainted
                    && secret_returning.insert(item.name.clone())
                {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        for (fi, file) in ws.files.iter().enumerate() {
            if !in_scope(&file.path) || !ws.metas[fi].is_src_ctx {
                continue;
            }
            check_debug_derives(file, &secret_structs, &redacting, fi, &mut out);
        }
        let cx = TaintCtx {
            secret_returning: &secret_returning,
            secret_structs: &secret_structs,
        };
        // The workspace-wide trace/journal scans drop the name-seeded
        // secret-returning set (see the module docs).
        let empty = BTreeSet::new();
        let scan_cx = TaintCtx {
            secret_returning: &empty,
            secret_structs: &secret_structs,
        };
        for idx in 0..ws.fns.len() {
            let fi = ws.fns[idx].file;
            let file = &ws.files[fi];
            if !ws.is_live_fn(idx) {
                continue;
            }
            if in_scope(&file.path) {
                let ft = fn_flow(file, ws.fn_item(idx), &cx);
                check_fn_sinks(file, ws.fn_item(idx), &ft, fi, &mut out);
            }
            check_trace_sinks(file, ws.fn_item(idx), &scan_cx, fi, &mut out);
            check_journal_sinks(file, ws.fn_item(idx), &scan_cx, fi, &mut out);
            check_obs_sinks(file, ws.fn_item(idx), &scan_cx, fi, &mut out);
            check_fleet_sinks(file, ws.fn_item(idx), &scan_cx, fi, &mut out);
        }
        out
    }
}

/// Structs that (transitively) carry secret material, mapped to the
/// field that makes them secret.
fn secret_struct_fixpoint(ws: &WorkspaceIndex) -> BTreeMap<String, String> {
    let mut secret: BTreeMap<String, String> = DESIGNATED_SECRET_TYPES
        .iter()
        .map(|t| (t.to_string(), "designated secret type".to_string()))
        .collect();
    loop {
        let mut changed = false;
        for (fi, file) in ws.files.iter().enumerate() {
            if !in_scope(&file.path) || !ws.metas[fi].is_src_ctx {
                continue;
            }
            for s in &file.items.structs {
                if secret.contains_key(&s.name) {
                    continue;
                }
                let cause = s.fields.iter().find_map(|f| {
                    if is_taint_secret_ident(&f.name) {
                        return Some(format!("field `{}` is secret-named", f.name));
                    }
                    f.type_idents
                        .iter()
                        .find(|t| secret.contains_key(*t))
                        .map(|t| format!("field `{}` contains secret type `{}`", f.name, t))
                });
                if let Some(cause) = cause {
                    secret.insert(s.name.clone(), cause);
                    changed = true;
                }
            }
        }
        if !changed {
            return secret;
        }
    }
}

/// Types with a manual `impl Debug` anywhere in library source — the
/// approved redaction boundary.
fn manual_debug_types(ws: &WorkspaceIndex) -> BTreeSet<String> {
    ws.files
        .iter()
        .enumerate()
        .filter(|(fi, _)| ws.metas[*fi].is_src_ctx)
        .flat_map(|(_, f)| f.items.impls.iter())
        .filter(|i| i.trait_name.as_deref() == Some("Debug"))
        .map(|i| i.type_name.clone())
        .collect()
}

/// Types whose Debug output is redacted: manual impls, plus (by
/// fixpoint) structs whose derived Debug only ever reaches secrets
/// through types that already redact. A derive over fully-redacted
/// fields prints only redacted text, so it is itself a safe boundary.
fn redacting_types(
    ws: &WorkspaceIndex,
    secret_structs: &BTreeMap<String, String>,
    manual_debug: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut redacting = manual_debug.clone();
    loop {
        let mut changed = false;
        for (fi, file) in ws.files.iter().enumerate() {
            if !ws.metas[fi].is_src_ctx {
                continue;
            }
            for s in &file.items.structs {
                if redacting.contains(&s.name)
                    || s.derive_debug_line.is_none()
                    || DESIGNATED_SECRET_TYPES.contains(&s.name.as_str())
                {
                    continue;
                }
                let safe = s.fields.iter().all(|f| {
                    let secret = is_taint_secret_ident(&f.name)
                        || f.type_idents.iter().any(|t| secret_structs.contains_key(t));
                    !secret || f.type_idents.iter().any(|t| redacting.contains(t))
                });
                if safe && redacting.insert(s.name.clone()) {
                    changed = true;
                }
            }
        }
        if !changed {
            return redacting;
        }
    }
}

/// Function names whose return value is tainted: secret-shaped name or
/// a return type mentioning a secret struct.
fn secret_returning_fns(
    ws: &WorkspaceIndex,
    secret_structs: &BTreeMap<String, String>,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for idx in 0..ws.fns.len() {
        let item = ws.fn_item(idx);
        let ret_secret = item.ret_idents.iter().any(|t| {
            secret_structs.contains_key(t)
                || (t == "Self"
                    && item
                        .impl_type
                        .as_ref()
                        .is_some_and(|ty| secret_structs.contains_key(ty)))
        });
        if is_taint_secret_ident(&item.name) || ret_secret {
            out.insert(item.name.clone());
        }
    }
    out
}

fn check_debug_derives(
    file: &SourceFile,
    secret_structs: &BTreeMap<String, String>,
    redacting: &BTreeSet<String>,
    fi: usize,
    out: &mut Vec<(usize, Finding)>,
) {
    for s in &file.items.structs {
        let Some(line) = s.derive_debug_line else {
            continue;
        };
        if file.in_test_code(s.line) {
            continue;
        }
        // A designated secret type must never derive Debug at all.
        if DESIGNATED_SECRET_TYPES.contains(&s.name.as_str()) {
            out.push((
                fi,
                Finding {
                    line,
                    severity: Severity::Deny,
                    message: format!(
                        "derive(Debug) on `{}` formats private key material; write a \
                         manual redacting `impl fmt::Debug` that prints only public \
                         parameters",
                        s.name
                    ),
                },
            ));
            continue;
        }
        let offending: Vec<&str> = s
            .fields
            .iter()
            .filter(|f| {
                let secret = is_taint_secret_ident(&f.name)
                    || f.type_idents.iter().any(|t| secret_structs.contains_key(t));
                let redacted = f.type_idents.iter().any(|t| redacting.contains(t));
                secret && !redacted
            })
            .map(|f| f.name.as_str())
            .collect();
        if !offending.is_empty() {
            out.push((
                fi,
                Finding {
                    line,
                    severity: Severity::Deny,
                    message: format!(
                        "derive(Debug) on `{}` formats secret field(s) `{}` whose types \
                         have no redacting Debug impl; add a manual `impl fmt::Debug` or \
                         route the field through a type that redacts",
                        s.name,
                        offending.join("`, `")
                    ),
                },
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Flow-sensitive local taint.
// ---------------------------------------------------------------------

/// The per-local taint lattice (`Tainted` is top).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Tn {
    Clean,
    Tainted,
}

impl Lattice for Tn {
    fn join_from(&mut self, other: &Self) -> bool {
        if *other > *self {
            *self = *other;
            return true;
        }
        false
    }
}

type Env = JoinMap<Tn>;

/// Shared inputs for the per-fn flow.
struct TaintCtx<'a> {
    secret_returning: &'a BTreeSet<String>,
    secret_structs: &'a BTreeMap<String, String>,
}

/// Env fact wins in both directions; no fact falls back to the name
/// heuristic.
fn ident_tainted(name: &str, env: &Env) -> bool {
    match env.0.get(name) {
        Some(Tn::Tainted) => true,
        Some(Tn::Clean) => false,
        None => is_taint_secret_ident(name),
    }
}

/// The solved flow of one fn: the entry environment of every reached
/// statement, plus whether any return position is tainted.
struct FnTaint {
    states: Vec<(Stmt, Env)>,
    returns_tainted: bool,
}

impl FnTaint {
    fn env_at(&self, tok: usize) -> Option<&Env> {
        self.states
            .iter()
            .find(|(s, _)| s.lo <= tok && tok < s.hi)
            .map(|(_, e)| e)
    }

    /// Flow fact wins in both directions; no fact falls back to the
    /// name heuristic.
    fn tainted_at(&self, name: &str, tok: usize) -> bool {
        match self.env_at(tok) {
            Some(env) => ident_tainted(name, env),
            None => is_taint_secret_ident(name),
        }
    }

    /// Locals the flow knows to be tainted at `tok` (for format-string
    /// capture checks).
    fn tainted_locals_at(&self, tok: usize) -> Vec<&str> {
        self.env_at(tok)
            .map(|e| {
                e.0.iter()
                    .filter(|(_, v)| **v == Tn::Tainted)
                    .map(|(k, _)| k.as_str())
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Solves the taint flow for one fn body.
fn fn_flow(file: &SourceFile, item: &FnItem, cx: &TaintCtx) -> FnTaint {
    let mut ft = FnTaint {
        states: Vec::new(),
        returns_tainted: false,
    };
    let Some(body) = item.body else {
        return ft;
    };
    let cfg = build_cfg(&file.tokens, body);
    let entries = solve(&cfg, Env::default(), |s, env| {
        transfer(file, item, cx, s, env);
    });
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let Some(entry) = &entries[bi] else {
            continue;
        };
        let mut env = entry.clone();
        for s in &block.stmts {
            ft.states.push((s.clone(), env.clone()));
            if let Some((lo, hi)) = return_range(file, s) {
                if classify(file, item, cx, lo, hi, &env) == Tn::Tainted {
                    ft.returns_tainted = true;
                }
            }
            transfer(file, item, cx, s, &mut env);
        }
    }
    ft
}

/// The expression range of a return position: a statement-initial
/// `return`, or a tail expression (no trailing `;`). Non-`()` values
/// in non-tail statement position do not compile, so every `;`-less
/// `Normal` statement is a return position.
fn return_range(file: &SourceFile, s: &Stmt) -> Option<(usize, usize)> {
    if s.role != Role::Normal {
        return None;
    }
    if file.tokens[s.lo].is_ident("return") {
        return Some((s.lo + 1, s.hi));
    }
    if !file.tokens.get(s.hi).is_some_and(|t| t.is_punct(";")) {
        return Some((s.lo, s.hi));
    }
    None
}

/// Transfer across one statement: bindings/reassignments classify
/// their rhs, `zeroize` kills, `for` headers bind their pattern.
fn transfer(file: &SourceFile, item: &FnItem, cx: &TaintCtx, s: &Stmt, env: &mut Env) {
    let toks = &file.tokens;
    // `for PAT in EXPR` binds the pattern idents with EXPR's taint.
    if s.role == Role::For {
        let mut j = s.lo + 1;
        let mut pat = Vec::new();
        while j < s.hi && !toks[j].is_ident("in") {
            if toks[j].kind == TokenKind::Ident && !toks[j].is_ident("mut") {
                pat.push(toks[j].text.clone());
            }
            j += 1;
        }
        if j < s.hi {
            let v = classify(file, item, cx, j + 1, s.hi, env);
            for name in pat {
                env.0.insert(name, v);
            }
        }
        return;
    }
    if let Some((name, rhs_lo, compound)) = flow::binding_of(toks, s) {
        let mut v = classify(file, item, cx, rhs_lo, s.hi, env);
        // A compound assign keeps the old value's taint.
        if compound && matches!(env.0.get(&name), Some(Tn::Tainted)) {
            v = Tn::Tainted;
        }
        env.0.insert(name, v);
    }
    // `zeroize(&mut x)` / `x.zeroize()` overwrites the bytes: the
    // local no longer carries the secret, whatever its name says.
    for c in &item.calls {
        if c.tok < s.lo || c.tok >= s.hi || c.name != "zeroize" {
            continue;
        }
        if c.is_method {
            if let Some(recv) = c.tok.checked_sub(2).map(|r| &toks[r]) {
                if recv.kind == TokenKind::Ident {
                    env.0.insert(recv.text.clone(), Tn::Clean);
                }
            }
        } else if let Some(arg) = toks[c.args.0..c.args.1]
            .iter()
            .find(|t| t.kind == TokenKind::Ident && !t.is_ident("mut"))
        {
            env.0.insert(arg.text.clone(), Tn::Clean);
        }
    }
}

/// Classifies an expression range: `Tainted` if a value position
/// mentions a tainted local (flow env, falling back to the name
/// heuristic for untracked idents such as parameters), a secret field
/// projection (`self.key`), or a call that produces secret material.
///
/// Call results are gated by where the call *starts*: a free fn only
/// taints by its own name; `T::f(..)` only when `T` is a secret type;
/// `recv.f(..)` only when the receiver is tainted (so the polluted
/// bare-name `secret_returning` set cannot blanket every `from_bytes`
/// or `new` in the workspace). A sanitizer call makes the whole
/// expression ciphertext, and public projections (`key.len()`) stay
/// clean.
fn classify(
    file: &SourceFile,
    item: &FnItem,
    cx: &TaintCtx,
    lo: usize,
    hi: usize,
    env: &Env,
) -> Tn {
    let toks = &file.tokens;
    let hi = hi.min(toks.len());
    for c in &item.calls {
        if c.tok >= lo
            && c.tok < hi
            && c.name
                .split('_')
                .any(|w| SANITIZER_COMPONENTS.contains(&w.to_ascii_lowercase().as_str()))
        {
            // A sealing/encryption call: its result is ciphertext, so
            // this expression stays clean even if secrets flow in.
            return Tn::Clean;
        }
    }
    let mut tainted = false;
    for j in lo..hi {
        let t = &toks[j];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let hot = if let Some(c) = item.calls.iter().find(|c| c.tok == j) {
            call_result_tainted(toks, c, cx, env)
        } else {
            // Field names in struct literals / type ascriptions
            // (`key: ..`) and path qualifiers (`keys::OP`) are not
            // value uses.
            if toks
                .get(j + 1)
                .is_some_and(|n| n.is_punct(":") || n.is_punct("::"))
            {
                continue;
            }
            if j > lo && toks[j - 1].is_punct("::") {
                // Path tail (`mod::CONST`): SCREAMING consts are
                // exempt by name anyway; skip.
                continue;
            }
            if j > lo && toks[j - 1].is_punct(".") {
                // Field projection: the env tracks locals, not
                // fields, so only the name heuristic applies
                // (`self.key` is secret, `req.nonce` is not).
                is_taint_secret_ident(&t.text)
            } else {
                ident_tainted(&t.text, env)
            }
        };
        if hot && !flow::postfix_projects_public(toks, j, PUBLIC_PROJECTIONS) {
            tainted = true;
        }
    }
    if tainted {
        Tn::Tainted
    } else {
        Tn::Clean
    }
}

/// Does this call produce secret material?
fn call_result_tainted(
    toks: &[crate::lexer::Token],
    c: &crate::items::CallSite,
    cx: &TaintCtx,
    env: &Env,
) -> bool {
    if is_taint_secret_ident(&c.name) {
        return true;
    }
    if !cx.secret_returning.contains(&c.name) {
        return false;
    }
    if c.is_method {
        // `recv.f(..)`: the shared name only counts when the receiver
        // itself carries the secret.
        return c.tok.checked_sub(2).is_some_and(|r| {
            toks[r].kind == TokenKind::Ident && ident_tainted(&toks[r].text, env)
        });
    }
    match &c.qualifier {
        // `T::f(..)`: only a secret type's constructor/accessor taints.
        Some(q) => cx.secret_structs.contains_key(q) || is_taint_secret_ident(q),
        // A free fn owns its name: `derive_subkey(..)` taints.
        None => true,
    }
}

fn check_fn_sinks(
    file: &SourceFile,
    item: &FnItem,
    ft: &FnTaint,
    fi: usize,
    out: &mut Vec<(usize, Finding)>,
) {
    for m in &item.macros {
        if !PRINT_MACROS.contains(&m.name.as_str()) {
            continue;
        }
        let mut hit: Option<String> = None;
        for (off, t) in file.tokens[m.args.0..m.args.1].iter().enumerate() {
            let tok = m.args.0 + off;
            match t.kind {
                TokenKind::Ident if ft.tainted_at(&t.text, tok) => {
                    hit = Some(t.text.clone());
                }
                // `println!("{session_key}")` inline captures.
                TokenKind::Str => {
                    for name in ft
                        .tainted_locals_at(tok)
                        .into_iter()
                        .chain(capture_candidates(&t.text))
                    {
                        if ft.tainted_at(name, tok)
                            && (t.text.contains(&format!("{{{name}}}"))
                                || t.text.contains(&format!("{{{name}:")))
                        {
                            hit = Some(name.to_string());
                        }
                    }
                }
                _ => {}
            }
            if hit.is_some() {
                break;
            }
        }
        if let Some(ident) = hit {
            out.push((
                fi,
                Finding {
                    line: m.line,
                    severity: Severity::Deny,
                    message: format!(
                        "secret `{ident}` flows into `{}!` in `{}`; secrets must never \
                         reach console/logging sinks — log a digest or drop the field",
                        m.name, item.name
                    ),
                },
            ));
        }
    }

    if WIRE_BOUNDARY_FILES.contains(&file.path.as_str()) {
        return;
    }
    for c in &item.calls {
        if !c.is_method || !WIRE_METHODS.contains(&c.name.as_str()) {
            continue;
        }
        // Receiver ident: `recv . name (` — two tokens before the name.
        let Some(r) = c.tok.checked_sub(2) else {
            continue;
        };
        let recv = &file.tokens[r];
        if recv.kind == TokenKind::Ident && ft.tainted_at(&recv.text, r) {
            out.push((
                fi,
                Finding {
                    line: c.line,
                    severity: Severity::Deny,
                    message: format!(
                        "secret `{}` is serialized via `.{}()` in `{}` outside the \
                         approved sealing boundary ({}); key material leaves the TPM \
                         model only wrapped or sealed",
                        recv.text,
                        c.name,
                        item.name,
                        WIRE_BOUNDARY_FILES.join(", ")
                    ),
                },
            ));
        }
    }
}

/// Rule 4: tainted identifiers must not appear in the argument list of
/// a flight-recorder emission. Runs workspace-wide — trace records are
/// serialized into the JSONL export wherever they are emitted.
fn check_trace_sinks(
    file: &SourceFile,
    item: &FnItem,
    cx: &TaintCtx,
    fi: usize,
    out: &mut Vec<(usize, Finding)>,
) {
    if !item
        .calls
        .iter()
        .any(|c| !c.is_method && TRACE_SINK_FNS.contains(&c.name.as_str()))
    {
        return;
    }
    let ft = fn_flow(file, item, cx);
    for c in &item.calls {
        if c.is_method || !TRACE_SINK_FNS.contains(&c.name.as_str()) {
            continue;
        }
        let args = &file.tokens[c.args.0..c.args.1];
        let hit = args.iter().enumerate().find_map(|(j, t)| {
            if t.kind != TokenKind::Ident || !ft.tainted_at(&t.text, c.args.0 + j) {
                return None;
            }
            // `keys::OP`-style path qualifiers name record *keys*, not
            // values; only the value position can carry the secret.
            if args.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                return None;
            }
            Some(t.text.clone())
        });
        if let Some(ident) = hit {
            out.push((
                fi,
                Finding {
                    line: c.line,
                    severity: Severity::Deny,
                    message: format!(
                        "secret `{ident}` flows into trace sink `{}` in `{}`; trace \
                         records are serialized into the JSONL export — record a \
                         digest, a length, or nothing",
                        c.name, item.name
                    ),
                },
            ));
        }
    }
}

/// Rule 5: tainted identifiers must not appear in the argument list of
/// a settlement-journal append. Runs workspace-wide — the WAL is
/// durable, so a leaked secret outlives the process and any in-memory
/// zeroization.
fn check_journal_sinks(
    file: &SourceFile,
    item: &FnItem,
    cx: &TaintCtx,
    fi: usize,
    out: &mut Vec<(usize, Finding)>,
) {
    if !item
        .calls
        .iter()
        .any(|c| c.is_method && JOURNAL_SINK_METHODS.contains(&c.name.as_str()))
    {
        return;
    }
    let ft = fn_flow(file, item, cx);
    for c in &item.calls {
        if !c.is_method || !JOURNAL_SINK_METHODS.contains(&c.name.as_str()) {
            continue;
        }
        let args = &file.tokens[c.args.0..c.args.1];
        let hit = args.iter().enumerate().find_map(|(j, t)| {
            if t.kind != TokenKind::Ident || !ft.tainted_at(&t.text, c.args.0 + j) {
                return None;
            }
            // `JournalRecord::Settle`-style path qualifiers name the
            // record shape, not a value.
            if args.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                return None;
            }
            Some(t.text.clone())
        });
        if let Some(ident) = hit {
            out.push((
                fi,
                Finding {
                    line: c.line,
                    severity: Severity::Deny,
                    message: format!(
                        "secret `{ident}` flows into journal sink `{}` in `{}`; WAL \
                         frames are durable and outlive zeroization — journal a \
                         digest, a handle, or nothing",
                        c.name, item.name
                    ),
                },
            ));
        }
    }
}

/// Rule 6: tainted identifiers must not appear in the argument list of
/// a metrics registration, artifact push, or exposition render. Runs
/// workspace-wide — `utp-obs` serializes names, label values, and
/// metric values verbatim into the checked-in `BENCH_*.json` artifacts
/// and the Prometheus-style `.prom` text.
fn check_obs_sinks(
    file: &SourceFile,
    item: &FnItem,
    cx: &TaintCtx,
    fi: usize,
    out: &mut Vec<(usize, Finding)>,
) {
    let is_sink = |c: &CallSite| {
        if c.is_method {
            OBS_SINK_METHODS.contains(&c.name.as_str())
        } else {
            OBS_SINK_FNS.contains(&c.name.as_str())
        }
    };
    if !item.calls.iter().any(is_sink) {
        return;
    }
    let ft = fn_flow(file, item, cx);
    for c in &item.calls {
        if !is_sink(c) {
            continue;
        }
        let args = &file.tokens[c.args.0..c.args.1];
        let hit = args.iter().enumerate().find_map(|(j, t)| {
            if t.kind != TokenKind::Ident || !ft.tainted_at(&t.text, c.args.0 + j) {
                return None;
            }
            // `names::FOO`-style path qualifiers pick the metric name
            // constant, not a value.
            if args.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                return None;
            }
            Some(t.text.clone())
        });
        if let Some(ident) = hit {
            out.push((
                fi,
                Finding {
                    line: c.line,
                    severity: Severity::Deny,
                    message: format!(
                        "secret `{ident}` flows into metrics sink `{}` in `{}`; metric \
                         names, labels, and values are serialized into perf artifacts \
                         and the exposition text — export a digest, a count, or nothing",
                        c.name, item.name
                    ),
                },
            ));
        }
    }
}

/// Rule 7: tainted identifiers must not appear in the argument list of
/// a fleet-report sink. Runs workspace-wide — `Scenario::tag_run` and
/// `FleetReport::annotate` fold their arguments verbatim into the
/// report digest (compared byte-for-byte in CI logs) and the exported
/// `BENCH_E13.json` artifacts.
fn check_fleet_sinks(
    file: &SourceFile,
    item: &FnItem,
    cx: &TaintCtx,
    fi: usize,
    out: &mut Vec<(usize, Finding)>,
) {
    let is_sink = |c: &CallSite| c.is_method && FLEET_SINK_METHODS.contains(&c.name.as_str());
    if !item.calls.iter().any(is_sink) {
        return;
    }
    let ft = fn_flow(file, item, cx);
    for c in &item.calls {
        if !is_sink(c) {
            continue;
        }
        let args = &file.tokens[c.args.0..c.args.1];
        let hit = args.iter().enumerate().find_map(|(j, t)| {
            if t.kind != TokenKind::Ident || !ft.tainted_at(&t.text, c.args.0 + j) {
                return None;
            }
            // Path-qualified segments pick a constant, not a value.
            if args.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                return None;
            }
            Some(t.text.clone())
        });
        if let Some(ident) = hit {
            out.push((
                fi,
                Finding {
                    line: c.line,
                    severity: Severity::Deny,
                    message: format!(
                        "secret `{ident}` flows into fleet-report sink `{}` in `{}`; \
                         run tags and annotations are folded into the report digest \
                         and the E13 perf artifacts — tag runs with public labels only",
                        c.name, item.name
                    ),
                },
            ));
        }
    }
}

/// Identifier-shaped words inside a format string, candidates for
/// inline-capture checks.
fn capture_candidates(s: &str) -> impl Iterator<Item = &str> {
    s.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
}
