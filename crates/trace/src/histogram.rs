//! Log-scale latency histogram with p50/p90/p99/p999 readout.
//!
//! Buckets are base-2 with 16 linear sub-buckets per octave (values
//! below 16 ns are exact), bounding relative quantile error at 1/16 ≈
//! 6.25% while keeping the whole histogram under 8 KiB. This supersedes
//! the experiments' ad-hoc `Vec<Duration>` sample collection: recording
//! is O(1), memory is constant, and merging two histograms is an
//! element-wise add.

use std::time::Duration;

/// Sub-buckets per power of two.
const SUB: u64 = 16;
/// Bucket count: 16 exact small values + 60 octaves × 16 sub-buckets.
const BUCKETS: usize = 16 + 60 * 16;

/// A fixed-size log-scale histogram of durations (nanosecond domain).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("min_ns", &self.min_ns)
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns < SUB {
        return ns as usize;
    }
    let msb = 63 - u64::from(ns.leading_zeros()); // ≥ 4 here
    let sub = (ns >> (msb - 4)) & (SUB - 1);
    (SUB + (msb - 4) * SUB + sub) as usize
}

/// Inclusive upper bound of a bucket, used as the quantile estimate.
fn bucket_upper(idx: usize) -> u64 {
    if idx < 16 {
        return idx as u64;
    }
    let octave = (idx - 16) / SUB as usize; // msb - 4
    let sub = ((idx - 16) % SUB as usize) as u64;
    let msb = octave as u64 + 4;
    // Values in this bucket share the top 5 bits `1(sub as 4 bits)`.
    ((SUB + sub + 1) << (msb - 4)) - 1
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.record_ns(ns);
    }

    /// Records one sample given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let idx = bucket_of(ns).min(BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(u64::try_from(self.sum_ns).unwrap_or(u64::MAX))
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(
            u64::try_from(self.sum_ns / u128::from(self.total)).unwrap_or(u64::MAX),
        )
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.min_ns)
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound; exact
    /// at the extremes (min/max). Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(bucket_upper(idx).clamp(self.min_ns, self.max_ns));
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Duration {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_consistent() {
        let mut prev = 0usize;
        for ns in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            1 << 20,
            u64::MAX >> 1,
        ] {
            let b = bucket_of(ns);
            assert!(b >= prev, "bucket index must not decrease (ns={ns})");
            assert!(
                bucket_upper(b) >= ns,
                "upper bound covers the value (ns={ns})"
            );
            prev = b;
        }
        // Small values are exact.
        for ns in 0..16u64 {
            assert_eq!(bucket_upper(bucket_of(ns)), ns);
        }
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        let p50 = h.p50().as_nanos() as f64;
        assert!((p50 - 10_000.0).abs() / 10_000.0 < 0.07, "p50={p50}");
        assert_eq!(h.max(), Duration::from_millis(50));
        assert_eq!(h.quantile(1.0), Duration::from_millis(50));
        let p999 = h.p999().as_nanos() as f64;
        assert!(
            (p999 - 50_000_000.0).abs() / 50_000_000.0 < 0.07,
            "p999={p999}"
        );
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.p999());
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
    }

    #[test]
    fn merge_is_elementwise_add() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_nanos(5));
        b.record(Duration::from_nanos(500));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Duration::from_nanos(5));
        assert_eq!(a.max(), Duration::from_nanos(500));
        assert_eq!(a.sum(), Duration::from_nanos(505));
    }

    #[test]
    fn mean_matches_sum_over_count() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(10));
        h.record(Duration::from_nanos(30));
        assert_eq!(h.mean(), Duration::from_nanos(20));
    }
}
